//! Smoke test for the facade's public quick-start path: the exact flow the
//! `src/lib.rs` doctest advertises (`generate_by_name_scaled` →
//! `MvgClassifier::fit` / `score` / `predict`), exercised beyond the doctest
//! on a tiny synthetic dataset so API regressions fail loudly in `cargo
//! test` even when doctests are skipped.

use tsc_mvg::datasets::archive::{generate_by_name_scaled, ArchiveOptions};
use tsc_mvg::mvg::{MvgClassifier, MvgConfig};

#[test]
fn quick_start_path_end_to_end() {
    let options = ArchiveOptions::bounded(20, 192, 7);
    let (train, test) =
        generate_by_name_scaled("BeetleFly", options).expect("catalogue contains BeetleFly");
    assert!(!train.is_empty() && !test.is_empty());

    let mut clf = MvgClassifier::new(MvgConfig::fast());
    clf.fit(&train).expect("fit on tiny synthetic dataset");

    let accuracy = clf.score(&test).expect("score fitted classifier");
    assert!(
        (0.0..=1.0).contains(&accuracy),
        "accuracy {accuracy} outside [0, 1]"
    );

    // Predictions must cover every test series and only emit labels the
    // training set contained.
    let predictions = clf.predict(&test).expect("predict with fitted classifier");
    assert_eq!(predictions.len(), test.len());
    let train_labels: std::collections::BTreeSet<usize> =
        train.series().iter().filter_map(|s| s.label()).collect();
    for p in &predictions {
        assert!(
            train_labels.contains(p),
            "predicted label {p} never seen in training"
        );
    }
}

#[test]
fn quick_start_path_is_deterministic() {
    let options = ArchiveOptions::bounded(16, 128, 5);
    let run = || {
        let (train, test) =
            generate_by_name_scaled("BeetleFly", options).expect("catalogue contains BeetleFly");
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).expect("fit");
        clf.predict(&test).expect("predict")
    };
    assert_eq!(run(), run(), "same seed must give identical predictions");
}
