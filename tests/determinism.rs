//! Determinism harness: parallel == serial, bit for bit.
//!
//! The worker pool (`tsg_parallel::ThreadPool`) drives feature extraction,
//! grid search, random-forest tree fitting and the stacking ensemble. Every
//! one of those stages must produce *bit-identical* output for every thread
//! count — parallelism is an implementation detail that may never leak into
//! results. Each test below runs one stage with `n_threads ∈ {1, 2, 7}` and
//! compares raw `f64` bit patterns against the serial run.

use tsc_mvg::datasets::archive::{generate_by_name_scaled, ArchiveOptions};
use tsc_mvg::datasets::{DatasetSource, Split};
use tsc_mvg::graph::motifs::{count_motifs_with, MotifWorkspace};
use tsc_mvg::graph::visibility::{horizontal_visibility_graph, visibility_graph};
use tsc_mvg::ml::forest::{RandomForest, RandomForestParams};
use tsc_mvg::ml::gbt::{GradientBoosting, GradientBoostingParams};
use tsc_mvg::ml::knn::KnnClassifier;
use tsc_mvg::ml::stacking::{StackingEnsemble, StackingParams};
use tsc_mvg::ml::traits::Classifier;
use tsc_mvg::ml::tree::{DecisionTree, DecisionTreeParams};
use tsc_mvg::ml::{FeatureMatrix, GridSearch};
use tsc_mvg::mvg::extract_series_features_with;
use tsc_mvg::mvg::{
    extract_dataset_features, extract_features_streaming, FeatureConfig, MvgClassifier, MvgConfig,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Raw bit patterns of a probability/feature table; equality here is
/// stricter than `==` on floats (it distinguishes `-0.0` from `0.0` and
/// never treats NaN specially).
fn bits(table: &[Vec<f64>]) -> Vec<Vec<u64>> {
    table
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn matrix_bits(m: &FeatureMatrix) -> Vec<Vec<u64>> {
    m.rows()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn labeled_features() -> (FeatureMatrix, Vec<usize>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut state = 77u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
    };
    for i in 0..72 {
        let label = i % 3;
        rows.push(vec![
            label as f64 * 2.0 + next() * 0.7,
            next(),
            label as f64 - next() * 0.4,
        ]);
        labels.push(label);
    }
    (FeatureMatrix::from_rows(&rows).unwrap(), labels)
}

#[test]
fn feature_extraction_is_bit_identical_across_thread_counts() {
    let (train, _) = generate_by_name_scaled("BeetleFly", ArchiveOptions::bounded(10, 128, 5))
        .expect("catalogue dataset");
    let config = FeatureConfig::mvg();
    let (reference, names) = extract_dataset_features(&train, &config, 1);
    assert!(!names.is_empty());
    for n_threads in THREAD_COUNTS {
        let (features, _) = extract_dataset_features(&train, &config, n_threads);
        assert_eq!(
            matrix_bits(&features),
            matrix_bits(&reference),
            "n_threads = {n_threads}"
        );
    }
}

#[test]
fn catalogue_wide_and_pruned_extraction_are_bit_identical_across_thread_counts() {
    // The tiered catalogue adds a statistical layer to the wide vector and
    // a column-pruned extraction path; both must stay bit-identical for
    // every thread count, and the pruned columns must be the *same bits*
    // as the corresponding wide columns.
    use tsc_mvg::mvg::FeatureSelection;
    let (train, _) = generate_by_name_scaled("BeetleFly", ArchiveOptions::bounded(10, 128, 5))
        .expect("catalogue dataset");
    let wide = FeatureConfig::wide();
    let (wide_ref, wide_names) = extract_dataset_features(&train, &wide, 1);
    assert!(wide_names.iter().any(|n| n.starts_with("stat ")));

    let selected: Vec<String> = wide_names.iter().step_by(7).cloned().collect();
    let mut pruned = wide.clone();
    pruned.selection = Some(FeatureSelection::new(selected.clone()));
    let (pruned_ref, pruned_names) = extract_dataset_features(&train, &pruned, 1);
    assert_eq!(pruned_names, selected);

    // pruned columns are the wide columns, bit for bit
    for (j, name) in pruned_names.iter().enumerate() {
        let wide_j = wide_names.iter().position(|n| n == name).unwrap();
        for i in 0..wide_ref.n_rows() {
            assert_eq!(
                pruned_ref.get(i, j).to_bits(),
                wide_ref.get(i, wide_j).to_bits(),
                "row {i}, column `{name}`"
            );
        }
    }

    for n_threads in THREAD_COUNTS {
        let (w, _) = extract_dataset_features(&train, &wide, n_threads);
        assert_eq!(
            matrix_bits(&w),
            matrix_bits(&wide_ref),
            "wide, n_threads = {n_threads}"
        );
        let (p, _) = extract_dataset_features(&train, &pruned, n_threads);
        assert_eq!(
            matrix_bits(&p),
            matrix_bits(&pruned_ref),
            "pruned, n_threads = {n_threads}"
        );
    }
}

#[test]
fn workspace_reuse_is_bit_identical_to_fresh_workspaces() {
    // The extraction path reuses one MotifWorkspace per pool worker across
    // its whole chunk of series. Scratch reuse may never leak into results:
    // a workspace that has seen many graphs of varying size must produce the
    // same motif counts — and the same feature vectors, bit for bit — as a
    // fresh workspace per graph.
    let (train, _) = generate_by_name_scaled("BeetleFly", ArchiveOptions::bounded(8, 160, 5))
        .expect("catalogue dataset");
    let config = FeatureConfig::mvg();

    // graph-level counts: one long-lived workspace vs fresh ones
    let mut reused = MotifWorkspace::new();
    for series in train.series() {
        let vg = visibility_graph(series.values());
        let hvg = horizontal_visibility_graph(series.values());
        for g in [&vg, &hvg] {
            assert_eq!(
                count_motifs_with(g, &mut reused),
                count_motifs_with(g, &mut MotifWorkspace::new())
            );
        }
    }

    // feature-level: the same reused workspace (already warmed by every
    // graph above) against a fresh workspace per series, compared on raw
    // f64 bit patterns
    let with_reuse: Vec<Vec<f64>> = train
        .series()
        .iter()
        .map(|s| extract_series_features_with(s, &config, &mut reused))
        .collect();
    let with_fresh: Vec<Vec<f64>> = train
        .series()
        .iter()
        .map(|s| extract_series_features_with(s, &config, &mut MotifWorkspace::new()))
        .collect();
    assert_eq!(bits(&with_reuse), bits(&with_fresh));

    // and the parallel pipeline (thread-local reuse inside pool workers)
    // still matches the per-series explicit path
    let (matrix, _) = extract_dataset_features(&train, &config, 3);
    let width = matrix.n_cols();
    let padded: Vec<Vec<f64>> = with_fresh
        .into_iter()
        .map(|mut row| {
            row.resize(width, 0.0);
            row
        })
        .collect();
    assert_eq!(matrix_bits(&matrix), bits(&padded));
}

#[test]
fn streaming_extraction_is_bit_identical_to_eager_across_thread_counts() {
    // The streaming DatasetSource pipeline consumes a split chunk-wise
    // without materialising it; neither the chunking nor the thread count
    // may leak into features. Compare against the eager serial reference on
    // raw f64 bit patterns for both splits.
    let source = DatasetSource::synthetic(ArchiveOptions::bounded(10, 128, 5));
    let resolved = source.resolve("BeetleFly").expect("catalogue dataset");
    let config = FeatureConfig::mvg();
    for (split, dataset) in [
        (Split::Train, &resolved.train),
        (Split::Test, &resolved.test),
    ] {
        let (eager, names) = extract_dataset_features(dataset, &config, 1);
        for n_threads in THREAD_COUNTS {
            let stream = source.open_split("BeetleFly", split).expect("stream");
            assert_eq!(stream.n_instances(), dataset.len());
            assert_eq!(stream.max_length(), dataset.max_length());
            let streamed =
                extract_features_streaming(stream, dataset.max_length(), &config, n_threads)
                    .expect("streaming extraction");
            assert_eq!(streamed.names, names);
            assert_eq!(
                matrix_bits(&streamed.features),
                matrix_bits(&eager),
                "split = {split:?}, n_threads = {n_threads}"
            );
            assert_eq!(streamed.labels, dataset.labels());
        }
    }
}

fn grid_with(n_threads: usize) -> GridSearch {
    let mut grid = GridSearch::new(3);
    grid.n_threads = n_threads;
    for &(lr, n, d) in &[(0.1, 15usize, 3usize), (0.3, 10, 2), (0.2, 20, 4)] {
        let params = GradientBoostingParams {
            n_estimators: n,
            learning_rate: lr,
            max_depth: d,
            ..Default::default()
        };
        grid.add(
            format!("xgb(lr={lr},n={n},d={d})"),
            Box::new(move || Box::new(GradientBoosting::new(params)) as Box<dyn Classifier>),
        );
    }
    grid.add(
        "tree",
        Box::new(|| {
            Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>
        }),
    );
    grid
}

#[test]
fn grid_search_cv_losses_are_bit_identical_across_thread_counts() {
    let (x, y) = labeled_features();
    let reference = grid_with(1).evaluate(&x, &y).unwrap();
    for n_threads in THREAD_COUNTS {
        let results = grid_with(n_threads).evaluate(&x, &y).unwrap();
        assert_eq!(results.len(), reference.len());
        // same winner, same ranking, same exact fold losses
        for (got, want) in results.iter().zip(reference.iter()) {
            assert_eq!(got.candidate, want.candidate, "n_threads = {n_threads}");
            assert_eq!(got.description, want.description, "n_threads = {n_threads}");
            assert_eq!(
                got.log_loss.to_bits(),
                want.log_loss.to_bits(),
                "n_threads = {n_threads}"
            );
        }
    }
}

#[test]
fn forest_predictions_are_bit_identical_across_thread_counts() {
    let (x, y) = labeled_features();
    let fit_with = |n_threads: usize| {
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 24,
            max_depth: 8,
            seed: 13,
            n_threads,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        (rf.predict(&x).unwrap(), rf.predict_proba(&x).unwrap())
    };
    let (ref_pred, ref_proba) = fit_with(1);
    for n_threads in THREAD_COUNTS {
        let (pred, proba) = fit_with(n_threads);
        assert_eq!(pred, ref_pred, "n_threads = {n_threads}");
        assert_eq!(bits(&proba), bits(&ref_proba), "n_threads = {n_threads}");
    }
}

fn stacking_with(n_threads: usize) -> StackingEnsemble {
    let mut ens = StackingEnsemble::new(StackingParams {
        top_k: 2,
        cv_folds: 3,
        seed: 5,
        n_threads,
    });
    for &(lr, n, d) in &[(0.1, 15usize, 3usize), (0.3, 12, 2)] {
        let params = GradientBoostingParams {
            n_estimators: n,
            learning_rate: lr,
            max_depth: d,
            ..Default::default()
        };
        ens.add_candidate(
            format!("xgb(lr={lr},n={n},d={d})"),
            Box::new(move || Box::new(GradientBoosting::new(params)) as Box<dyn Classifier>),
        );
    }
    ens.add_candidate(
        "rf",
        Box::new(|| {
            Box::new(RandomForest::new(RandomForestParams {
                n_estimators: 10,
                max_depth: 6,
                seed: 5,
                n_threads: 1,
                ..Default::default()
            })) as Box<dyn Classifier>
        }),
    );
    ens.add_candidate(
        "knn",
        Box::new(|| Box::new(KnnClassifier::new(3)) as Box<dyn Classifier>),
    );
    ens
}

#[test]
fn stacked_probabilities_are_bit_identical_across_thread_counts() {
    let (x, y) = labeled_features();
    let fit_with = |n_threads: usize| {
        let mut ens = stacking_with(n_threads);
        ens.fit(&x, &y).unwrap();
        let scores: Vec<(String, u64, bool)> = ens
            .candidate_scores()
            .iter()
            .map(|s| (s.description.clone(), s.log_loss.to_bits(), s.selected))
            .collect();
        (scores, ens.predict_proba(&x).unwrap())
    };
    let (ref_scores, ref_proba) = fit_with(1);
    for n_threads in THREAD_COUNTS {
        let (scores, proba) = fit_with(n_threads);
        assert_eq!(scores, ref_scores, "n_threads = {n_threads}");
        assert_eq!(bits(&proba), bits(&ref_proba), "n_threads = {n_threads}");
    }
}

#[test]
fn baseline_classifiers_are_bit_identical_across_thread_counts() {
    // SAX-VSM and Bag-of-Patterns build word histograms; with `BTreeMap`
    // bags the float summation order inside every cosine/distance is the
    // sorted word order, so two fits of the same data must agree bit for
    // bit and `predict_parallel` must match serial `predict` for every
    // thread count. The assertions cover the raw decision values (cosine
    // similarities / 1NN distances), not just the argmax/argmin.
    use tsc_mvg::baselines::bag_of_patterns::BagOfPatterns;
    use tsc_mvg::baselines::sax_vsm::{SaxVsm, SaxVsmParams};
    use tsc_mvg::baselines::traits::TscClassifier;

    let (train, test) = generate_by_name_scaled("BeetleFly", ArchiveOptions::bounded(10, 96, 3))
        .expect("catalogue dataset");

    // two independent fits agree on every decision value, bit for bit
    let mut vsm_a = SaxVsm::new(SaxVsmParams::default());
    let mut vsm_b = SaxVsm::new(SaxVsmParams::default());
    vsm_a.fit(&train).unwrap();
    vsm_b.fit(&train).unwrap();
    let sims_a: Vec<Vec<f64>> = test
        .series()
        .iter()
        .map(|s| vsm_a.class_similarities(s).unwrap())
        .collect();
    let sims_b: Vec<Vec<f64>> = test
        .series()
        .iter()
        .map(|s| vsm_b.class_similarities(s).unwrap())
        .collect();
    assert_eq!(bits(&sims_a), bits(&sims_b));

    let mut bop_a = BagOfPatterns::default();
    let mut bop_b = BagOfPatterns::default();
    bop_a.fit(&train).unwrap();
    bop_b.fit(&train).unwrap();
    let dists_a: Vec<Vec<f64>> = test
        .series()
        .iter()
        .map(|s| bop_a.distances_to_train(s).unwrap())
        .collect();
    let dists_b: Vec<Vec<f64>> = test
        .series()
        .iter()
        .map(|s| bop_b.distances_to_train(s).unwrap())
        .collect();
    assert_eq!(bits(&dists_a), bits(&dists_b));

    // parallel prediction matches serial for every thread count
    let vsm_serial = vsm_a.predict(&test).unwrap();
    let bop_serial = bop_a.predict(&test).unwrap();
    for n_threads in THREAD_COUNTS {
        assert_eq!(
            vsm_a.predict_parallel(&test, n_threads).unwrap(),
            vsm_serial,
            "SAX-VSM, n_threads = {n_threads}"
        );
        assert_eq!(
            bop_a.predict_parallel(&test, n_threads).unwrap(),
            bop_serial,
            "Bag-of-Patterns, n_threads = {n_threads}"
        );
    }
}

#[test]
fn end_to_end_pipeline_is_bit_identical_across_thread_counts() {
    let (train, test) = generate_by_name_scaled("BeetleFly", ArchiveOptions::bounded(8, 96, 3))
        .expect("catalogue dataset");
    let fit_with = |n_threads: usize| {
        let config = MvgConfig {
            n_threads,
            ..MvgConfig::fast()
        };
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train).unwrap();
        clf.predict_proba(&test).unwrap()
    };
    let reference = fit_with(1);
    for n_threads in THREAD_COUNTS {
        assert_eq!(
            bits(&fit_with(n_threads)),
            bits(&reference),
            "n_threads = {n_threads}"
        );
    }
}
