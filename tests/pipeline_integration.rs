//! Cross-crate integration tests: the full pipeline from synthetic archive
//! datasets through feature extraction to classification and evaluation.

use tsc_mvg::baselines::{NnClassifier, NnDistance, TscClassifier};
use tsc_mvg::datasets::archive::{generate_by_name_scaled, generate_scaled, ArchiveOptions};
use tsc_mvg::datasets::ALL_DATASETS;
use tsc_mvg::eval::{wilcoxon_signed_rank, ScatterComparison};
use tsc_mvg::ml::gbt::GradientBoostingParams;
use tsc_mvg::mvg::{
    extract_dataset_features, ClassifierChoice, FeatureConfig, MvgClassifier, MvgConfig,
};

fn fast_config(features: FeatureConfig) -> MvgConfig {
    MvgConfig {
        features,
        classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
            n_estimators: 25,
            max_depth: 3,
            learning_rate: 0.25,
            subsample: 0.8,
            colsample_bytree: 0.8,
            ..Default::default()
        }),
        oversample: true,
        n_threads: 2,
        seed: 3,
    }
}

#[test]
fn end_to_end_on_shapeletsim_beats_chance() {
    let options = ArchiveOptions::bounded(24, 192, 5);
    let (train, test) = generate_by_name_scaled("ShapeletSim", options).unwrap();
    let mut clf = MvgClassifier::new(fast_config(FeatureConfig::mvg()));
    clf.fit(&train).unwrap();
    let accuracy = clf.score(&test).unwrap();
    assert!(
        accuracy > 0.55,
        "MVG should beat chance on a pattern dataset, got {accuracy}"
    );
}

#[test]
fn mvg_feature_count_is_consistent_across_splits() {
    let options = ArchiveOptions::bounded(16, 128, 2);
    let (train, test) = generate_by_name_scaled("Wine", options).unwrap();
    let config = FeatureConfig::mvg();
    let (x_train, names_train) = extract_dataset_features(&train, &config, 2);
    let (x_test, names_test) = extract_dataset_features(&test, &config, 2);
    assert_eq!(names_train, names_test);
    assert_eq!(x_train.n_cols(), x_test.n_cols());
    assert_eq!(x_train.n_rows(), train.len());
    assert_eq!(x_test.n_rows(), test.len());
}

#[test]
fn every_catalogue_dataset_flows_through_uvg_extraction() {
    // a smoke test over the whole catalogue at a tiny budget: generation,
    // extraction and shape invariants must hold for every dataset family
    let options = ArchiveOptions::bounded(6, 64, 11);
    for spec in ALL_DATASETS.iter().take(12) {
        let (train, _) = generate_scaled(spec, options);
        let (x, names) = extract_dataset_features(&train, &FeatureConfig::uvg(), 2);
        assert_eq!(x.n_rows(), train.len(), "{}", spec.name);
        assert_eq!(x.n_cols(), names.len(), "{}", spec.name);
        assert!(
            x.rows().all(|r| r.iter().all(|v| v.is_finite())),
            "{} produced non-finite features",
            spec.name
        );
    }
}

#[test]
fn mvg_and_baseline_results_feed_the_evaluation_stack() {
    // a miniature Table 3 row: run MVG and 1NN-ED on two datasets, compare
    // with the Wilcoxon test and the scatter comparison
    let options = ArchiveOptions::bounded(16, 128, 9);
    let mut mvg_errors = Vec::new();
    let mut nn_errors = Vec::new();
    let mut names = Vec::new();
    for dataset in ["BeetleFly", "ToeSegmentation1", "Meat"] {
        let (train, test) = generate_by_name_scaled(dataset, options).unwrap();
        let mut clf = MvgClassifier::new(fast_config(FeatureConfig::uvg()));
        clf.fit(&train).unwrap();
        mvg_errors.push(clf.error_rate(&test).unwrap());
        let mut nn = NnClassifier::new(NnDistance::Euclidean);
        nn.fit(&train).unwrap();
        nn_errors.push(nn.error_rate(&test).unwrap());
        names.push(dataset.to_string());
    }
    let comparison = ScatterComparison::new(
        "1NN-ED",
        "MVG",
        names,
        nn_errors.clone(),
        mvg_errors.clone(),
    );
    let wl = comparison.win_loss();
    assert_eq!(wl.wins + wl.ties + wl.losses, 3);
    // the Wilcoxon test either returns a valid p-value or (if the error
    // vectors are identical) nothing — both are acceptable here
    if let Some(result) = wilcoxon_signed_rank(&nn_errors, &mvg_errors) {
        assert!(result.p_value > 0.0 && result.p_value <= 1.0);
    }
    assert!(!comparison.to_csv().is_empty());
}

#[test]
fn classifier_choice_variants_run_end_to_end() {
    let options = ArchiveOptions::bounded(18, 96, 13);
    let (train, test) = generate_by_name_scaled("ECG5000", options).unwrap();
    for choice in [
        ClassifierChoice::RandomForest(tsc_mvg::ml::forest::RandomForestParams {
            n_estimators: 15,
            max_depth: 6,
            ..Default::default()
        }),
        ClassifierChoice::Svm(tsc_mvg::ml::svm::SvmParams::default()),
    ] {
        let config = MvgConfig {
            classifier: choice,
            ..fast_config(FeatureConfig::uvg())
        };
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train).unwrap();
        let error = clf.error_rate(&test).unwrap();
        assert!((0.0..=1.0).contains(&error));
    }
}

#[test]
fn predictions_are_reproducible_across_runs() {
    let options = ArchiveOptions::bounded(14, 96, 21);
    let (train, test) = generate_by_name_scaled("Strawberry", options).unwrap();
    let run = || {
        let mut clf = MvgClassifier::new(fast_config(FeatureConfig::mvg()));
        clf.fit(&train).unwrap();
        clf.predict(&test).unwrap()
    };
    assert_eq!(run(), run());
}
