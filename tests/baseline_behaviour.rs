//! Integration tests for the qualitative behaviour the paper relies on:
//! datasets built to favour one method family should indeed favour it, and
//! the graph representation invariants must survive the full pipeline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsc_mvg::baselines::{
    FastShapelets, FastShapeletsParams, NnClassifier, NnDistance, TscClassifier,
};
use tsc_mvg::graph::motifs::count_motifs;
use tsc_mvg::graph::visibility::{horizontal_visibility_graph, visibility_graph};
use tsc_mvg::ml::gbt::GradientBoostingParams;
use tsc_mvg::mvg::{
    motif_probability_distribution, ClassifierChoice, FeatureConfig, MvgClassifier, MvgConfig,
};
use tsc_mvg::ts::{generators, Dataset, TimeSeries};

fn fast_mvg() -> MvgClassifier {
    MvgClassifier::new(MvgConfig {
        features: FeatureConfig::mvg(),
        classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
            n_estimators: 30,
            max_depth: 3,
            learning_rate: 0.25,
            subsample: 0.8,
            colsample_bytree: 0.8,
            ..Default::default()
        }),
        oversample: true,
        n_threads: 2,
        seed: 1,
    })
}

/// Classes that differ by dynamics (chaotic map vs coloured noise) — exactly
/// the case the visibility-graph literature motivates: global shape is
/// useless, structure matters.
fn structural_dataset(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut d = Dataset::new("structural");
    for i in 0..n_per_class * 2 {
        let label = i % 2;
        let values = if label == 0 {
            generators::logistic_map(&mut rng, length, 4.0, 0.0)
        } else {
            let noise = generators::ar1(&mut rng, length, 0.5, 0.3);
            noise.iter().map(|v| 0.5 + v).collect()
        };
        d.push(TimeSeries::with_label(values, label));
    }
    d
}

#[test]
fn graph_features_separate_chaotic_from_stochastic() {
    let train = structural_dataset(12, 200, 1);
    let test = structural_dataset(10, 200, 2);
    let mut clf = fast_mvg();
    clf.fit(&train).unwrap();
    let mvg_acc = clf.score(&test).unwrap();
    assert!(
        mvg_acc >= 0.9,
        "graph features should nail chaos vs noise, got {mvg_acc}"
    );
}

#[test]
fn hvg_motif_distributions_differ_between_noise_and_chaos() {
    // the claim of Iacovacci & Lacasa the paper builds on: HVG motif
    // statistics distinguish white noise from the fully chaotic logistic map
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let noise = generators::gaussian_noise(&mut rng, 600, 1.0);
    let chaos = generators::logistic_map(&mut rng, 600, 4.0, 0.0);
    let mpd_noise =
        motif_probability_distribution(&count_motifs(&horizontal_visibility_graph(&noise)));
    let mpd_chaos =
        motif_probability_distribution(&count_motifs(&horizontal_visibility_graph(&chaos)));
    let l1: f64 = mpd_noise
        .iter()
        .zip(mpd_chaos.iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(l1 > 0.05, "motif profiles should differ, L1 = {l1}");
}

#[test]
fn alignment_nuisance_hurts_euclidean_more_than_graph_features() {
    // classes differ by dynamics; instances are randomly time-shifted copies.
    // 1NN-ED is sensitive to the misalignment, the graph features are not.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let make = |rng: &mut ChaCha8Rng, label: usize| {
        let body = if label == 0 {
            generators::fractional_noise(rng, 256, 0.85)
        } else {
            generators::fractional_noise(rng, 256, 0.3)
        };
        TimeSeries::with_label(body, label)
    };
    let mut train = Dataset::new("rough");
    let mut test = Dataset::new("rough");
    for i in 0..28 {
        train.push(make(&mut rng, i % 2));
    }
    for i in 0..20 {
        test.push(make(&mut rng, i % 2));
    }
    let mut clf = fast_mvg();
    clf.fit(&train).unwrap();
    let mvg_err = clf.error_rate(&test).unwrap();
    let mut nn = NnClassifier::new(NnDistance::Euclidean);
    nn.fit(&train).unwrap();
    let nn_err = nn.error_rate(&test).unwrap();
    assert!(
        mvg_err <= nn_err + 0.101,
        "graph features (err {mvg_err}) should not trail far behind 1NN-ED (err {nn_err}) on roughness classes"
    );
    assert!(mvg_err < 0.35, "MVG error {mvg_err}");
}

#[test]
fn shapelet_dataset_is_learnable_by_fast_shapelets_and_mvg() {
    // a dataset defined purely by a local pattern: the shapelet baseline must
    // do well, and MVG should remain competitive (its HVG features are local)
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let make = |rng: &mut ChaCha8Rng, label: usize| {
        let background = generators::gaussian_noise(rng, 128, 0.3);
        let pattern = if label == 0 {
            generators::bump_pattern(24)
        } else {
            generators::sawtooth_pattern(24)
        };
        TimeSeries::with_label(
            generators::inject_pattern(rng, background, &pattern, 4.0),
            label,
        )
    };
    let mut train = Dataset::new("shapelet");
    let mut test = Dataset::new("shapelet");
    for i in 0..24 {
        train.push(make(&mut rng, i % 2));
    }
    for i in 0..20 {
        test.push(make(&mut rng, i % 2));
    }
    let mut fs = FastShapelets::new(FastShapeletsParams {
        candidates_per_length: 25,
        seed: 2,
        ..Default::default()
    });
    fs.fit(&train).unwrap();
    let fs_err = fs.error_rate(&test).unwrap();
    assert!(fs_err <= 0.45, "FastShapelets error {fs_err}");
    let mut clf = fast_mvg();
    clf.fit(&train).unwrap();
    let mvg_err = clf.error_rate(&test).unwrap();
    assert!(mvg_err < 0.5, "MVG error {mvg_err}");
}

#[test]
fn visibility_invariants_hold_on_archive_series() {
    let (train, _) = tsc_mvg::datasets::archive::generate_by_name_scaled(
        "Herring",
        tsc_mvg::datasets::archive::ArchiveOptions::bounded(8, 128, 4),
    )
    .unwrap();
    for series in train.series() {
        let vg = visibility_graph(series.values());
        let hvg = horizontal_visibility_graph(series.values());
        assert!(hvg.is_subgraph_of(&vg));
        assert!(tsc_mvg::graph::is_connected(&vg));
        assert!(tsc_mvg::graph::is_connected(&hvg));
        let counts = count_motifs(&vg);
        let n = vg.n_vertices() as u64;
        assert_eq!(counts.total_size4(), n * (n - 1) * (n - 2) * (n - 3) / 24);
    }
}
