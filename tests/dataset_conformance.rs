//! Golden-fixture conformance suite for the `DatasetSource` pipeline.
//!
//! A split can reach feature extraction four ways: eager synthesis,
//! instance-at-a-time streaming, the on-disk cache, and a real UCR directory
//! tree (itself written by the hardened text writer). Feature-based
//! pipelines live or die on exact ingestion — an archive-parsing or
//! normalisation discrepancy silently changes every reported accuracy — so
//! this suite pins all four paths against each other **bit-for-bit**: same
//! feature matrices (raw `f64` bit patterns), same labels, and same
//! `MvgClassifier` predictions *and* probabilities, for three catalogue
//! datasets covering every fixture layout (nested/flat, extension-less /
//! `.txt` / `.tsv`, comma/tab) plus the NaN-padded variable-length and
//! label-edge-case fixtures.

use std::path::PathBuf;
use tsc_mvg::datasets::archive::ArchiveOptions;
use tsc_mvg::datasets::cache::CACHE_DIR_ENV;
use tsc_mvg::datasets::fixture::{write_ucr_fixture_tree, LABELS_FIXTURE, VARLEN_FIXTURE};
use tsc_mvg::datasets::{DatasetSource, SourceKind, Split};
use tsc_mvg::ml::gbt::GradientBoostingParams;
use tsc_mvg::ml::FeatureMatrix;
use tsc_mvg::mvg::{
    extract_dataset_features, extract_features_streaming, ClassifierChoice, FeatureConfig,
    MvgClassifier, MvgConfig,
};
use tsc_mvg::ts::Dataset;

/// The catalogue datasets under conformance (≥ 3, spanning all four fixture
/// layout/extension/separator combinations via the rotation in
/// `tsg_datasets::fixture`).
const DATASETS: [&str; 4] = ["BeetleFly", "Wine", "Herring", "Meat"];

fn options() -> ArchiveOptions {
    ArchiveOptions::bounded(10, 64, 11)
}

/// The cache test mutates the process-wide `CACHE_DIR_ENV` while sibling
/// tests would otherwise run concurrently (and call `getenv` via
/// `std::env::temp_dir`, racing the `setenv`). Every test in this binary
/// takes this lock, so environment mutation is always exclusive.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Sets `CACHE_DIR_ENV` for the caller's scope and removes it on drop, so a
/// panicking assertion cannot leak a deleted temp directory into later tests.
struct CacheDirGuard;

impl CacheDirGuard {
    fn set(dir: &std::path::Path) -> Self {
        std::env::set_var(CACHE_DIR_ENV, dir);
        CacheDirGuard
    }
}

impl Drop for CacheDirGuard {
    fn drop(&mut self) {
        std::env::remove_var(CACHE_DIR_ENV);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsg-conformance-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn matrix_bits(m: &FeatureMatrix) -> Vec<Vec<u64>> {
    m.rows()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn proba_bits(table: &[Vec<f64>]) -> Vec<Vec<u64>> {
    table
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Feature config under test: BeetleFly runs the paper's full MVG cascade,
/// the rest the cheaper uniscale config (both exercise padding and naming).
fn feature_config(name: &str) -> FeatureConfig {
    if name == "BeetleFly" {
        FeatureConfig::mvg()
    } else {
        FeatureConfig::uvg()
    }
}

/// A small fixed-booster classifier configuration (deterministic, fast).
fn classifier_config(features: FeatureConfig) -> MvgConfig {
    MvgConfig {
        features,
        classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
            n_estimators: 15,
            max_depth: 3,
            learning_rate: 0.3,
            ..Default::default()
        }),
        oversample: true,
        n_threads: 2,
        seed: 11,
    }
}

/// Extracts a split both eagerly and through the streaming path of `source`,
/// asserting the two agree bit-for-bit, and returns the eager bits.
fn extract_both_ways(
    source: &DatasetSource,
    name: &str,
    split: Split,
    eager: &Dataset,
    config: &FeatureConfig,
    label: &str,
) -> Vec<Vec<u64>> {
    let (matrix, names) = extract_dataset_features(eager, config, 2);
    let stream = source
        .open_split(name, split)
        .unwrap_or_else(|e| panic!("[{label}] open {name} {split:?}: {e}"));
    assert_eq!(stream.n_instances(), eager.len(), "[{label}] {name}");
    assert_eq!(stream.max_length(), eager.max_length(), "[{label}] {name}");
    let streamed = extract_features_streaming(stream, eager.max_length(), config, 2)
        .unwrap_or_else(|e| panic!("[{label}] stream {name} {split:?}: {e}"));
    assert_eq!(streamed.names, names, "[{label}] {name}");
    assert_eq!(streamed.labels, eager.labels(), "[{label}] {name}");
    let bits = matrix_bits(&matrix);
    assert_eq!(
        matrix_bits(&streamed.features),
        bits,
        "[{label}] streaming != eager for {name} {split:?}"
    );
    bits
}

#[test]
fn streaming_eager_cached_and_real_paths_are_bit_identical() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let fixture_root = temp_dir("fixture");
    let cache_root = temp_dir("cache");
    // route the dataset cache into a private directory for this test only
    let _cache_dir = CacheDirGuard::set(&cache_root);
    write_ucr_fixture_tree(&fixture_root, &DATASETS, options(), false).expect("fixture tree");

    for name in DATASETS {
        let config = feature_config(name);

        // --- path 1: eager in-memory synthesis (the reference) -----------
        let synthetic_source = DatasetSource::synthetic(options());
        let reference = synthetic_source.resolve(name).unwrap();
        assert_eq!(reference.kind(), SourceKind::Synthetic, "{name}");
        let train_bits = extract_both_ways(
            &synthetic_source,
            name,
            Split::Train,
            &reference.train,
            &config,
            "synthetic",
        );
        let test_bits = extract_both_ways(
            &synthetic_source,
            name,
            Split::Test,
            &reference.test,
            &config,
            "synthetic",
        );

        // --- path 2: the on-disk cache (first call writes, second reads) --
        let cached_source = DatasetSource::cached(options());
        let first = cached_source.resolve(name).unwrap();
        assert_eq!(first.kind(), SourceKind::Cached, "{name}");
        let cached = cached_source.resolve(name).unwrap();
        assert_eq!(cached.kind(), SourceKind::Cached, "{name}");
        assert!(cached.train_provenance.content_hash.is_some());
        assert_eq!(
            extract_both_ways(
                &cached_source,
                name,
                Split::Train,
                &cached.train,
                &config,
                "cached"
            ),
            train_bits,
            "cached != synthetic for {name} train"
        );
        assert_eq!(
            extract_both_ways(
                &cached_source,
                name,
                Split::Test,
                &cached.test,
                &config,
                "cached"
            ),
            test_bits,
            "cached != synthetic for {name} test"
        );

        // --- path 3: real UCR files written by the golden fixture ---------
        let real_source = DatasetSource::synthetic(options()).with_ucr_dir(&fixture_root);
        let real = real_source.resolve(name).unwrap();
        assert_eq!(real.kind(), SourceKind::Real, "{name}");
        assert!(real.train_provenance.path.is_some(), "{name}");
        assert_eq!(
            extract_both_ways(
                &real_source,
                name,
                Split::Train,
                &real.train,
                &config,
                "real"
            ),
            train_bits,
            "real != synthetic for {name} train"
        );
        assert_eq!(
            extract_both_ways(&real_source, name, Split::Test, &real.test, &config, "real"),
            test_bits,
            "real != synthetic for {name} test"
        );

        // --- classifier conformance: identical predictions & probabilities
        let mut clf_synthetic = MvgClassifier::new(classifier_config(config.clone()));
        clf_synthetic.fit(&reference.train).unwrap();
        let pred_synthetic = clf_synthetic.predict(&reference.test).unwrap();
        let proba_synthetic = clf_synthetic.predict_proba(&reference.test).unwrap();
        for (label, pair) in [("cached", &cached), ("real", &real)] {
            let mut clf = MvgClassifier::new(classifier_config(config.clone()));
            clf.fit(&pair.train).unwrap();
            assert_eq!(
                clf.predict(&pair.test).unwrap(),
                pred_synthetic,
                "[{label}] predictions diverge for {name}"
            );
            assert_eq!(
                proba_bits(&clf.predict_proba(&pair.test).unwrap()),
                proba_bits(&proba_synthetic),
                "[{label}] probabilities diverge for {name}"
            );
        }
    }

    std::fs::remove_dir_all(&fixture_root).ok();
    std::fs::remove_dir_all(&cache_root).ok();
}

#[test]
fn variable_length_nan_padded_fixture_streams_identically() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let fixture_root = temp_dir("varlen");
    write_ucr_fixture_tree(&fixture_root, &[], options(), true).expect("fixture tree");
    let source = DatasetSource::synthetic(options()).with_ucr_dir(&fixture_root);
    let resolved = source.resolve(VARLEN_FIXTURE).unwrap();
    assert_eq!(resolved.kind(), SourceKind::Real);
    assert!(
        !resolved.train.is_uniform_length(),
        "fixture must exercise NaN padding"
    );
    // rows shorter than the longest series are zero-padded identically on
    // both paths; width comes from the advertised max length
    let config = FeatureConfig::uvg();
    for (split, eager) in [
        (Split::Train, &resolved.train),
        (Split::Test, &resolved.test),
    ] {
        extract_both_ways(&source, VARLEN_FIXTURE, split, eager, &config, "varlen");
    }
    std::fs::remove_dir_all(&fixture_root).ok();
}

#[test]
fn label_edge_case_fixture_remaps_consistently_across_paths() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let fixture_root = temp_dir("labels");
    write_ucr_fixture_tree(&fixture_root, &[], options(), true).expect("fixture tree");
    let source = DatasetSource::synthetic(options()).with_ucr_dir(&fixture_root);
    let resolved = source.resolve(LABELS_FIXTURE).unwrap();
    // raw labels 5, -2, 5, 9 → 0, 1, 0, 2 by first appearance in TRAIN
    assert_eq!(resolved.train.labels_required().unwrap(), vec![0, 1, 0, 2]);
    // TEST lists -2, 9 first, but shares TRAIN's label table: indices 1, 2
    // (a per-file remap would say 0, 1 and silently permute every score)
    assert_eq!(resolved.test.labels_required().unwrap(), vec![1, 2]);
    for (split, eager, expected) in [
        (Split::Train, &resolved.train, vec![0usize, 1, 0, 2]),
        (Split::Test, &resolved.test, vec![1, 2]),
    ] {
        let stream = source.open_split(LABELS_FIXTURE, split).unwrap();
        let streamed =
            extract_features_streaming(stream, eager.max_length(), &FeatureConfig::uvg(), 2)
                .unwrap();
        assert_eq!(streamed.labels_required().unwrap(), expected, "{split:?}");
    }
    std::fs::remove_dir_all(&fixture_root).ok();
}
