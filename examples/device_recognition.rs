//! Appliance / device recognition from electricity-usage profiles — the
//! industrial-monitoring scenario behind the ElectricDevices and
//! *KitchenAppliances datasets. Demonstrates the heuristic ablation of the
//! paper on a single dataset: UVG vs AMVG vs MVG feature sets.
//!
//! Run with `cargo run --release --example device_recognition`.

use tsc_mvg::datasets::archive::{generate_by_name_scaled, ArchiveOptions};
use tsc_mvg::ml::gbt::GradientBoostingParams;
use tsc_mvg::mvg::{ClassifierChoice, FeatureConfig, MvgClassifier, MvgConfig};

fn config_with(features: FeatureConfig) -> MvgConfig {
    MvgConfig {
        features,
        classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
            n_estimators: 40,
            max_depth: 4,
            learning_rate: 0.2,
            subsample: 0.7,
            colsample_bytree: 0.7,
            ..Default::default()
        }),
        oversample: true,
        n_threads: 4,
        seed: 11,
    }
}

fn main() {
    let options = ArchiveOptions::bounded(60, 360, 11);
    let (train, test) =
        generate_by_name_scaled("SmallKitchenAppliances", options).expect("dataset");
    println!(
        "Device recognition on SmallKitchenAppliances (synthetic stand-in): {} train / {} test, {} classes\n",
        train.len(),
        test.len(),
        train.n_classes()
    );

    for (name, features) in [
        ("UVG  (original scale only) ", FeatureConfig::uvg()),
        ("AMVG (approximations only) ", FeatureConfig::amvg()),
        ("MVG  (all scales)          ", FeatureConfig::mvg()),
    ] {
        let mut clf = MvgClassifier::new(config_with(features));
        clf.fit(&train).expect("training");
        let error = clf.error_rate(&test).expect("scoring");
        println!(
            "{name} error rate = {error:.3}   ({} features)",
            clf.feature_names().len()
        );
    }
    println!(
        "\nAs in Table 2 of the paper, the multiscale representation (MVG) typically\n\
         matches or improves on the single-scale variants because the classifier can\n\
         select discriminative features from every scale."
    );
}
