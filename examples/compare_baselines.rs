//! Head-to-head comparison of MVG against all five baselines of Table 3 on a
//! couple of synthetic archive datasets, with runtime accounting — a
//! miniature version of the paper's accuracy/efficiency benchmark.
//!
//! Run with `cargo run --release --example compare_baselines`.

use std::time::Instant;
use tsc_mvg::baselines::{
    FastShapelets, FastShapeletsParams, LearningShapelets, LearningShapeletsParams, NnClassifier,
    NnDistance, SaxVsm, SaxVsmParams, TscClassifier,
};
use tsc_mvg::datasets::archive::{generate_by_name_scaled, ArchiveOptions};
use tsc_mvg::mvg::{MvgClassifier, MvgConfig};

fn main() {
    let options = ArchiveOptions::bounded(40, 256, 3);
    for dataset_name in ["ShapeletSim", "Earthquakes"] {
        let (train, test) = generate_by_name_scaled(dataset_name, options).expect("dataset");
        println!(
            "\n=== {dataset_name} (synthetic stand-in): {} train / {} test, length {} ===",
            train.len(),
            test.len(),
            train.max_length()
        );
        println!("{:<20} {:>10} {:>12}", "method", "error", "seconds");

        let mut baselines: Vec<Box<dyn TscClassifier>> = vec![
            Box::new(NnClassifier::new(NnDistance::Euclidean)),
            Box::new(NnClassifier::new(NnDistance::Dtw {
                window_fraction: Some(0.1),
            })),
            Box::new(LearningShapelets::new(LearningShapeletsParams {
                n_iterations: 50,
                ..Default::default()
            })),
            Box::new(FastShapelets::new(FastShapeletsParams::default())),
            Box::new(SaxVsm::new(SaxVsmParams::default())),
        ];
        for baseline in baselines.iter_mut() {
            let start = Instant::now();
            baseline.fit(&train).expect("baseline training");
            let error = baseline.error_rate(&test).expect("baseline scoring");
            println!(
                "{:<20} {:>10.3} {:>12.2}",
                baseline.name(),
                error,
                start.elapsed().as_secs_f64()
            );
        }

        let start = Instant::now();
        let mut mvg = MvgClassifier::new(MvgConfig::fast());
        mvg.fit(&train).expect("MVG training");
        let error = mvg.error_rate(&test).expect("MVG scoring");
        println!(
            "{:<20} {:>10.3} {:>12.2}",
            "MVG",
            error,
            start.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nThe shape to look for (as in Table 3): MVG is competitive or better on\n\
         structure-defined datasets while staying much faster than the shapelet methods."
    );
}
