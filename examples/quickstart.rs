//! Quickstart: from a raw time series to visibility graphs, statistical
//! graph features, and a trained MVG classifier.
//!
//! Run with `cargo run --release --example quickstart`.

use tsc_mvg::datasets::archive::{generate_by_name_scaled, ArchiveOptions};
use tsc_mvg::graph::motifs::count_motifs;
use tsc_mvg::graph::stats::GraphStatistics;
use tsc_mvg::graph::visibility::{horizontal_visibility_graph, visibility_graph};
use tsc_mvg::mvg::{extract_series_features, FeatureConfig, MvgClassifier, MvgConfig};

fn main() {
    // --- 1. a small example series (the 20-point series of Figure 1) -------
    let series: Vec<f64> = (0..20)
        .map(|i| 0.5 + 0.4 * ((i as f64) * 0.9).sin() + 0.1 * ((i as f64) * 2.3).cos())
        .collect();
    let vg = visibility_graph(&series);
    let hvg = horizontal_visibility_graph(&series);
    println!("Figure 1 example: a 20-point series");
    println!(
        "  natural visibility graph:   {} vertices, {} edges",
        vg.n_vertices(),
        vg.n_edges()
    );
    println!(
        "  horizontal visibility graph: {} vertices, {} edges (always a subgraph of the VG: {})",
        hvg.n_vertices(),
        hvg.n_edges(),
        hvg.is_subgraph_of(&vg)
    );

    // --- 2. statistical graph features -------------------------------------
    let counts = count_motifs(&vg);
    let stats = GraphStatistics::compute(&vg);
    println!("\nStatistical features of the VG:");
    println!("  triangles            : {}", counts.triangle3);
    println!("  4-cliques            : {}", counts.clique4);
    println!("  density              : {:.3}", stats.density);
    println!("  max coreness         : {}", stats.max_coreness);
    println!("  degree assortativity : {:.3}", stats.assortativity);

    // --- 3. the full MVG feature vector ------------------------------------
    let long_series = tsc_mvg::ts::TimeSeries::new(
        (0..256)
            .map(|i| ((i as f64) * 0.2).sin() + 0.2 * ((i as f64) * 0.03).cos())
            .collect(),
    );
    let config = FeatureConfig::mvg();
    let features = extract_series_features(&long_series, &config);
    println!(
        "\nMVG feature vector of a 256-point series: {} features across {} scales × VG+HVG",
        features.len(),
        config.n_scales_for_length(long_series.len())
    );

    // --- 4. end-to-end classification on a synthetic UCR dataset ----------
    let (train, test) =
        generate_by_name_scaled("BeetleFly", ArchiveOptions::bounded(20, 256, 7)).expect("dataset");
    let mut clf = MvgClassifier::new(MvgConfig::fast());
    clf.fit(&train).expect("training");
    let accuracy = clf.score(&test).expect("scoring");
    println!(
        "\nBeetleFly (synthetic stand-in): trained on {} series, accuracy on {} test series = {:.3}",
        train.len(),
        test.len(),
        accuracy
    );
    println!("Top 5 most important features:");
    for feature in clf.feature_importances().into_iter().take(5) {
        println!("  {:<24} {:.4}", feature.name, feature.importance);
    }
}
