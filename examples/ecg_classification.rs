//! ECG classification: the kind of medical-monitoring workload the paper's
//! introduction motivates. Heartbeat series with different rhythms and
//! occasional arrhythmic beats are classified with the MVG pipeline and
//! compared against the 1NN-DTW baseline.
//!
//! Run with `cargo run --release --example ecg_classification`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsc_mvg::baselines::{NnClassifier, NnDistance, TscClassifier};
use tsc_mvg::mvg::{MvgClassifier, MvgConfig};
use tsc_mvg::ts::{generators, Dataset, TimeSeries};

/// Builds a three-class ECG-like dataset: normal sinus rhythm, tachycardia
/// (short period) and arrhythmia (irregular beats).
fn ecg_dataset(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dataset = Dataset::new("ecg_example");
    for i in 0..n_per_class * 3 {
        let class = i % 3;
        let (period, anomaly) = match class {
            0 => (length / 6, false),  // normal rhythm
            1 => (length / 10, false), // tachycardia
            _ => (length / 6, true),   // arrhythmia
        };
        let values = generators::ecg_like(&mut rng, length, period, 2.0, anomaly, 0.05);
        dataset.push(TimeSeries::with_label(values, class));
    }
    dataset
}

fn main() {
    let train = ecg_dataset(15, 280, 1);
    let test = ecg_dataset(12, 280, 2);
    println!(
        "ECG example: {} training / {} test series of length 280, 3 rhythm classes\n",
        train.len(),
        test.len()
    );

    // MVG pipeline
    let mut mvg = MvgClassifier::new(MvgConfig::fast());
    mvg.fit(&train).expect("MVG training");
    let mvg_accuracy = mvg.score(&test).expect("MVG scoring");
    println!("MVG (graph features + gradient boosting) accuracy: {mvg_accuracy:.3}");

    // 1NN-DTW baseline
    let mut dtw = NnClassifier::new(NnDistance::Dtw {
        window_fraction: Some(0.1),
    });
    dtw.fit(&train).expect("DTW training");
    let dtw_error = dtw.error_rate(&test).expect("DTW scoring");
    println!(
        "1NN-DTW baseline accuracy:                         {:.3}",
        1.0 - dtw_error
    );

    // which features carried the decision?
    println!("\nMost informative graph features for the rhythm classes:");
    for feature in mvg.feature_importances().into_iter().take(8) {
        println!("  {:<28} {:.4}", feature.name, feature.importance);
    }
    println!("\nPer-class prediction counts on the test set: {:?}", {
        let mut counts = [0usize; 3];
        for p in mvg.predict(&test).expect("prediction") {
            counts[p] += 1;
        }
        counts
    });
}
