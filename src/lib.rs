//! # tsc-mvg — Multiscale Visibility Graph time series classification
//!
//! Facade crate for the Rust reproduction of *"Extracting Statistical Graph
//! Features for Accurate and Efficient Time Series Classification"* (EDBT
//! 2018). It re-exports the workspace crates under short module names:
//!
//! * [`ts`] — time series substrate (PAA, multiscale approximation, DTW,
//!   SAX, generators, UCR I/O).
//! * [`graph`] — graph substrate (visibility graphs, graphlet counting,
//!   k-core, assortativity).
//! * [`ml`] — generic classifiers (gradient boosting, random forest, SVM,
//!   kNN, logistic regression), cross-validation, grid search, stacking.
//! * [`mvg`] — the paper's contribution: UVG/AMVG/MVG feature extraction and
//!   the end-to-end [`mvg::MvgClassifier`].
//! * [`baselines`] — 1NN-ED, 1NN-DTW, Fast Shapelets, Learning Shapelets,
//!   SAX-VSM, Bag-of-Patterns.
//! * [`datasets`] — the synthetic stand-in for the UCR archive, unified with
//!   the on-disk cache and real UCR directory trees behind the lazy,
//!   streaming [`datasets::DatasetSource`] resolver (instance-at-a-time
//!   split streams, per-split provenance; set `TSG_UCR_DIR` to run against
//!   the real archive).
//! * [`eval`] — Wilcoxon / Friedman–Nemenyi tests, ranks, scatter and table
//!   helpers used by the experiment binaries.
//! * [`serve`] — the batching classification server: model registry,
//!   micro-batch scheduler, metrics, and the `tsg-serve` / `serve_loadgen`
//!   binaries.
//!
//! ## Quick start
//!
//! ```
//! use tsc_mvg::datasets::archive::{generate_by_name_scaled, ArchiveOptions};
//! use tsc_mvg::mvg::{MvgClassifier, MvgConfig};
//!
//! // A small synthetic two-class problem (stand-in for a UCR dataset).
//! let options = ArchiveOptions::bounded(20, 192, 7);
//! let (train, test) = generate_by_name_scaled("BeetleFly", options).unwrap();
//! let mut clf = MvgClassifier::new(MvgConfig::fast());
//! clf.fit(&train).unwrap();
//! let accuracy = clf.score(&test).unwrap();
//! assert!((0.0..=1.0).contains(&accuracy));
//! ```

pub use tsg_baselines as baselines;
pub use tsg_core as mvg;
pub use tsg_datasets as datasets;
pub use tsg_eval as eval;
pub use tsg_graph as graph;
pub use tsg_ml as ml;
pub use tsg_serve as serve;
pub use tsg_ts as ts;
