//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so they are serialization-ready once
//! the real serde is available, but no code path actually serializes, so the
//! derives can legally expand to nothing: deriving is only required to
//! produce *valid* items, not trait impls.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
