//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to keep its
//! data types serialization-ready; nothing serializes at runtime (artefacts
//! are written as hand-formatted CSV/JSON text). This stub therefore ships
//! marker traits plus no-op derive macros under the canonical names, so the
//! source-level `use serde::{Deserialize, Serialize}` + `#[derive(...)]`
//! idiom compiles unchanged and swaps cleanly for the real crate when a
//! registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
