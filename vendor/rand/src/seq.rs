//! Slice helpers (`choose`, `shuffle`) mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Random-selection extension methods for slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly choose one element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
