//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the workspace actually uses are reimplemented
//! here behind the same names and signatures:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`;
//! * [`SeedableRng`] with `from_seed` and the SplitMix64-expanded
//!   `seed_from_u64` (same expansion scheme as the real crate, so seeds
//!   keep their "one u64 in, full seed out" ergonomics);
//! * [`seq::SliceRandom`] with `choose` and Fisher–Yates `shuffle`.
//!
//! The stream values are *not* bit-compatible with the real `rand` crate —
//! only the API contract and the determinism guarantees are preserved.

pub mod seq;

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type (e.g. `[u8; 32]` for ChaCha).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64`, expanded to a full seed with
    /// SplitMix64 (the same scheme the real `rand` crate uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly "at standard" from an RNG
/// (the stand-in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), matching rand's open interval.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Uniform draw in `[0, bound)` via Lemire-style widening multiply with a
/// rejection step to remove modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors the real crate's `Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample a value of type `T` "at standard" (uniform over the type's
    /// natural value range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
