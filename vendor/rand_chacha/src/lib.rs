//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: a genuine ChaCha stream-cipher keystream generator exposed through
//! the `rand` stub's [`RngCore`]/[`SeedableRng`] traits.
//!
//! The keystream is a faithful ChaCha implementation (Bernstein's quarter
//! round, 64-byte blocks, 64-bit block counter), but the word-extraction
//! order is not guaranteed to be bit-compatible with the real crate — only
//! determinism and statistical quality are preserved.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds — the speed-oriented variant used throughout this
/// workspace for reproducible experiment seeding.
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 20 rounds (the original cipher's strength).
pub type ChaCha20Rng = ChaChaRng<10>;

/// A ChaCha keystream generator; `DOUBLE_ROUNDS` column/diagonal round
/// pairs are applied per block (ChaCha8 ⇒ 4, ChaCha20 ⇒ 10).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Input state: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block` (16 ⇒ exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.index = 0;
        // 64-bit block counter in words 12..14
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter (12, 13) and nonce (14, 15) start at zero
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chacha20_rfc7539_block_function() {
        // RFC 7539 §2.3.2 test vector: key 00 01 … 1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        rng.state[12] = 1;
        rng.state[13] = 0x0900_0000;
        rng.state[14] = 0x4a00_0000;
        rng.state[15] = 0;
        rng.refill();
        assert_eq!(rng.block[0], 0xe4e7_f110);
        assert_eq!(rng.block[15], 0x4e3c_50a2);
    }
}
