//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — as a small wall-clock harness: each benchmark
//! is warmed up, then timed over `sample_size` samples, and the median,
//! minimum and maximum per-iteration times are printed. There is no
//! statistical analysis, HTML report, or baseline persistence; the bench
//! *targets* stay source-compatible with the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Identifier for one parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dtw", 512)` → `dtw/512`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing loop handle.
pub struct Bencher {
    samples: usize,
    /// Median / min / max per-iteration nanoseconds, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Time `routine`, first calibrating an iteration count so each sample
    /// runs for roughly a millisecond.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find iters/sample targeting ~1 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        self.result = Some((median, min, max));
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((median, min, max)) => println!(
                "{}/{id:<28} median {:>10}   (min {}, max {})",
                self.name,
                human_time(median),
                human_time(min),
                human_time(max),
            ),
            None => println!(
                "{}/{id}: no measurement (Bencher::iter never called)",
                self.name
            ),
        }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run(id, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Finish the group (prints a separating newline).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 100,
            _criterion: self,
        };
        group.run(id, |b| f(b));
        self
    }
}

/// Declare a benchmark group function list (source-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
