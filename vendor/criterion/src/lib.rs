//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — as a small wall-clock harness: each benchmark
//! is warmed up, then timed over `sample_size` samples, and the median,
//! minimum and maximum per-iteration times are printed. Every measurement is
//! also persisted as a JSON [`BaselineRecord`] under
//! `target/criterion-baselines/` so perf PRs can diff runs. There is no
//! statistical analysis or HTML report; the bench *targets* stay
//! source-compatible with the real crate.

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Identifier for one parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dtw", 512)` → `dtw/512`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing loop handle.
pub struct Bencher {
    samples: usize,
    /// Median / min / max per-iteration nanoseconds, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Time `routine`, first calibrating an iteration count so each sample
    /// runs for roughly a millisecond.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find iters/sample targeting ~1 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        self.result = Some((median, min, max));
    }
}

/// One persisted benchmark measurement (median / min / max nanoseconds per
/// iteration), written as a small JSON file so successive runs can be
/// compared out-of-band.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRecord {
    /// Full benchmark id, `group/function/parameter`.
    pub id: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl BaselineRecord {
    /// Serialises the record as JSON (hand-formatted; the workspace has no
    /// serde_json).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"id\": \"{}\",\n  \"median_ns\": {},\n  \"min_ns\": {},\n  \"max_ns\": {}\n}}\n",
            self.id.replace('\\', "\\\\").replace('"', "\\\""),
            self.median_ns,
            self.min_ns,
            self.max_ns
        )
    }

    /// Parses a record written by [`BaselineRecord::to_json`]. Returns `None`
    /// on any malformed field.
    pub fn from_json(text: &str) -> Option<Self> {
        let id = json_string_field(text, "id")?;
        Some(BaselineRecord {
            id,
            median_ns: json_number_field(text, "median_ns")?,
            min_ns: json_number_field(text, "min_ns")?,
            max_ns: json_number_field(text, "max_ns")?,
        })
    }
}

fn json_string_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = &rest[rest.find('"')? + 1..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            other => out.push(other),
        }
    }
    None
}

fn json_number_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = text[text.find(&needle)? + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Environment variable overriding [`baseline_dir`] wholesale. Point it at a
/// directory of committed baseline JSONs to gate a run against a historical
/// reference instead of the target-dir scratch baselines.
pub const BASELINE_DIR_ENV_VAR: &str = "CRITERION_BASELINE_DIR";

/// Directory baselines are persisted to and compared against:
/// `$CRITERION_BASELINE_DIR` if set, else `criterion-baselines/` under the
/// cargo target directory — `$CARGO_TARGET_DIR` if set, otherwise located by
/// walking up from the running bench executable (which lives in
/// `<target>/<profile>/deps`; `cargo bench` sets the *package* directory as
/// cwd, so a cwd-relative `target/` would scatter baselines per crate).
pub fn baseline_dir() -> PathBuf {
    if let Ok(dir) = std::env::var(BASELINE_DIR_ENV_VAR) {
        return PathBuf::from(dir);
    }
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("criterion-baselines");
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|name| name == "target") {
                return ancestor.join("criterion-baselines");
            }
        }
    }
    PathBuf::from("target").join("criterion-baselines")
}

/// File a benchmark id is persisted under (path separators and other
/// non-filename characters mapped to `_`).
pub fn baseline_path(id: &str) -> PathBuf {
    let sanitized: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    baseline_dir().join(format!("{sanitized}.json"))
}

/// Writes `record` under [`baseline_dir`], creating the directory on demand,
/// and returns the file path.
pub fn save_baseline(record: &BaselineRecord) -> std::io::Result<PathBuf> {
    let path = baseline_path(&record.id);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, record.to_json())?;
    Ok(path)
}

/// Loads the persisted baseline for `id`, if one exists and parses.
pub fn load_baseline(id: &str) -> Option<BaselineRecord> {
    let text = std::fs::read_to_string(baseline_path(id)).ok()?;
    // distinct ids can sanitize to the same filename; the JSON keeps the
    // exact id, so reject a record that belongs to a different benchmark
    BaselineRecord::from_json(&text).filter(|record| record.id == id)
}

/// How a bench run treats the persisted baselines: overwrite them (default),
/// or compare against them and flag regressions (`--compare`).
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// `--compare`: diff against the stored baselines instead of overwriting.
    pub compare: bool,
    /// `--compare-threshold <pct>`: a benchmark regresses when its median is
    /// more than this many percent above the baseline median (default 20).
    pub threshold_pct: f64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            compare: false,
            threshold_pct: 20.0,
        }
    }
}

impl RunConfig {
    /// Parses a `--compare` / `--compare-threshold <pct>` argument stream.
    /// Unknown flags (e.g. the `--bench` cargo passes to harness-less bench
    /// targets) are ignored, so the stub stays drop-in compatible.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut config = RunConfig::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--compare" => config.compare = true,
                "--compare-threshold" => {
                    if let Some(value) = args.next() {
                        config.apply_threshold(&value);
                    }
                }
                other => {
                    if let Some(value) = other.strip_prefix("--compare-threshold=") {
                        config.apply_threshold(value);
                    }
                }
            }
        }
        config
    }

    /// Sets the threshold from a raw argument value; malformed, negative or
    /// non-finite values are ignored (the default stands).
    fn apply_threshold(&mut self, raw: &str) {
        if let Ok(pct) = raw.trim().parse::<f64>() {
            if pct.is_finite() && pct >= 0.0 {
                self.threshold_pct = pct;
            }
        }
    }

    /// The process-wide config, parsed from `std::env::args` on first use.
    pub fn from_env() -> &'static RunConfig {
        static CONFIG: OnceLock<RunConfig> = OnceLock::new();
        CONFIG.get_or_init(|| RunConfig::parse(std::env::args().skip(1)))
    }
}

/// Outcome of diffing one measurement against its stored baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Median delta in percent (positive = slower than baseline).
    pub delta_pct: f64,
    /// Whether the delta exceeds the regression threshold.
    pub regressed: bool,
}

/// Diffs `current` against `baseline`: median delta in percent, flagged as a
/// regression when more than `threshold_pct` percent slower.
pub fn compare_records(
    current: &BaselineRecord,
    baseline: &BaselineRecord,
    threshold_pct: f64,
) -> Comparison {
    let delta_pct = if baseline.median_ns > 0.0 {
        (current.median_ns - baseline.median_ns) / baseline.median_ns * 100.0
    } else {
        0.0
    };
    Comparison {
        delta_pct,
        regressed: delta_pct > threshold_pct,
    }
}

fn regressions() -> &'static Mutex<Vec<String>> {
    static REGRESSIONS: Mutex<Vec<String>> = Mutex::new(Vec::new());
    &REGRESSIONS
}

fn record_regression(message: String) {
    regressions().lock().unwrap().push(message);
}

/// Called by `criterion_main!` after all groups ran: in `--compare` mode,
/// prints a summary and exits non-zero if any benchmark regressed past the
/// threshold. A no-op in the default (baseline-recording) mode.
pub fn finish_run() {
    let config = RunConfig::from_env();
    if !config.compare {
        return;
    }
    let regressed = regressions().lock().unwrap();
    if regressed.is_empty() {
        println!(
            "compare: all benchmarks within {:.1}% of baseline ({})",
            config.threshold_pct,
            baseline_dir().display()
        );
    } else {
        eprintln!(
            "compare: {} benchmark(s) regressed more than {:.1}% vs baseline ({}):",
            regressed.len(),
            config.threshold_pct,
            baseline_dir().display()
        );
        for line in regressed.iter() {
            eprintln!("  {line}");
        }
        std::process::exit(1);
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((median, min, max)) => {
                println!(
                    "{}/{id:<28} median {:>10}   (min {}, max {})",
                    self.name,
                    human_time(median),
                    human_time(min),
                    human_time(max),
                );
                let record = BaselineRecord {
                    id: format!("{}/{id}", self.name),
                    median_ns: median,
                    min_ns: min,
                    max_ns: max,
                };
                let config = RunConfig::from_env();
                if config.compare {
                    match load_baseline(&record.id) {
                        Some(baseline) => {
                            let cmp = compare_records(&record, &baseline, config.threshold_pct);
                            let speedup = baseline.median_ns / record.median_ns.max(1e-9);
                            println!(
                                "  Δ vs baseline: {:+.1}% (median {} → {}, {:.2}x){}",
                                cmp.delta_pct,
                                human_time(baseline.median_ns),
                                human_time(record.median_ns),
                                speedup,
                                if cmp.regressed {
                                    "  ** REGRESSED **"
                                } else {
                                    ""
                                },
                            );
                            if cmp.regressed {
                                record_regression(format!(
                                    "{}: {:+.1}% (median {} → {})",
                                    record.id,
                                    cmp.delta_pct,
                                    human_time(baseline.median_ns),
                                    human_time(record.median_ns),
                                ));
                            }
                        }
                        // compare mode never writes: the stored baselines are
                        // the reference and must survive the gating run
                        None => println!("  Δ vs baseline: no stored baseline, skipped"),
                    }
                } else if let Err(e) = save_baseline(&record) {
                    eprintln!("  failed to persist baseline for {}: {e}", record.id);
                }
            }
            None => println!(
                "{}/{id}: no measurement (Bencher::iter never called)",
                self.name
            ),
        }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run(id, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Finish the group (prints a separating newline).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 100,
            _criterion: self,
        };
        group.run(id, |b| f(b));
        self
    }
}

/// Declare a benchmark group function list (source-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups, then settle the `--compare`
/// gate (exits non-zero if any benchmark regressed past the threshold).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finish_run();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate process-wide environment variables
    /// (`CARGO_TARGET_DIR`, `CRITERION_BASELINE_DIR`).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn baseline_record_round_trips_through_json() {
        let record = BaselineRecord {
            id: "motifs/count_motifs/512".to_string(),
            median_ns: 12345.678,
            min_ns: 9876.5,
            max_ns: 23456.0,
        };
        let parsed = BaselineRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn baseline_file_round_trips_on_disk() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        // point the target dir at a scratch location so the test leaves the
        // real baselines untouched; CARGO_TARGET_DIR is read per call
        let scratch = std::env::temp_dir().join("criterion-baseline-roundtrip-test");
        let record = BaselineRecord {
            id: "group/bench with spaces/7".to_string(),
            median_ns: 1.5e6,
            min_ns: 1.0e6,
            max_ns: 2.0e6,
        };
        let previous = std::env::var("CARGO_TARGET_DIR").ok();
        std::env::set_var("CARGO_TARGET_DIR", &scratch);
        let saved = save_baseline(&record);
        let loaded = load_baseline(&record.id);
        let missing = load_baseline("never/benchmarked");
        // sanitizes to the same file as record.id but is a different
        // benchmark: the stored id must not be attributed to it
        let collided = load_baseline("group/bench_with/spaces/7");
        match previous {
            Some(v) => std::env::set_var("CARGO_TARGET_DIR", v),
            None => std::env::remove_var("CARGO_TARGET_DIR"),
        }
        let path = saved.unwrap();
        assert!(path.starts_with(&scratch));
        assert_eq!(loaded.unwrap(), record);
        assert!(missing.is_none());
        assert!(collided.is_none());
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(BaselineRecord::from_json("").is_none());
        assert!(BaselineRecord::from_json("{\"id\": \"x\"}").is_none());
        assert!(BaselineRecord::from_json(
            "{\"id\": \"x\", \"median_ns\": abc, \"min_ns\": 1, \"max_ns\": 2}"
        )
        .is_none());
    }

    #[test]
    fn run_config_parses_compare_flags() {
        let to_args = |raw: &[&str]| raw.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(RunConfig::parse(to_args(&[])), RunConfig::default());
        // cargo passes --bench to harness-less targets; it must be ignored
        let config = RunConfig::parse(to_args(&["--bench", "--compare"]));
        assert!(config.compare);
        assert_eq!(config.threshold_pct, 20.0);
        let config = RunConfig::parse(to_args(&["--compare", "--compare-threshold", "7.5"]));
        assert_eq!(config.threshold_pct, 7.5);
        let config = RunConfig::parse(to_args(&["--compare-threshold=40"]));
        assert_eq!(config.threshold_pct, 40.0);
        assert!(!config.compare);
        // malformed or negative thresholds fall back to the default
        for bad in ["--compare-threshold=abc", "--compare-threshold=-3"] {
            assert_eq!(RunConfig::parse(to_args(&[bad])).threshold_pct, 20.0);
        }
    }

    #[test]
    fn compare_records_flags_only_regressions_past_threshold() {
        let base = BaselineRecord {
            id: "g/b/1".to_string(),
            median_ns: 1000.0,
            min_ns: 900.0,
            max_ns: 1100.0,
        };
        let mut current = base.clone();
        // 10% slower under a 20% threshold: reported but not a regression
        current.median_ns = 1100.0;
        let cmp = compare_records(&current, &base, 20.0);
        assert!((cmp.delta_pct - 10.0).abs() < 1e-9);
        assert!(!cmp.regressed);
        // 30% slower: regression
        current.median_ns = 1300.0;
        assert!(compare_records(&current, &base, 20.0).regressed);
        // 2x faster: large negative delta, never a regression
        current.median_ns = 500.0;
        let cmp = compare_records(&current, &base, 20.0);
        assert!((cmp.delta_pct + 50.0).abs() < 1e-9);
        assert!(!cmp.regressed);
        // degenerate zero baseline never divides by zero
        let zero = BaselineRecord {
            median_ns: 0.0,
            ..base.clone()
        };
        assert_eq!(compare_records(&current, &zero, 20.0).delta_pct, 0.0);
    }

    #[test]
    fn baseline_dir_env_override_wins() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        let previous = std::env::var(BASELINE_DIR_ENV_VAR).ok();
        std::env::set_var(BASELINE_DIR_ENV_VAR, "/tmp/committed-baselines");
        let dir = baseline_dir();
        match previous {
            Some(v) => std::env::set_var(BASELINE_DIR_ENV_VAR, v),
            None => std::env::remove_var(BASELINE_DIR_ENV_VAR),
        }
        assert_eq!(dir, PathBuf::from("/tmp/committed-baselines"));
    }

    #[test]
    fn escaped_ids_survive() {
        let record = BaselineRecord {
            id: "odd\"chars\\here".to_string(),
            median_ns: 1.0,
            min_ns: 1.0,
            max_ns: 1.0,
        };
        let parsed = BaselineRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(parsed.id, record.id);
    }
}
