//! The case-execution loop.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!`); the case is discarded.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: String) -> Self {
        Self::Fail(message)
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies: ChaCha8 seeded from the test name, so the
/// case sequence is deterministic run-to-run and stable per test.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Drives one property over its case budget.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Create a runner for the property `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self { config, name }
    }

    /// Run `case` until the case budget is met, panicking on the first
    /// failure with the case index and message.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        // DefaultHasher uses fixed keys, so this seed is stable across runs
        // and builds of the same test name.
        let mut hasher = DefaultHasher::new();
        self.name.hash(&mut hasher);
        let seed = hasher.finish();
        let mut rng = TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        };
        let mut accepted: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = self.config.cases.saturating_mul(16).max(1024);
        let mut case_index: u64 = 0;
        while accepted < self.config.cases {
            case_index += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property {}: too many rejected cases ({rejected}); \
                             weaken the prop_assume! preconditions",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "property {} failed at case #{case_index} (seed {seed}): {message}",
                        self.name
                    );
                }
            }
        }
    }
}
