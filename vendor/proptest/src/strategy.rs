//! Input-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }
}

// A strategy behind a reference is still a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Length specification for [`vec`]: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        Self {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a length drawn from
/// a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Create a strategy producing vectors whose elements come from `element`
/// and whose length is drawn from `size` (a `usize` or `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
