//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/proptest)
//! property-testing framework.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * range strategies (`-1e3..1e3f64`, `2usize..10`), tuple strategies,
//!   `prop::collection::vec`, and [`Strategy::prop_map`];
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Inputs are generated from a ChaCha8 stream seeded deterministically from
//! the test name, so failures reproduce run-to-run. There is **no
//! shrinking**: a failing case reports the case index and message only.

pub mod strategy;
pub mod test_runner;

/// `prop::…` namespace (collection strategies).
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..100, v in prop::collection::vec(-1.0..1.0f64, 2..50)) {
///         prop_assert!(v.len() >= 2);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), rng);
                )+
                $body
                Ok(())
            });
        }
    )*};
}

/// Property-test assertion: fails the current case (no panic unwinding
/// through generated inputs) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discard the current case (it does not count towards the case budget)
/// when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
