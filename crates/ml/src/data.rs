//! Dense feature matrices, stratified folds and oversampling.

use crate::error::MlError;
use crate::Result;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl FeatureMatrix {
    /// Creates a matrix from row vectors. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(FeatureMatrix::default());
        }
        let n_cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_cols {
                return Err(MlError::InvalidData(format!(
                    "row {i} has {} columns, expected {n_cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(FeatureMatrix {
            data,
            n_rows: rows.len(),
            n_cols,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    pub fn from_flat(data: Vec<f64>, n_rows: usize, n_cols: usize) -> Result<Self> {
        if data.len() != n_rows * n_cols {
            return Err(MlError::InvalidData(format!(
                "buffer of length {} cannot be a {n_rows}x{n_cols} matrix",
                data.len()
            )));
        }
        Ok(FeatureMatrix {
            data,
            n_rows,
            n_cols,
        })
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// One column as an owned vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.n_rows).map(|i| self.get(i, j)).collect()
    }

    /// The value at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_cols + j]
    }

    /// Sets the value at `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n_cols + j] = value;
    }

    /// A new matrix consisting of the selected rows (cloned).
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.n_cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            data,
            n_rows: indices.len(),
            n_cols: self.n_cols,
        }
    }

    /// Appends the columns of `other` to this matrix (horizontal stack).
    pub fn hstack(&self, other: &FeatureMatrix) -> Result<FeatureMatrix> {
        if self.n_rows != other.n_rows {
            return Err(MlError::InvalidData(format!(
                "cannot hstack {} rows with {} rows",
                self.n_rows, other.n_rows
            )));
        }
        let n_cols = self.n_cols + other.n_cols;
        let mut data = Vec::with_capacity(self.n_rows * n_cols);
        for i in 0..self.n_rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(FeatureMatrix {
            data,
            n_rows: self.n_rows,
            n_cols,
        })
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.n_rows).map(move |i| self.row(i))
    }
}

/// Number of distinct classes, assuming labels are dense `0..k` indices.
pub fn n_classes(labels: &[usize]) -> usize {
    labels.iter().copied().max().map(|m| m + 1).unwrap_or(0)
}

/// Per-class counts, indexed by label.
pub fn class_counts(labels: &[usize]) -> Vec<usize> {
    let k = n_classes(labels);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    counts
}

/// Stratified k-fold splitter: every fold preserves the class balance of the
/// full label vector as closely as possible.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    n_splits: usize,
    seed: u64,
}

impl StratifiedKFold {
    /// Creates a splitter with `n_splits` folds (must be ≥ 2).
    pub fn new(n_splits: usize, seed: u64) -> Result<Self> {
        if n_splits < 2 {
            return Err(MlError::invalid("n_splits", "must be at least 2"));
        }
        Ok(StratifiedKFold { n_splits, seed })
    }

    /// Produces `(train_indices, validation_indices)` pairs, one per fold.
    ///
    /// Classes with fewer samples than folds still appear in every training
    /// split; their few samples are spread over the validation folds.
    pub fn split(&self, labels: &[usize]) -> Vec<(Vec<usize>, Vec<usize>)> {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.seed);
        let k = n_classes(labels);
        // shuffle indices within each class, then deal them round-robin
        let mut fold_of = vec![0usize; labels.len()];
        for class in 0..k {
            let mut idx: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
            idx.shuffle(&mut rng);
            for (pos, &i) in idx.iter().enumerate() {
                fold_of[i] = pos % self.n_splits;
            }
        }
        (0..self.n_splits)
            .map(|fold| {
                let mut train = Vec::new();
                let mut valid = Vec::new();
                for (i, &f) in fold_of.iter().enumerate() {
                    if f == fold {
                        valid.push(i);
                    } else {
                        train.push(i);
                    }
                }
                (train, valid)
            })
            .collect()
    }
}

/// Randomly oversamples minority classes until every class has as many
/// samples as the largest class. Returns the indices (into the original
/// arrays) of the resampled training set; the original indices always appear
/// first so no information is lost.
pub fn random_oversample<R: Rng + ?Sized>(labels: &[usize], rng: &mut R) -> Vec<usize> {
    let counts = class_counts(labels);
    let max_count = counts.iter().copied().max().unwrap_or(0);
    let mut out: Vec<usize> = (0..labels.len()).collect();
    for (class, &count) in counts.iter().enumerate() {
        if count == 0 || count == max_count {
            continue;
        }
        let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        for _ in 0..(max_count - count) {
            out.push(members[rng.gen_range(0..members.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matrix_construction_and_access() {
        let m =
            FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
        assert!(!m.is_empty());
        assert!(FeatureMatrix::from_rows(&[]).unwrap().is_empty());
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(FeatureMatrix::from_flat(vec![1.0; 5], 2, 2).is_err());
    }

    #[test]
    fn select_rows_and_hstack() {
        let m =
            FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.n_cols(), 4);
        assert_eq!(h.row(1), &[3.0, 4.0, 3.0, 4.0]);
        let other = FeatureMatrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(m.hstack(&other).is_err());
    }

    #[test]
    fn class_count_helpers() {
        let labels = [0, 1, 1, 2, 2, 2];
        assert_eq!(n_classes(&labels), 3);
        assert_eq!(class_counts(&labels), vec![1, 2, 3]);
        assert_eq!(n_classes(&[]), 0);
    }

    #[test]
    fn stratified_folds_preserve_balance() {
        // 30 samples of class 0, 15 of class 1, 6 of class 2
        let mut labels = vec![0usize; 30];
        labels.extend(vec![1usize; 15]);
        labels.extend(vec![2usize; 6]);
        let folds = StratifiedKFold::new(3, 7).unwrap().split(&labels);
        assert_eq!(folds.len(), 3);
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), labels.len());
            // each validation fold should hold roughly a third of each class
            let c = class_counts(&valid.iter().map(|&i| labels[i]).collect::<Vec<_>>());
            assert_eq!(c[0], 10);
            assert_eq!(c[1], 5);
            assert_eq!(c[2], 2);
            // no overlap
            for i in valid {
                assert!(!train.contains(i));
            }
        }
    }

    #[test]
    fn stratified_folds_are_seed_reproducible() {
        let labels: Vec<usize> = (0..57).map(|i| i % 3).collect();
        let reference = StratifiedKFold::new(3, 42).unwrap().split(&labels);
        // the same seed must reproduce identical folds on every call
        for _ in 0..3 {
            assert_eq!(
                StratifiedKFold::new(3, 42).unwrap().split(&labels),
                reference
            );
        }
        // and a different seed must actually reshuffle
        assert_ne!(
            StratifiedKFold::new(3, 43).unwrap().split(&labels),
            reference
        );
    }

    #[test]
    fn stratified_folds_with_tiny_classes() {
        let labels = vec![0, 0, 0, 0, 0, 1, 2];
        let folds = StratifiedKFold::new(3, 1).unwrap().split(&labels);
        for (train, valid) in &folds {
            assert!(!train.is_empty());
            assert!(!valid.is_empty() || valid.is_empty()); // folds may be small but never panic
            assert_eq!(train.len() + valid.len(), labels.len());
        }
        assert!(StratifiedKFold::new(1, 0).is_err());
    }

    #[test]
    fn oversampling_balances_classes() {
        let labels = vec![0, 0, 0, 0, 0, 0, 1, 1, 2];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let resampled = random_oversample(&labels, &mut rng);
        let new_labels: Vec<usize> = resampled.iter().map(|&i| labels[i]).collect();
        let counts = class_counts(&new_labels);
        assert_eq!(counts, vec![6, 6, 6]);
        // original indices preserved as a prefix
        assert_eq!(
            &resampled[..labels.len()],
            &(0..labels.len()).collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn oversampling_noop_when_balanced() {
        let labels = vec![0, 1, 0, 1];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(random_oversample(&labels, &mut rng).len(), 4);
    }
}
