//! # tsg-ml — generic machine-learning substrate
//!
//! The paper feeds statistical graph features into off-the-shelf classifiers
//! (XGBoost, Random Forest, SVM) tuned by stratified cross-validation and
//! grid search, and combines the best estimators per family through stacked
//! generalization (Algorithm 2). None of those components may be assumed to
//! exist in this environment, so this crate implements them from scratch:
//!
//! * [`data`] — dense feature matrices, label vectors, stratified k-fold
//!   splitting and random oversampling of minority classes.
//! * [`scaling`] — min-max and standard scalers (SVM inputs must be scaled).
//! * [`tree`] — CART decision trees for classification and second-order
//!   regression trees used inside gradient boosting.
//! * [`forest`] — Random Forest with bootstrap sampling and feature
//!   subsampling.
//! * [`gbt`] — gradient-boosted trees with the XGBoost objective
//!   (second-order gradients, shrinkage, L2 regularisation, row/column
//!   subsampling, softmax multi-class).
//! * [`svm`] — kernel SVM trained with SMO, one-vs-rest for multi-class.
//! * [`logreg`] — multinomial logistic regression (used as the stacking
//!   meta-learner).
//! * [`knn`] — k-nearest-neighbour classification with pluggable distances.
//! * [`metrics`] — accuracy, error rate, log-loss, confusion matrices.
//! * [`model_selection`] — stratified k-fold cross-validation and grid
//!   search driven by cross-entropy (equation 5).
//! * [`stacking`] — stacked generalization (Algorithm 2).

pub mod data;
pub mod error;
pub mod forest;
pub mod gbt;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod model_selection;
pub mod scaling;
pub mod snapshot;
pub mod stacking;
pub mod svm;
pub mod traits;
pub mod tree;

pub use data::{FeatureMatrix, StratifiedKFold};
pub use error::MlError;
pub use forest::{RandomForest, RandomForestParams};
pub use gbt::{GradientBoosting, GradientBoostingParams};
pub use knn::KnnClassifier;
pub use logreg::{LogisticRegression, LogisticRegressionParams};
pub use metrics::{accuracy, error_rate, log_loss, ConfusionMatrix};
pub use model_selection::{cross_val_log_loss, GridSearch};
pub use scaling::{MinMaxScaler, StandardScaler};
pub use snapshot::restore_classifier;
pub use stacking::{StackingEnsemble, StackingParams};
pub use svm::{SvmClassifier, SvmKernel, SvmParams};
pub use traits::Classifier;
pub use tree::{DecisionTree, DecisionTreeParams};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;
