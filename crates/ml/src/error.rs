//! Error type for the ML substrate.

use std::fmt;

/// Errors produced while training or applying models.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training data was empty or shapes did not line up.
    InvalidData(String),
    /// A hyper-parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// A model was asked to predict before being fitted.
    NotFitted,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
        }
    }
}

impl std::error::Error for MlError {}

impl MlError {
    /// Convenience constructor for [`MlError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        MlError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MlError::NotFitted.to_string().contains("fitted"));
        assert!(MlError::invalid("depth", "must be > 0")
            .to_string()
            .contains("depth"));
        assert!(MlError::InvalidData("empty".into())
            .to_string()
            .contains("empty"));
    }
}
