//! Stacked generalization (Algorithm 2 of the paper).
//!
//! The ensemble is built in three steps:
//!
//! 1. every candidate base configuration is scored by stratified k-fold
//!    cross-validation with cross-entropy (equation 5);
//! 2. the top-k configurations are kept;
//! 3. a logistic-regression meta-learner computes estimator weights from the
//!    out-of-fold probability predictions of the selected estimators, and the
//!    selected estimators are refit on the full training set.
//!
//! At prediction time the base estimators produce class probabilities which
//! the meta-learner combines into the final prediction.

use crate::data::{FeatureMatrix, StratifiedKFold};
use crate::error::MlError;
use crate::logreg::{LogisticRegression, LogisticRegressionParams};
use crate::model_selection::{cross_val_log_loss, ClassifierBuilder};
use crate::traits::Classifier;
use crate::Result;
use tsg_parallel::ThreadPool;

/// Hyper-parameters for [`StackingEnsemble`].
#[derive(Debug, Clone, Copy)]
pub struct StackingParams {
    /// Number of best base configurations to keep (Algorithm 2's `k`).
    pub top_k: usize,
    /// Number of stratified CV folds used both for selection and for the
    /// out-of-fold meta-features (the paper uses 3).
    pub cv_folds: usize,
    /// Random seed (fold assignment).
    pub seed: u64,
    /// Worker threads for candidate scoring, out-of-fold meta-features and
    /// base refits (`0` = process default). Candidates are independent and
    /// collected in registration order, so the fitted ensemble is identical
    /// for every thread count.
    pub n_threads: usize,
}

impl Default for StackingParams {
    fn default() -> Self {
        StackingParams {
            top_k: 5,
            cv_folds: 3,
            seed: 0,
            n_threads: 0,
        }
    }
}

/// Report of the selection phase for one candidate.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Candidate description.
    pub description: String,
    /// Cross-validated log-loss.
    pub log_loss: f64,
    /// Whether the candidate was kept in the ensemble.
    pub selected: bool,
}

/// A stacked generalization ensemble over heterogeneous base classifiers.
pub struct StackingEnsemble {
    params: StackingParams,
    candidates: Vec<(String, ClassifierBuilder)>,
    selected: Vec<usize>,
    scores: Vec<CandidateScore>,
    fitted_bases: Vec<Box<dyn Classifier>>,
    meta: Option<LogisticRegression>,
    n_classes: usize,
}

impl StackingEnsemble {
    /// Creates an empty ensemble.
    pub fn new(params: StackingParams) -> Self {
        StackingEnsemble {
            params,
            candidates: Vec::new(),
            selected: Vec::new(),
            scores: Vec::new(),
            fitted_bases: Vec::new(),
            meta: None,
            n_classes: 0,
        }
    }

    /// Registers a candidate base configuration.
    pub fn add_candidate(
        &mut self,
        description: impl Into<String>,
        builder: ClassifierBuilder,
    ) -> &mut Self {
        self.candidates.push((description.into(), builder));
        self
    }

    /// Number of registered candidates.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Scores from the selection phase (available after fitting).
    pub fn candidate_scores(&self) -> &[CandidateScore] {
        &self.scores
    }

    /// Builds the out-of-fold meta-feature matrix for the selected base
    /// estimators: one block of `n_classes` probability columns per
    /// estimator.
    fn out_of_fold_meta_features(
        &self,
        x: &FeatureMatrix,
        y: &[usize],
        k: usize,
    ) -> Result<FeatureMatrix> {
        let folds = StratifiedKFold::new(self.params.cv_folds, self.params.seed)?.split(y);
        let n = x.n_rows();
        // one probability block of k columns per selected estimator, each
        // computed independently on the pool
        let blocks: Vec<Vec<Vec<f64>>> =
            ThreadPool::new(self.params.n_threads).try_map(&self.selected, |&cand| {
                let mut block = vec![vec![1.0 / k as f64; k]; n];
                for (train_idx, valid_idx) in &folds {
                    if train_idx.is_empty() || valid_idx.is_empty() {
                        continue;
                    }
                    let x_train = x.select_rows(train_idx);
                    let y_train: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
                    let x_valid = x.select_rows(valid_idx);
                    let mut model = (self.candidates[cand].1)();
                    model.fit(&x_train, &y_train)?;
                    let proba = model.predict_proba(&x_valid)?;
                    for (row_in_valid, &orig_row) in valid_idx.iter().enumerate() {
                        for (class, slot) in block[orig_row].iter_mut().enumerate() {
                            *slot = proba[row_in_valid].get(class).copied().unwrap_or(0.0);
                        }
                    }
                }
                Ok(block)
            })?;
        let n_meta_cols = self.selected.len() * k;
        let mut meta = vec![vec![0.0; n_meta_cols]; n];
        for (slot, block) in blocks.iter().enumerate() {
            for (row, probs) in block.iter().enumerate() {
                meta[row][slot * k..(slot + 1) * k].copy_from_slice(probs);
            }
        }
        FeatureMatrix::from_rows(&meta)
    }

    /// Meta-features at prediction time: stacked probabilities from the
    /// fitted base estimators.
    fn prediction_meta_features(&self, x: &FeatureMatrix) -> Result<FeatureMatrix> {
        let k = self.n_classes;
        let mut meta = vec![vec![0.0; self.fitted_bases.len() * k]; x.n_rows()];
        for (slot, base) in self.fitted_bases.iter().enumerate() {
            let proba = base.predict_proba(x)?;
            for (i, p) in proba.iter().enumerate() {
                for class in 0..k {
                    meta[i][slot * k + class] = p.get(class).copied().unwrap_or(0.0);
                }
            }
        }
        FeatureMatrix::from_rows(&meta)
    }
}

impl Classifier for StackingEnsemble {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if self.candidates.is_empty() {
            return Err(MlError::InvalidData(
                "stacking ensemble has no candidates".into(),
            ));
        }
        if x.is_empty() || x.n_rows() != y.len() {
            return Err(MlError::InvalidData(
                "empty or mismatched training data".into(),
            ));
        }
        self.n_classes = crate::data::n_classes(y);
        let pool = ThreadPool::new(self.params.n_threads);
        // 1. score every candidate (independent CV runs on shared folds)
        let indices: Vec<usize> = (0..self.candidates.len()).collect();
        let mut scored: Vec<(usize, f64)> = pool.try_map(&indices, |&idx| {
            let loss = cross_val_log_loss(
                self.candidates[idx].1.as_ref(),
                x,
                y,
                self.params.cv_folds,
                self.params.seed,
            )?;
            Ok((idx, loss))
        })?;
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        // 2. keep the top-k
        let keep = self.params.top_k.max(1).min(scored.len());
        self.selected = scored.iter().take(keep).map(|(i, _)| *i).collect();
        self.scores = scored
            .iter()
            .map(|(i, loss)| CandidateScore {
                description: self.candidates[*i].0.clone(),
                log_loss: *loss,
                selected: self.selected.contains(i),
            })
            .collect();
        // 3. meta-learner on out-of-fold probabilities
        let meta_x = self.out_of_fold_meta_features(x, y, self.n_classes)?;
        let mut meta = LogisticRegression::new(LogisticRegressionParams {
            n_epochs: 400,
            learning_rate: 1.0,
            l2: 1e-4,
        });
        meta.fit(&meta_x, y)?;
        self.meta = Some(meta);
        // refit selected bases on the full training data
        self.fitted_bases = pool.try_map(&self.selected, |&cand| {
            let mut model = (self.candidates[cand].1)();
            model.fit(x, y)?;
            Ok(model)
        })?;
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        let meta = self.meta.as_ref().ok_or(MlError::NotFitted)?;
        let meta_x = self.prediction_meta_features(x)?;
        meta.predict_proba(&meta_x)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        format!(
            "Stacking(top_k={}, candidates={}, folds={})",
            self.params.top_k,
            self.candidates.len(),
            self.params.cv_folds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::{GradientBoosting, GradientBoostingParams};
    use crate::knn::KnnClassifier;
    use crate::metrics::accuracy;
    use crate::tree::{DecisionTree, DecisionTreeParams};

    fn dataset() -> (FeatureMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 2024u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..90 {
            let label = i % 3;
            rows.push(vec![label as f64 * 2.0 + next() * 0.8, next()]);
            labels.push(label);
        }
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    fn make_ensemble(top_k: usize) -> StackingEnsemble {
        let mut ens = StackingEnsemble::new(StackingParams {
            top_k,
            cv_folds: 3,
            seed: 1,
            ..Default::default()
        });
        ens.add_candidate(
            "gbt",
            Box::new(|| {
                Box::new(GradientBoosting::new(GradientBoostingParams {
                    n_estimators: 15,
                    max_depth: 3,
                    ..Default::default()
                })) as Box<dyn Classifier>
            }),
        );
        ens.add_candidate(
            "tree",
            Box::new(|| {
                Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>
            }),
        );
        ens.add_candidate(
            "knn",
            Box::new(|| Box::new(KnnClassifier::new(3)) as Box<dyn Classifier>),
        );
        ens.add_candidate(
            "stump",
            Box::new(|| {
                Box::new(DecisionTree::new(DecisionTreeParams {
                    max_depth: 0,
                    ..Default::default()
                })) as Box<dyn Classifier>
            }),
        );
        ens
    }

    #[test]
    fn stacking_learns_and_reports_scores() {
        let (x, y) = dataset();
        let mut ens = make_ensemble(2);
        ens.fit(&x, &y).unwrap();
        assert_eq!(ens.n_candidates(), 4);
        assert_eq!(ens.candidate_scores().len(), 4);
        assert_eq!(
            ens.candidate_scores().iter().filter(|s| s.selected).count(),
            2
        );
        // the degenerate stump must not be selected ahead of real models
        let stump = ens
            .candidate_scores()
            .iter()
            .find(|s| s.description == "stump")
            .unwrap();
        assert!(!stump.selected);
        let pred = ens.predict(&x).unwrap();
        assert!(
            accuracy(&y, &pred) > 0.85,
            "accuracy {}",
            accuracy(&y, &pred)
        );
        for p in ens.predict_proba(&x).unwrap() {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stacking_at_least_matches_members_on_train() {
        let (x, y) = dataset();
        let mut ens = make_ensemble(3);
        ens.fit(&x, &y).unwrap();
        let stack_acc = accuracy(&y, &ens.predict(&x).unwrap());
        // weakest candidate baseline: majority class stump
        let mut stump = DecisionTree::new(DecisionTreeParams {
            max_depth: 0,
            ..Default::default()
        });
        stump.fit(&x, &y).unwrap();
        let stump_acc = accuracy(&y, &stump.predict(&x).unwrap());
        assert!(stack_acc >= stump_acc);
    }

    #[test]
    fn thread_count_invariant() {
        let (x, y) = dataset();
        let fit_with = |n_threads: usize| {
            let mut ens = make_ensemble(2);
            ens.params.n_threads = n_threads;
            ens.fit(&x, &y).unwrap();
            let scores: Vec<u64> = ens
                .candidate_scores()
                .iter()
                .map(|s| s.log_loss.to_bits())
                .collect();
            (scores, ens.predict_proba(&x).unwrap())
        };
        let (ref_scores, ref_proba) = fit_with(1);
        for threads in [2, 7] {
            let (scores, proba) = fit_with(threads);
            assert_eq!(scores, ref_scores, "n_threads = {threads}");
            for (a, b) in proba.iter().flatten().zip(ref_proba.iter().flatten()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n_threads = {threads}");
            }
        }
    }

    #[test]
    fn unfitted_and_empty_errors() {
        let (x, y) = dataset();
        let ens = make_ensemble(2);
        assert!(ens.predict_proba(&x).is_err());
        let mut empty = StackingEnsemble::new(StackingParams::default());
        assert!(empty.fit(&x, &y).is_err());
    }
}
