//! k-nearest-neighbour classification over feature vectors.
//!
//! The 1NN time series baselines (1NN-ED / 1NN-DTW) operate on raw series in
//! the `tsg-baselines` crate; this classifier works on extracted feature
//! vectors with Euclidean distance and is mainly used as a sanity baseline
//! and in tests.

use crate::data::{n_classes, FeatureMatrix};
use crate::error::MlError;
use crate::traits::Classifier;
use crate::Result;
use serde::{Deserialize, Serialize};

/// k-nearest-neighbour classifier with Euclidean distance and majority vote.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    train_x: FeatureMatrix,
    train_y: Vec<usize>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Creates a classifier with the given `k` (must be ≥ 1).
    pub fn new(k: usize) -> Self {
        KnnClassifier {
            k: k.max(1),
            train_x: FeatureMatrix::default(),
            train_y: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if x.is_empty() || x.n_rows() != y.len() {
            return Err(MlError::InvalidData(
                "empty or mismatched training data".into(),
            ));
        }
        self.train_x = x.clone();
        self.train_y = y.to_vec();
        self.n_classes = n_classes(y);
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.train_x.is_empty() {
            return Err(MlError::NotFitted);
        }
        let k = self.k.min(self.train_x.n_rows());
        Ok(x.rows()
            .map(|row| {
                let mut dists: Vec<(f64, usize)> = self
                    .train_x
                    .rows()
                    .zip(self.train_y.iter())
                    .map(|(t, &label)| {
                        let d: f64 = t
                            .iter()
                            .zip(row.iter())
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        (d, label)
                    })
                    .collect();
                dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                let mut votes = vec![0.0; self.n_classes];
                for &(_, label) in dists.iter().take(k) {
                    votes[label] += 1.0;
                }
                for v in &mut votes {
                    *v /= k as f64;
                }
                votes
            })
            .collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        format!("KNN(k={})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn one_nearest_neighbour_memorises_training_set() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut knn = KnnClassifier::new(1);
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.predict(&x).unwrap(), y);
        let test = FeatureMatrix::from_rows(&[vec![0.4], vec![10.6]]).unwrap();
        assert_eq!(knn.predict(&test).unwrap(), vec![0, 1]);
    }

    #[test]
    fn k_three_majority_vote() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![5.0]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut knn = KnnClassifier::new(3);
        knn.fit(&x, &y).unwrap();
        let test = FeatureMatrix::from_rows(&[vec![0.05]]).unwrap();
        // 3 nearest are labels 0, 0, 1 → majority 0
        assert_eq!(knn.predict(&test).unwrap(), vec![0]);
        let proba = &knn.predict_proba(&test).unwrap()[0];
        assert!((proba[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_on_separated_clusters() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 3) as f64 * 10.0 + (i / 3) as f64 * 0.05])
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut knn = KnnClassifier::new(5);
        knn.fit(&x, &labels).unwrap();
        assert!(accuracy(&labels, &knn.predict(&x).unwrap()) > 0.95);
    }

    #[test]
    fn unfitted_errors() {
        let knn = KnnClassifier::new(1);
        let x = FeatureMatrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(knn.predict_proba(&x).is_err());
    }
}
