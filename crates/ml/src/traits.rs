//! The classifier abstraction shared by all models and the stacking layer.

use crate::data::FeatureMatrix;
use crate::Result;

/// A trainable multi-class classifier over dense feature vectors.
///
/// Labels are dense `0..k` class indices. `predict_proba` returns one
/// probability vector per row, summing to 1.
///
/// `Send + Sync` is part of the contract so fitted models can be shared
/// across worker threads (parallel grid search and stacking here, the
/// serving layer on the roadmap); every concrete model is plain data.
pub trait Classifier: Send + Sync {
    /// Fits the model to the training data.
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()>;

    /// Predicts class probabilities for every row of `x`.
    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>>;

    /// Predicts hard labels; the default implementation takes the arg-max of
    /// [`Classifier::predict_proba`].
    fn predict(&self, x: &FeatureMatrix) -> Result<Vec<usize>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| argmax(&p))
            .collect())
    }

    /// Number of classes seen during fitting.
    fn n_classes(&self) -> usize;

    /// A short human-readable description (family + key hyper-parameters),
    /// used in experiment reports.
    fn describe(&self) -> String {
        "classifier".to_string()
    }

    /// Serialises the fitted state (hyper-parameters included) into `out`,
    /// tag-prefixed so [`crate::snapshot::restore_classifier`] can rebuild
    /// the concrete model. Returns `false` — leaving `out` untouched — when
    /// the model family does not support snapshots; callers must then fall
    /// back to refitting rather than persisting a partial state.
    fn snapshot_state(&self, _out: &mut Vec<u8>) -> bool {
        false
    }
}

/// Index of the largest value (ties broken towards the smaller index).
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Normalises a non-negative vector into a probability distribution; uniform
/// when the sum is not positive.
pub fn normalize_proba(values: &mut [f64]) {
    let sum: f64 = values.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for v in values.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / values.len().max(1) as f64;
        for v in values.iter_mut() {
            *v = uniform;
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![1.0 / logits.len() as f64; logits.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_ties_and_basic() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn normalize_handles_zero_sum() {
        let mut v = vec![0.0, 0.0];
        normalize_proba(&mut v);
        assert_eq!(v, vec![0.5, 0.5]);
        let mut v = vec![1.0, 3.0];
        normalize_proba(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0] && p[0] > p[2]);
        let p = softmax(&[f64::NEG_INFINITY, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
