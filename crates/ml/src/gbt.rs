//! Gradient-boosted decision trees with the XGBoost objective.
//!
//! Implements the parts of XGBoost the paper's pipeline relies on:
//! second-order (gradient + hessian) boosting of regression trees on the
//! softmax objective, shrinkage (learning rate), L2 leaf regularisation
//! (`lambda`), minimum split gain (`gamma`), minimum child hessian weight,
//! row subsampling and per-tree column subsampling, plus gain-based feature
//! importances used for Figure 10.

use crate::data::{n_classes, FeatureMatrix};
use crate::error::MlError;
use crate::snapshot;
use crate::traits::{softmax, Classifier};
use crate::Result;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`GradientBoosting`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingParams {
    /// Number of boosting rounds (each round fits one tree per class).
    pub n_estimators: usize,
    /// Shrinkage applied to every leaf weight.
    pub learning_rate: f64,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// L2 regularisation on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum loss reduction required to split (XGBoost `gamma`).
    pub gamma: f64,
    /// Minimum sum of hessians in a child (XGBoost `min_child_weight`).
    pub min_child_weight: f64,
    /// Fraction of rows sampled per boosting round.
    pub subsample: f64,
    /// Fraction of columns sampled per tree.
    pub colsample_bytree: f64,
    /// Random seed for row/column subsampling.
    pub seed: u64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        GradientBoostingParams {
            n_estimators: 50,
            learning_rate: 0.1,
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            colsample_bytree: 1.0,
            seed: 0,
        }
    }
}

impl GradientBoostingParams {
    /// The configuration the paper grid-searches over (subsample and
    /// colsample fixed at 0.5 to prevent overfitting).
    pub fn paper_default() -> Self {
        GradientBoostingParams {
            n_estimators: 60,
            learning_rate: 0.1,
            max_depth: 10,
            subsample: 0.5,
            colsample_bytree: 0.5,
            ..Default::default()
        }
    }
}

/// One node of a regression tree; stored flat.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegNode {
    Leaf {
        weight: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegressionTree {
    nodes: Vec<RegNode>,
}

impl RegressionTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RegNode::Leaf { weight } => return *weight,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct TreeBuilder<'a> {
    x: &'a FeatureMatrix,
    grad: &'a [f64],
    hess: &'a [f64],
    params: &'a GradientBoostingParams,
    features: Vec<usize>,
    nodes: Vec<RegNode>,
    importance: Vec<f64>,
}

impl<'a> TreeBuilder<'a> {
    fn leaf_weight(&self, g: f64, h: f64) -> f64 {
        -g / (h + self.params.lambda)
    }

    fn build(&mut self, indices: Vec<usize>, depth: usize) -> usize {
        let g_total: f64 = indices.iter().map(|&i| self.grad[i]).sum();
        let h_total: f64 = indices.iter().map(|&i| self.hess[i]).sum();
        if depth >= self.params.max_depth || indices.len() < 2 {
            let weight = self.leaf_weight(g_total, h_total);
            self.nodes.push(RegNode::Leaf { weight });
            return self.nodes.len() - 1;
        }
        let parent_score = g_total * g_total / (h_total + self.params.lambda);
        let mut best: Option<(usize, f64, f64)> = None; // feature, threshold, gain
        for &feature in &self.features {
            let mut order = indices.clone();
            order.sort_by(|&a, &b| {
                self.x
                    .get(a, feature)
                    .partial_cmp(&self.x.get(b, feature))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            for pos in 1..order.len() {
                let moved = order[pos - 1];
                g_left += self.grad[moved];
                h_left += self.hess[moved];
                let prev_val = self.x.get(order[pos - 1], feature);
                let next_val = self.x.get(order[pos], feature);
                if prev_val == next_val {
                    continue;
                }
                let g_right = g_total - g_left;
                let h_right = h_total - h_left;
                if h_left < self.params.min_child_weight || h_right < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (g_left * g_left / (h_left + self.params.lambda)
                        + g_right * g_right / (h_right + self.params.lambda)
                        - parent_score)
                    - self.params.gamma;
                if gain > 0.0 && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                    best = Some((feature, 0.5 * (prev_val + next_val), gain));
                }
            }
        }
        let Some((feature, threshold, gain)) = best else {
            let weight = self.leaf_weight(g_total, h_total);
            self.nodes.push(RegNode::Leaf { weight });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.x.get(i, feature) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            let weight = self.leaf_weight(g_total, h_total);
            self.nodes.push(RegNode::Leaf { weight });
            return self.nodes.len() - 1;
        }
        self.importance[feature] += gain;
        self.nodes.push(RegNode::Leaf { weight: 0.0 });
        let node_id = self.nodes.len() - 1;
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        self.nodes[node_id] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }
}

/// Gradient-boosted trees with a softmax multi-class objective.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    params: GradientBoostingParams,
    /// `trees[round][class]`
    trees: Vec<Vec<RegressionTree>>,
    base_score: Vec<f64>,
    n_classes: usize,
    n_features: usize,
    feature_importance: Vec<f64>,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(params: GradientBoostingParams) -> Self {
        GradientBoosting {
            params,
            trees: Vec::new(),
            base_score: Vec::new(),
            n_classes: 0,
            n_features: 0,
            feature_importance: Vec::new(),
        }
    }

    /// The booster's hyper-parameters.
    pub fn params(&self) -> &GradientBoostingParams {
        &self.params
    }

    /// Total split gain accumulated per feature ("gain" importance),
    /// normalised to sum to 1. Empty before fitting.
    pub fn feature_importance(&self) -> Vec<f64> {
        let sum: f64 = self.feature_importance.iter().sum();
        if sum <= 0.0 {
            return self.feature_importance.clone();
        }
        self.feature_importance.iter().map(|v| v / sum).collect()
    }

    fn raw_scores(&self, row: &[f64]) -> Vec<f64> {
        let mut scores = self.base_score.clone();
        for round in &self.trees {
            for (class, tree) in round.iter().enumerate() {
                scores[class] += self.params.learning_rate * tree.predict_row(row);
            }
        }
        scores
    }

    /// Rebuilds a fitted booster from the body of a [`snapshot`] blob (the
    /// bytes after the [`snapshot::TAG_GBT`] tag). Fails closed with `None`
    /// on truncation or on any structurally invalid tree — node references
    /// must point strictly forward (the builder always emits children after
    /// their parent, which also guarantees `predict_row` terminates) and
    /// feature indices must be in range, so a corrupt snapshot can never
    /// panic or loop at prediction time.
    pub fn from_snapshot(r: &mut snapshot::SnapReader<'_>) -> Option<Self> {
        let params = GradientBoostingParams {
            n_estimators: r.u64()? as usize,
            learning_rate: r.f64()?,
            max_depth: r.u64()? as usize,
            lambda: r.f64()?,
            gamma: r.f64()?,
            min_child_weight: r.f64()?,
            subsample: r.f64()?,
            colsample_bytree: r.f64()?,
            seed: r.u64()?,
        };
        let n_classes = r.u64()? as usize;
        let n_features = r.u64()? as usize;
        let base_score = r.f64s()?;
        let feature_importance = r.f64s()?;
        if base_score.len() != n_classes || feature_importance.len() != n_features {
            return None;
        }
        let n_rounds = r.u32()? as usize;
        let mut trees = Vec::with_capacity(n_rounds.min(1 << 16));
        for _ in 0..n_rounds {
            let n_trees = r.u32()? as usize;
            if n_trees != n_classes {
                return None; // every round carries exactly one tree per class
            }
            let mut round = Vec::with_capacity(n_trees.min(1 << 16));
            for _ in 0..n_trees {
                round.push(read_tree(r, n_features)?);
            }
            trees.push(round);
        }
        Some(GradientBoosting {
            params,
            trees,
            base_score,
            n_classes,
            n_features,
            feature_importance,
        })
    }
}

/// Reads one regression tree, validating every node reference (see
/// [`GradientBoosting::from_snapshot`]).
fn read_tree(r: &mut snapshot::SnapReader<'_>, n_features: usize) -> Option<RegressionTree> {
    let n_nodes = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(n_nodes.min(1 << 16));
    for node_id in 0..n_nodes {
        let node = match r.u8()? {
            0 => RegNode::Leaf { weight: r.f64()? },
            1 => {
                let feature = r.u32()? as usize;
                let threshold = r.f64()?;
                let left = r.u32()? as usize;
                let right = r.u32()? as usize;
                if feature >= n_features
                    || left <= node_id
                    || right <= node_id
                    || left >= n_nodes
                    || right >= n_nodes
                {
                    return None;
                }
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                }
            }
            _ => return None,
        };
        nodes.push(node);
    }
    if nodes.is_empty() {
        return None; // predict_row dereferences node 0 unconditionally
    }
    Some(RegressionTree { nodes })
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if x.is_empty() || x.n_rows() != y.len() {
            return Err(MlError::InvalidData(
                "empty or mismatched training data".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.params.subsample) || self.params.subsample <= 0.0 {
            return Err(MlError::invalid("subsample", "must be in (0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.params.colsample_bytree)
            || self.params.colsample_bytree <= 0.0
        {
            return Err(MlError::invalid("colsample_bytree", "must be in (0, 1]"));
        }
        let n = x.n_rows();
        let k = n_classes(y);
        self.n_classes = k;
        self.n_features = x.n_cols();
        self.feature_importance = vec![0.0; x.n_cols()];
        self.trees.clear();
        // base score: log prior per class
        let mut prior = vec![0.0f64; k];
        for &label in y {
            prior[label] += 1.0;
        }
        self.base_score = prior
            .iter()
            .map(|c| ((c / n as f64).max(1e-12)).ln())
            .collect();

        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        // raw scores per sample per class
        let mut scores: Vec<Vec<f64>> = vec![self.base_score.clone(); n];

        for _round in 0..self.params.n_estimators {
            // softmax probabilities
            let probs: Vec<Vec<f64>> = scores.iter().map(|s| softmax(s)).collect();
            // row subsample
            let mut row_indices: Vec<usize> = (0..n).collect();
            if self.params.subsample < 1.0 {
                row_indices.shuffle(&mut rng);
                let keep = ((n as f64 * self.params.subsample).round() as usize)
                    .max(2)
                    .min(n);
                row_indices.truncate(keep);
            }
            let mut round_trees = Vec::with_capacity(k);
            for class in 0..k {
                // gradients / hessians of softmax cross-entropy
                let mut grad = vec![0.0f64; n];
                let mut hess = vec![0.0f64; n];
                for i in 0..n {
                    let p = probs[i][class];
                    let target = if y[i] == class { 1.0 } else { 0.0 };
                    grad[i] = p - target;
                    hess[i] = (p * (1.0 - p)).max(1e-16);
                }
                // column subsample
                let mut features: Vec<usize> = (0..x.n_cols()).collect();
                if self.params.colsample_bytree < 1.0 {
                    features.shuffle(&mut rng);
                    let keep = ((x.n_cols() as f64 * self.params.colsample_bytree).round()
                        as usize)
                        .max(1)
                        .min(x.n_cols());
                    features.truncate(keep);
                }
                let mut builder = TreeBuilder {
                    x,
                    grad: &grad,
                    hess: &hess,
                    params: &self.params,
                    features,
                    nodes: Vec::new(),
                    importance: vec![0.0; x.n_cols()],
                };
                builder.build(row_indices.clone(), 0);
                for (j, v) in builder.importance.iter().enumerate() {
                    self.feature_importance[j] += v;
                }
                let tree = RegressionTree {
                    nodes: builder.nodes,
                };
                // update scores for all rows; row index i addresses both the
                // score matrix and the feature matrix, as in the boosting
                // update equations
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    scores[i][class] += self.params.learning_rate * tree.predict_row(x.row(i));
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(x.rows().map(|row| softmax(&self.raw_scores(row))).collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        format!(
            "GradientBoosting(n_estimators={}, lr={}, max_depth={})",
            self.params.n_estimators, self.params.learning_rate, self.params.max_depth
        )
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) -> bool {
        snapshot::put_u8(out, snapshot::TAG_GBT);
        snapshot::put_u64(out, self.params.n_estimators as u64);
        snapshot::put_f64(out, self.params.learning_rate);
        snapshot::put_u64(out, self.params.max_depth as u64);
        snapshot::put_f64(out, self.params.lambda);
        snapshot::put_f64(out, self.params.gamma);
        snapshot::put_f64(out, self.params.min_child_weight);
        snapshot::put_f64(out, self.params.subsample);
        snapshot::put_f64(out, self.params.colsample_bytree);
        snapshot::put_u64(out, self.params.seed);
        snapshot::put_u64(out, self.n_classes as u64);
        snapshot::put_u64(out, self.n_features as u64);
        snapshot::put_f64s(out, &self.base_score);
        snapshot::put_f64s(out, &self.feature_importance);
        snapshot::put_u32(out, self.trees.len() as u32);
        for round in &self.trees {
            snapshot::put_u32(out, round.len() as u32);
            for tree in round {
                snapshot::put_u32(out, tree.nodes.len() as u32);
                for node in &tree.nodes {
                    match node {
                        RegNode::Leaf { weight } => {
                            snapshot::put_u8(out, 0);
                            snapshot::put_f64(out, *weight);
                        }
                        RegNode::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        } => {
                            snapshot::put_u8(out, 1);
                            snapshot::put_u32(out, *feature as u32);
                            snapshot::put_f64(out, *threshold);
                            snapshot::put_u32(out, *left as u32);
                            snapshot::put_u32(out, *right as u32);
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, log_loss};

    fn xor_like() -> (FeatureMatrix, Vec<usize>) {
        // XOR pattern, not linearly separable
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 777u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 0.4 - 0.2
        };
        for i in 0..120 {
            let (cx, cy, label) = match i % 4 {
                0 => (0.0, 0.0, 0usize),
                1 => (1.0, 1.0, 0),
                2 => (0.0, 1.0, 1),
                _ => (1.0, 0.0, 1),
            };
            rows.push(vec![cx + next(), cy + next()]);
            labels.push(label);
        }
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_like();
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_estimators: 30,
            max_depth: 3,
            learning_rate: 0.3,
            ..Default::default()
        });
        gbt.fit(&x, &y).unwrap();
        let pred = gbt.predict(&x).unwrap();
        assert!(
            accuracy(&y, &pred) > 0.95,
            "accuracy {}",
            accuracy(&y, &pred)
        );
    }

    #[test]
    fn multiclass_probabilities_valid_and_loss_decreases() {
        // three classes along one axis
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|i| vec![(i / 30) as f64 + (i % 30) as f64 / 100.0])
            .collect();
        let labels: Vec<usize> = (0..90).map(|i| i / 30).collect();
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut weak = GradientBoosting::new(GradientBoostingParams {
            n_estimators: 1,
            ..Default::default()
        });
        weak.fit(&x, &labels).unwrap();
        let mut strong = GradientBoosting::new(GradientBoostingParams {
            n_estimators: 40,
            ..Default::default()
        });
        strong.fit(&x, &labels).unwrap();
        let weak_loss = log_loss(&labels, &weak.predict_proba(&x).unwrap());
        let strong_loss = log_loss(&labels, &strong.predict_proba(&x).unwrap());
        assert!(strong_loss < weak_loss);
        for p in strong.predict_proba(&x).unwrap() {
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = xor_like();
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_estimators: 40,
            max_depth: 3,
            learning_rate: 0.3,
            subsample: 0.5,
            colsample_bytree: 0.5,
            seed: 5,
            ..Default::default()
        });
        gbt.fit(&x, &y).unwrap();
        assert!(accuracy(&y, &gbt.predict(&x).unwrap()) > 0.85);
    }

    #[test]
    fn feature_importance_highlights_informative_feature() {
        // feature 0 informative, feature 1 pure noise
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..100 {
            let label = i % 2;
            rows.push(vec![label as f64 + 0.2 * next(), next()]);
            labels.push(label);
        }
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_estimators: 10,
            ..Default::default()
        });
        gbt.fit(&x, &labels).unwrap();
        let imp = gbt.feature_importance();
        assert!(
            imp[0] > 0.9,
            "informative feature should dominate, got {imp:?}"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (x, y) = xor_like();
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            subsample: 0.0,
            ..Default::default()
        });
        assert!(gbt.fit(&x, &y).is_err());
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            colsample_bytree: 1.5,
            ..Default::default()
        });
        assert!(gbt.fit(&x, &y).is_err());
        let gbt = GradientBoosting::new(GradientBoostingParams::default());
        assert!(gbt.predict_proba(&x).is_err());
    }

    #[test]
    fn snapshot_roundtrips_bit_identically_and_fails_closed() {
        let (x, y) = xor_like();
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_estimators: 8,
            max_depth: 3,
            subsample: 0.7,
            colsample_bytree: 0.7,
            seed: 3,
            ..Default::default()
        });
        gbt.fit(&x, &y).unwrap();
        let mut bytes = Vec::new();
        assert!(gbt.snapshot_state(&mut bytes));
        let restored = crate::snapshot::restore_classifier(&bytes).unwrap();
        assert_eq!(restored.n_classes(), gbt.n_classes());
        for (a, b) in gbt
            .predict_proba(&x)
            .unwrap()
            .iter()
            .zip(restored.predict_proba(&x).unwrap().iter())
        {
            for (va, vb) in a.iter().zip(b.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "restored model drifted");
            }
        }
        // a second snapshot of the restored model is byte-identical
        let mut again = Vec::new();
        assert!(restored.snapshot_state(&mut again));
        assert_eq!(again, bytes);
        // every truncation fails closed — no panic, no partial model
        for cut in [0, 1, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                crate::snapshot::restore_classifier(&bytes[..cut]).is_none(),
                "truncation at {cut} restored a model"
            );
        }
        // trailing garbage is rejected outright
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(crate::snapshot::restore_classifier(&padded).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_like();
        let params = GradientBoostingParams {
            n_estimators: 5,
            subsample: 0.7,
            colsample_bytree: 0.7,
            seed: 11,
            ..Default::default()
        };
        let mut a = GradientBoosting::new(params);
        let mut b = GradientBoosting::new(params);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }
}
