//! CART decision trees for classification.
//!
//! Greedy binary trees with Gini impurity splits, optional per-split feature
//! subsampling (used by the random forest) and probability estimates from
//! leaf class frequencies.

use crate::data::{n_classes, FeatureMatrix};
use crate::error::MlError;
use crate::traits::Classifier;
use crate::Result;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (`None` = all features).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART classification tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    params: DecisionTreeParams,
    nodes: Vec<Node>,
    n_classes: usize,
    /// Gini importance accumulated per feature during training.
    feature_importance: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given parameters.
    pub fn new(params: DecisionTreeParams) -> Self {
        DecisionTree {
            params,
            nodes: Vec::new(),
            n_classes: 0,
            feature_importance: Vec::new(),
        }
    }

    /// Gini importances per feature (unnormalised impurity decrease sums).
    pub fn feature_importance(&self) -> &[f64] {
        &self.feature_importance
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / t;
                p * p
            })
            .sum::<f64>()
    }

    fn leaf_proba(&self, indices: &[usize], y: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &i in indices {
            counts[y[i]] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &FeatureMatrix,
        y: &[usize],
        indices: Vec<usize>,
        depth: usize,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        let class_counts = {
            let mut counts = vec![0usize; self.n_classes];
            for &i in &indices {
                counts[y[i]] += 1;
            }
            counts
        };
        let node_impurity = Self::gini(&class_counts, indices.len());
        let is_pure = class_counts.iter().filter(|&&c| c > 0).count() <= 1;
        if depth >= self.params.max_depth
            || indices.len() < self.params.min_samples_split
            || is_pure
        {
            let proba = self.leaf_proba(&indices, y);
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }

        // candidate features
        let n_features = x.n_cols();
        let mut features: Vec<usize> = (0..n_features).collect();
        if let Some(k) = self.params.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, n_features));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted_gini)
        for &feature in &features {
            // sort indices by this feature
            let mut order: Vec<usize> = indices.clone();
            order.sort_by(|&a, &b| {
                x.get(a, feature)
                    .partial_cmp(&x.get(b, feature))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = class_counts.clone();
            let total = order.len();
            for split_pos in 1..total {
                let moved = order[split_pos - 1];
                left_counts[y[moved]] += 1;
                right_counts[y[moved]] -= 1;
                let prev_val = x.get(order[split_pos - 1], feature);
                let next_val = x.get(order[split_pos], feature);
                if prev_val == next_val {
                    continue; // cannot split between equal values
                }
                if split_pos < self.params.min_samples_leaf
                    || total - split_pos < self.params.min_samples_leaf
                {
                    continue;
                }
                let gini_left = Self::gini(&left_counts, split_pos);
                let gini_right = Self::gini(&right_counts, total - split_pos);
                let weighted = (split_pos as f64 * gini_left
                    + (total - split_pos) as f64 * gini_right)
                    / total as f64;
                if best.map(|(_, _, g)| weighted < g).unwrap_or(true) {
                    best = Some((feature, 0.5 * (prev_val + next_val), weighted));
                }
            }
        }

        let Some((feature, threshold, weighted_gini)) = best else {
            let proba = self.leaf_proba(&indices, y);
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, feature) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            let proba = self.leaf_proba(&indices, y);
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }

        // impurity decrease weighted by node size, for feature importance
        self.feature_importance[feature] +=
            indices.len() as f64 * (node_impurity - weighted_gini).max(0.0);

        // placeholder node; children are appended after
        self.nodes.push(Node::Leaf { proba: Vec::new() });
        let node_id = self.nodes.len() - 1;
        let left = self.build(x, y, left_idx, depth + 1, rng);
        let right = self.build(x, y, right_idx, depth + 1, rng);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { proba } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if x.is_empty() || y.is_empty() {
            return Err(MlError::InvalidData("empty training data".into()));
        }
        if x.n_rows() != y.len() {
            return Err(MlError::InvalidData(format!(
                "{} rows but {} labels",
                x.n_rows(),
                y.len()
            )));
        }
        self.nodes.clear();
        self.n_classes = n_classes(y);
        self.feature_importance = vec![0.0; x.n_cols()];
        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        let root = self.build(x, y, (0..x.n_rows()).collect(), 0, &mut rng);
        debug_assert_eq!(root, 0);
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(x.rows().map(|row| self.predict_row(row).to_vec()).collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        format!("DecisionTree(max_depth={})", self.params.max_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (FeatureMatrix, Vec<usize>) {
        // class 0: x0 < 0, class 1: x0 > 0
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let sign = if i % 2 == 0 { -1.0 } else { 1.0 };
                vec![sign * (1.0 + (i as f64) * 0.1), (i as f64 * 37.0) % 5.0]
            })
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let (x, y) = separable();
        let mut tree = DecisionTree::new(DecisionTreeParams::default());
        tree.fit(&x, &y).unwrap();
        let pred = tree.predict(&x).unwrap();
        assert_eq!(pred, y);
        // the informative feature gets all the importance
        assert!(tree.feature_importance()[0] > 0.0);
        assert_eq!(tree.feature_importance()[1], 0.0);
    }

    #[test]
    fn respects_max_depth_zero() {
        let (x, y) = separable();
        let mut tree = DecisionTree::new(DecisionTreeParams {
            max_depth: 0,
            ..Default::default()
        });
        tree.fit(&x, &y).unwrap();
        // a single leaf predicts the majority class for everything
        let proba = tree.predict_proba(&x).unwrap();
        assert!(proba.iter().all(|p| p == &proba[0]));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = separable();
        let mut tree = DecisionTree::new(DecisionTreeParams {
            max_depth: 3,
            ..Default::default()
        });
        tree.fit(&x, &y).unwrap();
        for p in tree.predict_proba(&x).unwrap() {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn three_class_problem() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i / 20) as f64 * 10.0 + (i % 20) as f64 * 0.1])
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i / 20).collect();
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut tree = DecisionTree::new(DecisionTreeParams::default());
        tree.fit(&x, &labels).unwrap();
        assert_eq!(tree.n_classes(), 3);
        assert_eq!(tree.predict(&x).unwrap(), labels);
    }

    #[test]
    fn unfitted_and_invalid_inputs_error() {
        let tree = DecisionTree::new(DecisionTreeParams::default());
        let x = FeatureMatrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(tree.predict_proba(&x).is_err());
        let mut tree = DecisionTree::new(DecisionTreeParams::default());
        assert!(tree.fit(&FeatureMatrix::default(), &[]).is_err());
        assert!(tree.fit(&x, &[0, 1]).is_err());
    }

    #[test]
    fn constant_features_give_single_leaf() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let y = vec![0, 1, 0, 1];
        let mut tree = DecisionTree::new(DecisionTreeParams::default());
        tree.fit(&x, &y).unwrap();
        let proba = tree.predict_proba(&x).unwrap();
        assert!((proba[0][0] - 0.5).abs() < 1e-9);
    }
}
