//! Multinomial logistic regression trained by batch gradient descent.
//!
//! Used directly as a baseline classifier family and as the meta-learner that
//! computes estimator weights in the stacking ensemble (Algorithm 2, line 13).

use crate::data::{n_classes, FeatureMatrix};
use crate::error::MlError;
use crate::traits::{softmax, Classifier};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionParams {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of gradient descent epochs.
    pub n_epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams {
            learning_rate: 0.5,
            n_epochs: 300,
            l2: 1e-4,
        }
    }
}

/// Multinomial (softmax) logistic regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    params: LogisticRegressionParams,
    /// `weights[class][feature]`, last entry per class is the bias.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl LogisticRegression {
    /// Creates an unfitted model.
    pub fn new(params: LogisticRegressionParams) -> Self {
        LogisticRegression {
            params,
            weights: Vec::new(),
            n_classes: 0,
        }
    }

    /// The learned weight matrix (one row per class, bias last); empty before
    /// fitting. Exposed so the stacking layer can report estimator weights.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    fn logits(&self, row: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                let bias = w[w.len() - 1];
                w[..w.len() - 1]
                    .iter()
                    .zip(row.iter())
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + bias
            })
            .collect()
    }
}

impl Classifier for LogisticRegression {
    // index notation (grad[class][j], weights[class][j], y[i]) mirrors the
    // multinomial gradient equations; iterator chains would obscure them
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if x.is_empty() || x.n_rows() != y.len() {
            return Err(MlError::InvalidData(
                "empty or mismatched training data".into(),
            ));
        }
        let n = x.n_rows();
        let d = x.n_cols();
        let k = n_classes(y);
        self.n_classes = k;
        self.weights = vec![vec![0.0; d + 1]; k];
        for _ in 0..self.params.n_epochs {
            // accumulate batch gradient
            let mut grad = vec![vec![0.0f64; d + 1]; k];
            for i in 0..n {
                let row = x.row(i);
                let p = softmax(&self.logits(row));
                for class in 0..k {
                    let target = if y[i] == class { 1.0 } else { 0.0 };
                    let delta = p[class] - target;
                    for j in 0..d {
                        grad[class][j] += delta * row[j];
                    }
                    grad[class][d] += delta;
                }
            }
            let lr = self.params.learning_rate / n as f64;
            for class in 0..k {
                for j in 0..=d {
                    let reg = if j < d {
                        self.params.l2 * self.weights[class][j]
                    } else {
                        0.0
                    };
                    self.weights[class][j] -= lr * grad[class][j] + reg;
                }
            }
        }
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(x.rows().map(|row| softmax(&self.logits(row))).collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        format!(
            "LogisticRegression(lr={}, epochs={})",
            self.params.learning_rate, self.params.n_epochs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn two_gaussians() -> (FeatureMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..100 {
            let label = i % 2;
            let offset = label as f64 * 3.0;
            rows.push(vec![offset + next(), offset + next()]);
            labels.push(label);
        }
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separates_gaussians() {
        let (x, y) = two_gaussians();
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y).unwrap();
        assert!(accuracy(&y, &lr.predict(&x).unwrap()) > 0.95);
        assert_eq!(lr.n_classes(), 2);
        assert_eq!(lr.weights().len(), 2);
    }

    #[test]
    fn three_class_softmax() {
        let rows: Vec<Vec<f64>> = (0..90).map(|i| vec![(i / 30) as f64 * 2.0]).collect();
        let labels: Vec<usize> = (0..90).map(|i| i / 30).collect();
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut lr = LogisticRegression::new(LogisticRegressionParams {
            n_epochs: 800,
            learning_rate: 1.0,
            ..Default::default()
        });
        lr.fit(&x, &labels).unwrap();
        assert!(accuracy(&labels, &lr.predict(&x).unwrap()) > 0.9);
        for p in lr.predict_proba(&x).unwrap() {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn errors_on_unfitted_or_bad_input() {
        let lr = LogisticRegression::new(LogisticRegressionParams::default());
        let x = FeatureMatrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(lr.predict_proba(&x).is_err());
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        assert!(lr.fit(&FeatureMatrix::default(), &[]).is_err());
    }
}
