//! Cross-validation and grid search.
//!
//! The paper tunes each classifier family by stratified 3-fold
//! cross-validation scored with cross-entropy (equation 5), searching a small
//! hyper-parameter grid. The components here are classifier-agnostic: models
//! are supplied as *builder* closures so the same machinery drives XGBoost-
//! style boosting, random forests and SVMs, as well as the per-family
//! selection step of the stacking ensemble.

use crate::data::{FeatureMatrix, StratifiedKFold};
use crate::error::MlError;
use crate::metrics::log_loss;
use crate::traits::Classifier;
use crate::Result;
use tsg_parallel::ThreadPool;

/// A closure that produces a fresh, unfitted classifier.
pub type ClassifierBuilder = Box<dyn Fn() -> Box<dyn Classifier> + Send + Sync>;

/// Mean cross-validated log-loss of the model produced by `builder`.
///
/// Folds are stratified; the same seed yields the same folds across calls so
/// different candidates are compared on identical splits.
pub fn cross_val_log_loss(
    builder: &dyn Fn() -> Box<dyn Classifier>,
    x: &FeatureMatrix,
    y: &[usize],
    n_folds: usize,
    seed: u64,
) -> Result<f64> {
    if x.n_rows() != y.len() || x.is_empty() {
        return Err(MlError::InvalidData("empty or mismatched data".into()));
    }
    let folds = StratifiedKFold::new(n_folds, seed)?.split(y);
    let mut total = 0.0;
    let mut used = 0usize;
    for (train_idx, valid_idx) in folds {
        if train_idx.is_empty() || valid_idx.is_empty() {
            continue;
        }
        let x_train = x.select_rows(&train_idx);
        let y_train: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
        let x_valid = x.select_rows(&valid_idx);
        let y_valid: Vec<usize> = valid_idx.iter().map(|&i| y[i]).collect();
        let mut model = builder();
        model.fit(&x_train, &y_train)?;
        let proba = model.predict_proba(&x_valid)?;
        total += log_loss(&y_valid, &proba);
        used += 1;
    }
    if used == 0 {
        return Err(MlError::InvalidData("no usable folds".into()));
    }
    Ok(total / used as f64)
}

/// Mean cross-validated accuracy of the model produced by `builder`.
pub fn cross_val_accuracy(
    builder: &dyn Fn() -> Box<dyn Classifier>,
    x: &FeatureMatrix,
    y: &[usize],
    n_folds: usize,
    seed: u64,
) -> Result<f64> {
    if x.n_rows() != y.len() || x.is_empty() {
        return Err(MlError::InvalidData("empty or mismatched data".into()));
    }
    let folds = StratifiedKFold::new(n_folds, seed)?.split(y);
    let mut total = 0.0;
    let mut used = 0usize;
    for (train_idx, valid_idx) in folds {
        if train_idx.is_empty() || valid_idx.is_empty() {
            continue;
        }
        let x_train = x.select_rows(&train_idx);
        let y_train: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
        let x_valid = x.select_rows(&valid_idx);
        let y_valid: Vec<usize> = valid_idx.iter().map(|&i| y[i]).collect();
        let mut model = builder();
        model.fit(&x_train, &y_train)?;
        let pred = model.predict(&x_valid)?;
        total += crate::metrics::accuracy(&y_valid, &pred);
        used += 1;
    }
    if used == 0 {
        return Err(MlError::InvalidData("no usable folds".into()));
    }
    Ok(total / used as f64)
}

/// Result of evaluating one grid-search candidate.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// Index into the candidate list.
    pub candidate: usize,
    /// Candidate description.
    pub description: String,
    /// Mean cross-validated log-loss (lower is better).
    pub log_loss: f64,
}

/// Exhaustive search over a list of candidate model configurations, ranked by
/// stratified-CV cross-entropy.
pub struct GridSearch {
    candidates: Vec<(String, ClassifierBuilder)>,
    /// Number of CV folds (the paper uses 3).
    pub n_folds: usize,
    /// Seed shared across candidates so folds are identical.
    pub seed: u64,
    /// Worker threads for candidate evaluation (`0` = process default).
    /// Candidates are independent, share one seed and are collected in
    /// registration order, so results are identical for every thread count.
    pub n_threads: usize,
}

impl GridSearch {
    /// Creates an empty grid search with 3 folds on the default worker pool.
    pub fn new(seed: u64) -> Self {
        GridSearch {
            candidates: Vec::new(),
            n_folds: 3,
            seed,
            n_threads: 0,
        }
    }

    /// Adds a candidate configuration.
    pub fn add(&mut self, description: impl Into<String>, builder: ClassifierBuilder) -> &mut Self {
        self.candidates.push((description.into(), builder));
        self
    }

    /// Number of registered candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no candidates have been registered.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Evaluates all candidates and returns the results sorted by log-loss
    /// (best first).
    pub fn evaluate(&self, x: &FeatureMatrix, y: &[usize]) -> Result<Vec<GridSearchResult>> {
        if self.candidates.is_empty() {
            return Err(MlError::InvalidData("grid search has no candidates".into()));
        }
        let indices: Vec<usize> = (0..self.candidates.len()).collect();
        let mut results = ThreadPool::new(self.n_threads).try_map(&indices, |&idx| {
            let (description, builder) = &self.candidates[idx];
            let loss = cross_val_log_loss(builder.as_ref(), x, y, self.n_folds, self.seed)?;
            Ok(GridSearchResult {
                candidate: idx,
                description: description.clone(),
                log_loss: loss,
            })
        })?;
        results.sort_by(|a, b| {
            a.log_loss
                .partial_cmp(&b.log_loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(results)
    }

    /// Evaluates all candidates, refits the best one on the full data and
    /// returns `(fitted model, results)`.
    pub fn fit_best(
        &self,
        x: &FeatureMatrix,
        y: &[usize],
    ) -> Result<(Box<dyn Classifier>, Vec<GridSearchResult>)> {
        let results = self.evaluate(x, y)?;
        let best = &self.candidates[results[0].candidate];
        let mut model = (best.1)();
        model.fit(x, y)?;
        Ok((model, results))
    }

    /// Builds a fresh unfitted model for candidate `idx`.
    pub fn build(&self, idx: usize) -> Box<dyn Classifier> {
        (self.candidates[idx].1)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::{GradientBoosting, GradientBoostingParams};
    use crate::knn::KnnClassifier;
    use crate::tree::{DecisionTree, DecisionTreeParams};

    fn dataset() -> (FeatureMatrix, Vec<usize>) {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let label = i % 2;
                vec![
                    label as f64 * 2.0 + (i as f64 * 0.618) % 0.5,
                    (i as f64 * 0.33) % 1.0,
                ]
            })
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn cross_validation_scores_good_model_better_than_weak() {
        let (x, y) = dataset();
        let strong = |_: ()| {};
        let _ = strong;
        let good = cross_val_log_loss(
            &|| Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>,
            &x,
            &y,
            3,
            0,
        )
        .unwrap();
        let weak = cross_val_log_loss(
            &|| {
                Box::new(DecisionTree::new(DecisionTreeParams {
                    max_depth: 0,
                    ..Default::default()
                })) as Box<dyn Classifier>
            },
            &x,
            &y,
            3,
            0,
        )
        .unwrap();
        assert!(good < weak, "good {good} vs weak {weak}");
    }

    #[test]
    fn cross_val_accuracy_reasonable() {
        let (x, y) = dataset();
        let acc = cross_val_accuracy(
            &|| Box::new(KnnClassifier::new(1)) as Box<dyn Classifier>,
            &x,
            &y,
            3,
            0,
        )
        .unwrap();
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn grid_search_ranks_candidates_and_fits_best() {
        let (x, y) = dataset();
        let mut grid = GridSearch::new(42);
        grid.add(
            "gbt_shallow",
            Box::new(|| {
                Box::new(GradientBoosting::new(GradientBoostingParams {
                    n_estimators: 10,
                    max_depth: 2,
                    ..Default::default()
                })) as Box<dyn Classifier>
            }),
        );
        grid.add(
            "stump_forest",
            Box::new(|| {
                Box::new(DecisionTree::new(DecisionTreeParams {
                    max_depth: 0,
                    ..Default::default()
                })) as Box<dyn Classifier>
            }),
        );
        assert_eq!(grid.len(), 2);
        let (model, results) = grid.fit_best(&x, &y).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].log_loss <= results[1].log_loss);
        // the degenerate stump should never win
        assert_eq!(results[0].description, "gbt_shallow");
        let pred = model.predict(&x).unwrap();
        assert_eq!(pred.len(), y.len());
    }

    fn two_candidate_grid(seed: u64, n_threads: usize) -> GridSearch {
        let mut grid = GridSearch::new(seed);
        grid.n_threads = n_threads;
        grid.add(
            "gbt_shallow",
            Box::new(|| {
                Box::new(GradientBoosting::new(GradientBoostingParams {
                    n_estimators: 10,
                    max_depth: 2,
                    ..Default::default()
                })) as Box<dyn Classifier>
            }),
        );
        grid.add(
            "tree",
            Box::new(|| {
                Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>
            }),
        );
        grid
    }

    #[test]
    fn same_seed_reproduces_identical_grid_search() {
        let (x, y) = dataset();
        let reference = two_candidate_grid(11, 1).evaluate(&x, &y).unwrap();
        // repeated runs and every thread count must reproduce the winner and
        // the exact loss values (same folds, same candidate order)
        for n_threads in [1, 1, 2, 7] {
            let results = two_candidate_grid(11, n_threads).evaluate(&x, &y).unwrap();
            assert_eq!(results[0].candidate, reference[0].candidate);
            for (a, b) in results.iter().zip(reference.iter()) {
                assert_eq!(a.candidate, b.candidate, "n_threads = {n_threads}");
                assert_eq!(
                    a.log_loss.to_bits(),
                    b.log_loss.to_bits(),
                    "n_threads = {n_threads}"
                );
            }
        }
    }

    #[test]
    fn cross_val_is_seed_reproducible() {
        let (x, y) = dataset();
        let builder =
            || Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>;
        let a = cross_val_log_loss(&builder, &x, &y, 3, 99).unwrap();
        let b = cross_val_log_loss(&builder, &x, &y, 3, 99).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn grid_search_propagates_candidate_errors() {
        let (x, y) = dataset();
        let mut grid = two_candidate_grid(0, 2);
        grid.add(
            "broken",
            Box::new(|| {
                // n_estimators = 0 fails validation inside fit
                Box::new(GradientBoosting::new(GradientBoostingParams {
                    n_estimators: 0,
                    ..Default::default()
                })) as Box<dyn Classifier>
            }),
        );
        assert!(grid.evaluate(&x, &y).is_err());
    }

    #[test]
    fn empty_grid_rejected() {
        let (x, y) = dataset();
        let grid = GridSearch::new(0);
        assert!(grid.is_empty());
        assert!(grid.evaluate(&x, &y).is_err());
    }
}
