//! Byte-level helpers for fitted-model snapshots.
//!
//! Snapshots are a small hand-rolled little-endian binary format (the
//! environment has no real serde backend — the vendored `serde` derives are
//! no-ops), mirroring the conventions of the dataset cache format in
//! `tsg_datasets::cache`: `u32`/`u64` little-endian integers, `f64` stored
//! as raw bits (so restored models are **bit-identical**, not merely
//! value-equal), and length-prefixed strings/vectors. Every read returns
//! `Option` and fails closed: a truncated or corrupt snapshot can never
//! panic or produce a half-restored model, it simply reads as `None` and the
//! caller falls back to refitting.

use crate::traits::Classifier;

/// Dispatch tag for a serialised [`crate::gbt::GradientBoosting`].
pub const TAG_GBT: u8 = 1;

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a `u32`-length-prefixed vector of raw `f64` bits.
pub fn put_f64s(out: &mut Vec<u8>, values: &[f64]) {
    put_u32(out, values.len() as u32);
    for &v in values {
        put_f64(out, v);
    }
}

/// Appends a `u32`-length-prefixed opaque byte blob.
pub fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Cursor over snapshot bytes; every accessor fails closed with `None` on
/// truncation, so corrupt input can never panic a reader.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| {
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            u32::from_le_bytes(a)
        })
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }

    /// Reads an `f64` from raw bits (bit-exact round-trip, `-0.0` and NaN
    /// payloads included).
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Reads a `u32`-length-prefixed opaque byte blob.
    pub fn blob(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed vector of `f64`s. The pre-allocation is
    /// capped so a corrupt length field cannot trigger a huge allocation
    /// before the reads fail at end-of-buffer.
    pub fn f64s(&mut self) -> Option<Vec<f64>> {
        let len = self.u32()? as usize;
        let mut values = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            values.push(self.f64()?);
        }
        Some(values)
    }
}

/// Restores a boxed classifier from tag-dispatched snapshot bytes (the
/// counterpart of [`Classifier::snapshot_state`]). `None` when the tag is
/// unknown, the body is corrupt, or trailing bytes remain.
pub fn restore_classifier(bytes: &[u8]) -> Option<Box<dyn Classifier>> {
    let mut r = SnapReader::new(bytes);
    let model: Box<dyn Classifier> = match r.u8()? {
        TAG_GBT => Box::new(crate::gbt::GradientBoosting::from_snapshot(&mut r)?),
        _ => return None,
    };
    if !r.is_empty() {
        return None; // trailing garbage: treat as corrupt
    }
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_bit_exact() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, -0.0);
        put_str(&mut out, "naïve");
        put_f64s(&mut out, &[1.5, f64::MIN_POSITIVE, f64::NAN]);
        let mut r = SnapReader::new(&out);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.str().as_deref(), Some("naïve"));
        let vs = r.f64s().unwrap();
        assert_eq!(vs[0], 1.5);
        assert_eq!(vs[1], f64::MIN_POSITIVE);
        assert!(vs[2].is_nan());
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_fails_closed_everywhere() {
        let mut out = Vec::new();
        put_str(&mut out, "hello");
        put_f64s(&mut out, &[1.0, 2.0]);
        for cut in 0..out.len() {
            let mut r = SnapReader::new(&out[..cut]);
            // either the string or the vector must fail; no panic, no partial
            if r.str().is_some() {
                assert!(r.f64s().is_none(), "cut at {cut} read a full vector");
            }
        }
    }

    #[test]
    fn corrupt_length_fields_do_not_overallocate_or_panic() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX); // absurd length, no payload
        assert!(SnapReader::new(&out).str().is_none());
        assert!(SnapReader::new(&out).f64s().is_none());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(restore_classifier(&[0xFF, 1, 2, 3]).is_none());
        assert!(restore_classifier(&[]).is_none());
    }
}
