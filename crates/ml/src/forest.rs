//! Random Forest: bagged CART trees with per-split feature subsampling.

use crate::data::{n_classes, FeatureMatrix};
use crate::error::MlError;
use crate::traits::Classifier;
use crate::tree::{DecisionTree, DecisionTreeParams};
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsg_parallel::ThreadPool;

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of features per split; `None` = `sqrt(n_features)`.
    pub max_features: Option<usize>,
    /// Random seed (bootstrap + feature subsampling).
    pub seed: u64,
    /// Worker threads for tree fitting (`0` = process default). Each tree
    /// draws from its own seed-derived RNG, so the fitted forest is
    /// identical for every thread count.
    pub n_threads: usize,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_estimators: 100,
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
            seed: 0,
            n_threads: 0,
        }
    }
}

/// Decorrelates the RNG stream of tree `t` from the forest seed (splitmix64
/// finaliser). Deriving per-tree seeds — rather than drawing all bootstraps
/// from one sequential RNG — is what makes tree fitting order-free and thus
/// safely parallel.
fn tree_seed(seed: u64, t: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Random Forest classifier (probability averaging over bootstrapped
/// trees).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    params: RandomForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(params: RandomForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    /// Mean decrease in impurity per feature, normalised to sum to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (j, &imp) in tree.feature_importance().iter().enumerate() {
                total[j] += imp;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if x.is_empty() || x.n_rows() != y.len() {
            return Err(MlError::InvalidData(
                "empty or mismatched training data".into(),
            ));
        }
        if self.params.n_estimators == 0 {
            return Err(MlError::invalid("n_estimators", "must be positive"));
        }
        self.n_classes = n_classes(y);
        self.n_features = x.n_cols();
        self.trees.clear();
        let max_features = self
            .params
            .max_features
            .unwrap_or_else(|| (x.n_cols() as f64).sqrt().ceil() as usize)
            .clamp(1, x.n_cols());
        let params = self.params;
        let tree_ids: Vec<u64> = (0..params.n_estimators as u64).collect();
        self.trees = ThreadPool::new(params.n_threads).try_map(&tree_ids, |&t| {
            // bootstrap sample of the rows, from this tree's own RNG stream
            let mut rng = ChaCha8Rng::seed_from_u64(tree_seed(params.seed, t));
            let indices: Vec<usize> = (0..x.n_rows())
                .map(|_| rng.gen_range(0..x.n_rows()))
                .collect();
            let xb = x.select_rows(&indices);
            let yb: Vec<usize> = indices.iter().map(|&i| y[i]).collect();
            // classes present in the bootstrap may miss rare classes; remap is
            // avoided by training on the global label space (leaf probabilities
            // are sized by the labels seen, so pad afterwards if needed)
            let mut tree = DecisionTree::new(DecisionTreeParams {
                max_depth: params.max_depth,
                min_samples_split: params.min_samples_split,
                min_samples_leaf: 1,
                max_features: Some(max_features),
                seed: tree_seed(params.seed, t).wrapping_add(1),
            });
            tree.fit(&xb, &yb)?;
            Ok(tree)
        })?;
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut out = vec![vec![0.0; self.n_classes]; x.n_rows()];
        for tree in &self.trees {
            let proba = tree.predict_proba(x)?;
            for (acc, p) in out.iter_mut().zip(proba.iter()) {
                for (j, &v) in p.iter().enumerate() {
                    if j < acc.len() {
                        acc[j] += v;
                    }
                }
            }
        }
        for p in &mut out {
            for v in p.iter_mut() {
                *v /= self.trees.len() as f64;
            }
        }
        Ok(out)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        format!(
            "RandomForest(n_estimators={}, max_depth={})",
            self.params.n_estimators, self.params.max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs(n_per_class: usize) -> (FeatureMatrix, Vec<usize>) {
        // three well-separated clusters in 2-D, deterministic pseudo-noise
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)];
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                rows.push(vec![cx + next(), cy + next()]);
                labels.push(c);
            }
        }
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn classifies_blobs() {
        let (x, y) = blobs(30);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 20,
            max_depth: 6,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        assert!(accuracy(&y, &pred) > 0.95);
        assert_eq!(rf.n_classes(), 3);
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = blobs(20);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        for p in rf.predict_proba(&x).unwrap() {
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn feature_importance_sums_to_one() {
        let (x, y) = blobs(20);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            ..Default::default()
        });
        rf.fit(&x, &y).unwrap();
        let imp = rf.feature_importance();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(15);
        let mut a = RandomForest::new(RandomForestParams {
            n_estimators: 5,
            seed: 9,
            ..Default::default()
        });
        let mut b = RandomForest::new(RandomForestParams {
            n_estimators: 5,
            seed: 9,
            ..Default::default()
        });
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn thread_count_invariant() {
        let (x, y) = blobs(15);
        let fit_with = |n_threads: usize| {
            let mut rf = RandomForest::new(RandomForestParams {
                n_estimators: 12,
                seed: 21,
                n_threads,
                ..Default::default()
            });
            rf.fit(&x, &y).unwrap();
            rf.predict_proba(&x).unwrap()
        };
        let reference = fit_with(1);
        for threads in [2, 7] {
            let proba = fit_with(threads);
            for (a, b) in proba.iter().flatten().zip(reference.iter().flatten()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n_threads = {threads}");
            }
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 0,
            ..Default::default()
        });
        let (x, y) = blobs(5);
        assert!(rf.fit(&x, &y).is_err());
        let rf = RandomForest::new(RandomForestParams::default());
        assert!(rf.predict_proba(&x).is_err());
    }
}
