//! Support Vector Machine trained with Sequential Minimal Optimization.
//!
//! Binary soft-margin SVM (Platt's simplified SMO) with linear or RBF
//! kernels, extended to multi-class with a one-vs-rest scheme. Probabilities
//! are obtained by passing decision values through a logistic link and
//! normalising — sufficient for ranking estimators with log-loss during
//! model selection and for stacking.

use crate::data::{n_classes, FeatureMatrix};
use crate::error::MlError;
use crate::traits::{normalize_proba, Classifier};
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Kernel function choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SvmKernel {
    /// Plain dot product.
    Linear,
    /// Gaussian radial basis function `exp(-gamma ||x - y||²)`.
    Rbf {
        /// Kernel bandwidth.
        gamma: f64,
    },
}

impl SvmKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            SvmKernel::Linear => a.iter().zip(b.iter()).map(|(x, y)| x * y).sum(),
            SvmKernel::Rbf { gamma } => {
                let sq: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * sq).exp()
            }
        }
    }
}

/// Hyper-parameters for [`SvmClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// Kernel.
    pub kernel: SvmKernel,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Number of passes without updates before stopping.
    pub max_passes: usize,
    /// Hard cap on optimisation sweeps.
    pub max_iterations: usize,
    /// Seed for the SMO partner selection.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 1.0,
            kernel: SvmKernel::Rbf { gamma: 1.0 },
            tolerance: 1e-3,
            max_passes: 3,
            max_iterations: 200,
            seed: 0,
        }
    }
}

/// One binary SVM (labels ±1) trained by simplified SMO.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinarySvm {
    alphas: Vec<f64>,
    bias: f64,
    support_rows: Vec<Vec<f64>>,
    support_targets: Vec<f64>,
    kernel: SvmKernel,
}

impl BinarySvm {
    fn train(x: &FeatureMatrix, targets: &[f64], params: &SvmParams, seed: u64) -> Self {
        let n = x.n_rows();
        let mut alphas = vec![0.0f64; n];
        let mut bias = 0.0f64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // precompute the kernel matrix (training sets in this pipeline are
        // modest; memory is n², acceptable for the paper's dataset sizes)
        let mut kmat = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = params.kernel.eval(x.row(i), x.row(j));
                kmat[i * n + j] = k;
                kmat[j * n + i] = k;
            }
        }
        let f = |alphas: &[f64], bias: f64, i: usize| -> f64 {
            let mut s = bias;
            for j in 0..n {
                if alphas[j] != 0.0 {
                    s += alphas[j] * targets[j] * kmat[i * n + j];
                }
            }
            s
        };
        let mut passes = 0usize;
        let mut iterations = 0usize;
        while passes < params.max_passes && iterations < params.max_iterations {
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alphas, bias, i) - targets[i];
                let violates = (targets[i] * e_i < -params.tolerance && alphas[i] < params.c)
                    || (targets[i] * e_i > params.tolerance && alphas[i] > 0.0);
                if !violates {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&alphas, bias, j) - targets[j];
                let (alpha_i_old, alpha_j_old) = (alphas[i], alphas[j]);
                let (low, high) = if (targets[i] - targets[j]).abs() > 1e-12 {
                    (
                        (alphas[j] - alphas[i]).max(0.0),
                        (params.c + alphas[j] - alphas[i]).min(params.c),
                    )
                } else {
                    (
                        (alphas[i] + alphas[j] - params.c).max(0.0),
                        (alphas[i] + alphas[j]).min(params.c),
                    )
                };
                if (high - low).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kmat[i * n + j] - kmat[i * n + i] - kmat[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut alpha_j = alpha_j_old - targets[j] * (e_i - e_j) / eta;
                alpha_j = alpha_j.clamp(low, high);
                if (alpha_j - alpha_j_old).abs() < 1e-6 {
                    continue;
                }
                let alpha_i = alpha_i_old + targets[i] * targets[j] * (alpha_j_old - alpha_j);
                alphas[i] = alpha_i;
                alphas[j] = alpha_j;
                let b1 = bias
                    - e_i
                    - targets[i] * (alpha_i - alpha_i_old) * kmat[i * n + i]
                    - targets[j] * (alpha_j - alpha_j_old) * kmat[i * n + j];
                let b2 = bias
                    - e_j
                    - targets[i] * (alpha_i - alpha_i_old) * kmat[i * n + j]
                    - targets[j] * (alpha_j - alpha_j_old) * kmat[j * n + j];
                bias = if alpha_i > 0.0 && alpha_i < params.c {
                    b1
                } else if alpha_j > 0.0 && alpha_j < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iterations += 1;
        }
        // keep only support vectors
        let mut support_rows = Vec::new();
        let mut support_targets = Vec::new();
        let mut support_alphas = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-8 {
                support_rows.push(x.row(i).to_vec());
                support_targets.push(targets[i]);
                support_alphas.push(alphas[i]);
            }
        }
        BinarySvm {
            alphas: support_alphas,
            bias,
            support_rows,
            support_targets,
            kernel: params.kernel,
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        let mut s = self.bias;
        for ((alpha, target), sv) in self
            .alphas
            .iter()
            .zip(self.support_targets.iter())
            .zip(self.support_rows.iter())
        {
            s += alpha * target * self.kernel.eval(sv, row);
        }
        s
    }
}

/// One-vs-rest kernel SVM classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmClassifier {
    params: SvmParams,
    machines: Vec<BinarySvm>,
    n_classes: usize,
}

impl SvmClassifier {
    /// Creates an unfitted classifier.
    pub fn new(params: SvmParams) -> Self {
        SvmClassifier {
            params,
            machines: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for SvmClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize]) -> Result<()> {
        if x.is_empty() || x.n_rows() != y.len() {
            return Err(MlError::InvalidData(
                "empty or mismatched training data".into(),
            ));
        }
        if self.params.c <= 0.0 {
            return Err(MlError::invalid("c", "must be positive"));
        }
        self.n_classes = n_classes(y);
        self.machines.clear();
        if self.n_classes < 2 {
            return Err(MlError::InvalidData("need at least two classes".into()));
        }
        for class in 0..self.n_classes {
            let targets: Vec<f64> = y
                .iter()
                .map(|&l| if l == class { 1.0 } else { -1.0 })
                .collect();
            let machine =
                BinarySvm::train(x, &targets, &self.params, self.params.seed + class as u64);
            self.machines.push(machine);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.machines.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(x.rows()
            .map(|row| {
                let mut scores: Vec<f64> = self
                    .machines
                    .iter()
                    .map(|m| 1.0 / (1.0 + (-m.decision(row)).exp()))
                    .collect();
                normalize_proba(&mut scores);
                scores
            })
            .collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn describe(&self) -> String {
        match self.params.kernel {
            SvmKernel::Linear => format!("SVM(linear, C={})", self.params.c),
            SvmKernel::Rbf { gamma } => format!("SVM(rbf, C={}, gamma={})", self.params.c, gamma),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn linearly_separable() -> (FeatureMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = 17u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 0.5
        };
        for i in 0..60 {
            let label = i % 2;
            let offset = if label == 0 { 0.0 } else { 2.0 };
            rows.push(vec![offset + next(), offset + next()]);
            labels.push(label);
        }
        (FeatureMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separates_linear_data_with_linear_kernel() {
        let (x, y) = linearly_separable();
        let mut svm = SvmClassifier::new(SvmParams {
            kernel: SvmKernel::Linear,
            c: 10.0,
            ..Default::default()
        });
        svm.fit(&x, &y).unwrap();
        assert!(accuracy(&y, &svm.predict(&x).unwrap()) > 0.95);
    }

    #[test]
    fn rbf_kernel_handles_circular_data() {
        // class 0 inside the unit circle, class 1 outside
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let angle = i as f64 * 0.5;
            let r = if i % 2 == 0 { 0.4 } else { 2.0 };
            rows.push(vec![r * angle.cos(), r * angle.sin()]);
            labels.push(i % 2);
        }
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut svm = SvmClassifier::new(SvmParams {
            kernel: SvmKernel::Rbf { gamma: 1.0 },
            c: 10.0,
            ..Default::default()
        });
        svm.fit(&x, &labels).unwrap();
        assert!(accuracy(&labels, &svm.predict(&x).unwrap()) > 0.9);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let class = i / 30;
            rows.push(vec![class as f64 * 3.0 + (i % 30) as f64 * 0.01, 0.0]);
            labels.push(class);
        }
        let x = FeatureMatrix::from_rows(&rows).unwrap();
        let mut svm = SvmClassifier::new(SvmParams {
            kernel: SvmKernel::Linear,
            c: 5.0,
            ..Default::default()
        });
        svm.fit(&x, &labels).unwrap();
        assert_eq!(svm.n_classes(), 3);
        assert!(accuracy(&labels, &svm.predict(&x).unwrap()) > 0.9);
        for p in svm.predict_proba(&x).unwrap() {
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (x, y) = linearly_separable();
        let mut svm = SvmClassifier::new(SvmParams {
            c: -1.0,
            ..Default::default()
        });
        assert!(svm.fit(&x, &y).is_err());
        let svm = SvmClassifier::new(SvmParams::default());
        assert!(svm.predict_proba(&x).is_err());
        let mut svm = SvmClassifier::new(SvmParams::default());
        assert!(svm.fit(&x, &vec![0; x.n_rows()]).is_err()); // single class
    }
}
