//! Feature scaling.
//!
//! Tree ensembles are insensitive to monotone feature transformations, but
//! SVM kernels are not: the paper min-max scales every feature into `[0, 1]`
//! before SVM training. Both a min-max scaler and a standard (z-score)
//! scaler are provided; each is fit on training data and then applied to
//! training and test matrices alike.

use crate::data::FeatureMatrix;
use crate::error::MlError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Rejects NaN / ±inf anywhere in `what`, naming the first offending
/// column. Without this, `f64::min`/`max` silently *skip* NaN during `fit`
/// and `NaN.clamp(..)` stays NaN through `transform`, so one bad feature
/// poisons every downstream model without an error.
fn reject_non_finite(x: &FeatureMatrix, what: &str) -> Result<()> {
    for (i, row) in x.rows().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(MlError::InvalidData(format!(
                    "non-finite value {v} in {what} (feature column {j}, row {i})"
                )));
            }
        }
    }
    Ok(())
}

/// Min-max scaler mapping each feature into `[0, 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on a training matrix.
    pub fn fit(x: &FeatureMatrix) -> Result<Self> {
        if x.is_empty() {
            return Err(MlError::InvalidData(
                "cannot fit scaler on empty matrix".into(),
            ));
        }
        reject_non_finite(x, "min-max scaler fit input")?;
        let mut mins = vec![f64::INFINITY; x.n_cols()];
        let mut maxs = vec![f64::NEG_INFINITY; x.n_cols()];
        for row in x.rows() {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins
            .iter()
            .zip(maxs.iter())
            .map(|(lo, hi)| hi - lo)
            .collect();
        Ok(MinMaxScaler { mins, ranges })
    }

    /// Applies the fitted scaling. Constant features map to `0.5`; values
    /// outside the training range are clipped to `[0, 1]`. Non-finite
    /// inputs are rejected (NaN would survive the clamp otherwise).
    pub fn transform(&self, x: &FeatureMatrix) -> Result<FeatureMatrix> {
        if x.n_cols() != self.mins.len() {
            return Err(MlError::InvalidData(format!(
                "scaler fitted on {} features, got {}",
                self.mins.len(),
                x.n_cols()
            )));
        }
        reject_non_finite(x, "min-max scaler transform input")?;
        let mut out = x.clone();
        for i in 0..x.n_rows() {
            for j in 0..x.n_cols() {
                let v = if self.ranges[j] < 1e-12 {
                    0.5
                } else {
                    ((x.get(i, j) - self.mins[j]) / self.ranges[j]).clamp(0.0, 1.0)
                };
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Convenience: fit on `x` and transform it in one call.
    pub fn fit_transform(x: &FeatureMatrix) -> Result<(Self, FeatureMatrix)> {
        let scaler = Self::fit(x)?;
        let t = scaler.transform(x)?;
        Ok((scaler, t))
    }

    /// Serialises the fitted scaling parameters (raw `f64` bits, so restored
    /// scalers transform bit-identically).
    pub fn snapshot_bytes(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_f64s(out, &self.mins);
        crate::snapshot::put_f64s(out, &self.ranges);
    }

    /// Rebuilds a fitted scaler from snapshot bytes; `None` on truncation or
    /// mismatched vector lengths (fails closed, like every snapshot reader).
    pub fn from_snapshot(r: &mut crate::snapshot::SnapReader<'_>) -> Option<Self> {
        let mins = r.f64s()?;
        let ranges = r.f64s()?;
        if mins.len() != ranges.len() {
            return None;
        }
        Some(MinMaxScaler { mins, ranges })
    }
}

/// Standard scaler mapping each feature to zero mean and unit variance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a training matrix.
    pub fn fit(x: &FeatureMatrix) -> Result<Self> {
        if x.is_empty() {
            return Err(MlError::InvalidData(
                "cannot fit scaler on empty matrix".into(),
            ));
        }
        reject_non_finite(x, "standard scaler fit input")?;
        let n = x.n_rows() as f64;
        let mut means = vec![0.0; x.n_cols()];
        for row in x.rows() {
            for (j, &v) in row.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; x.n_cols()];
        for row in x.rows() {
            for (j, &v) in row.iter().enumerate() {
                vars[j] += (v - means[j]) * (v - means[j]);
            }
        }
        let stds = vars.into_iter().map(|v| (v / n).sqrt()).collect();
        Ok(StandardScaler { means, stds })
    }

    /// Applies the fitted scaling; constant features map to zero.
    /// Non-finite inputs are rejected, mirroring [`MinMaxScaler`].
    pub fn transform(&self, x: &FeatureMatrix) -> Result<FeatureMatrix> {
        if x.n_cols() != self.means.len() {
            return Err(MlError::InvalidData(format!(
                "scaler fitted on {} features, got {}",
                self.means.len(),
                x.n_cols()
            )));
        }
        reject_non_finite(x, "standard scaler transform input")?;
        let mut out = x.clone();
        for i in 0..x.n_rows() {
            for j in 0..x.n_cols() {
                let v = if self.stds[j] < 1e-12 {
                    0.0
                } else {
                    (x.get(i, j) - self.means[j]) / self.stds[j]
                };
                out.set(i, j, v);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FeatureMatrix {
        FeatureMatrix::from_rows(&[
            vec![0.0, 10.0, 5.0],
            vec![5.0, 20.0, 5.0],
            vec![10.0, 40.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn minmax_maps_training_data_into_unit_interval() {
        let (scaler, t) = MinMaxScaler::fit_transform(&toy()).unwrap();
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(2, 0), 1.0);
        assert!((t.get(1, 0) - 0.5).abs() < 1e-12);
        // constant column maps to 0.5
        assert_eq!(t.get(0, 2), 0.5);
        // out-of-range test data is clipped
        let test = FeatureMatrix::from_rows(&[vec![-10.0, 100.0, 7.0]]).unwrap();
        let tt = scaler.transform(&test).unwrap();
        assert_eq!(tt.get(0, 0), 0.0);
        assert_eq!(tt.get(0, 1), 1.0);
    }

    #[test]
    fn standard_scaler_zero_mean_unit_variance() {
        let x = toy();
        let scaler = StandardScaler::fit(&x).unwrap();
        let t = scaler.transform(&x).unwrap();
        for j in 0..2 {
            let col = t.column(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
        // constant column → zeros
        assert!(t.column(2).iter().all(|v| *v == 0.0));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let scaler = MinMaxScaler::fit(&toy()).unwrap();
        let bad = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(scaler.transform(&bad).is_err());
        assert!(MinMaxScaler::fit(&FeatureMatrix::default()).is_err());
        assert!(StandardScaler::fit(&FeatureMatrix::default()).is_err());
    }

    // Regression: `f64::min`/`max` skip NaN, so a NaN column used to fit
    // "successfully" (mins stayed +inf) and `NaN.clamp(0, 1)` stayed NaN
    // through transform — the fitted model then consumed NaN silently.
    #[test]
    fn non_finite_fit_input_is_rejected_with_named_column() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let x = FeatureMatrix::from_rows(&[vec![0.0, 1.0, 2.0], vec![1.0, bad, 3.0]]).unwrap();
            let err = MinMaxScaler::fit(&x).unwrap_err().to_string();
            assert!(err.contains("feature column 1"), "{err}");
            assert!(err.contains("row 1"), "{err}");
            let err = StandardScaler::fit(&x).unwrap_err().to_string();
            assert!(err.contains("feature column 1"), "{err}");
        }
    }

    #[test]
    fn non_finite_transform_input_is_rejected() {
        let x = toy();
        let minmax = MinMaxScaler::fit(&x).unwrap();
        let standard = StandardScaler::fit(&x).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let t = FeatureMatrix::from_rows(&[vec![1.0, 2.0, bad]]).unwrap();
            let err = minmax.transform(&t).unwrap_err().to_string();
            assert!(err.contains("feature column 2"), "{err}");
            let err = standard.transform(&t).unwrap_err().to_string();
            assert!(err.contains("feature column 2"), "{err}");
        }
        // finite out-of-range data still transforms (clipped), as before
        let ok = FeatureMatrix::from_rows(&[vec![1e12, -1e12, 0.0]]).unwrap();
        assert!(minmax.transform(&ok).is_ok());
        assert!(standard.transform(&ok).is_ok());
    }
}
