//! Classification metrics: accuracy, error rate, cross-entropy (log-loss)
//! and confusion matrices.

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the ground truth.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth
        .iter()
        .zip(predicted.iter())
        .filter(|(t, p)| t == p)
        .count();
    correct as f64 / truth.len() as f64
}

/// `1 - accuracy`, the quantity the paper's tables report.
pub fn error_rate(truth: &[usize], predicted: &[usize]) -> f64 {
    1.0 - accuracy(truth, predicted)
}

/// Multi-class cross-entropy (equation 5 generalised to `k` classes):
/// `-(1/n) Σ log p_i(y_i)`. Probabilities are clipped to `[1e-15, 1]` so the
/// loss stays finite.
pub fn log_loss(truth: &[usize], probabilities: &[Vec<f64>]) -> f64 {
    assert_eq!(truth.len(), probabilities.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&y, p) in truth.iter().zip(probabilities.iter()) {
        let py = p.get(y).copied().unwrap_or(0.0).clamp(1e-15, 1.0);
        total -= py.ln();
    }
    total / truth.len() as f64
}

/// A `k × k` confusion matrix; rows are true classes, columns predictions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel truth/prediction vectors.
    pub fn from_predictions(truth: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in truth.iter().zip(predicted.iter()) {
            if t < n_classes && p < n_classes {
                counts[t][p] += 1;
            }
        }
        ConfusionMatrix { counts }
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Overall accuracy derived from the matrix.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (`None` for classes with no true samples).
    pub fn recalls(&self) -> Vec<Option<f64>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    None
                } else {
                    Some(row[i] as f64 / total as f64)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_error_rate() {
        let t = [0, 1, 2, 1];
        let p = [0, 1, 1, 1];
        assert!((accuracy(&t, &p) - 0.75).abs() < 1e-12);
        assert!((error_rate(&t, &p) - 0.25).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_perfect_and_poor() {
        let t = [0usize, 1];
        let perfect = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(log_loss(&t, &perfect) < 1e-10);
        let uncertain = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        assert!((log_loss(&t, &uncertain) - 0.5f64.ln().abs()).abs() < 1e-9);
        let wrong = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(log_loss(&t, &wrong) > 10.0); // clipped, large but finite
        assert!(log_loss(&t, &wrong).is_finite());
    }

    #[test]
    fn confusion_matrix_basics() {
        let t = [0, 0, 1, 1, 2];
        let p = [0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&t, &p, 3);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 2);
        assert_eq!(cm.get(2, 0), 1);
        assert_eq!(cm.n_classes(), 3);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        let recalls = cm.recalls();
        assert_eq!(recalls[0], Some(0.5));
        assert_eq!(recalls[1], Some(1.0));
        assert_eq!(recalls[2], Some(0.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        accuracy(&[0, 1], &[0]);
    }
}
