//! Per-family cost table for the tiered feature catalogue.
//!
//! Times every catalogue family in isolation on a deterministic synthetic
//! series (the graph families over the full MVG representation, the
//! statistical families over the raw values) and reports microseconds per
//! series and per feature next to each family's declared cost tier — the
//! empirical backing for the tier labels in `docs/feature-catalogue.md`.
//!
//! `--json-out PATH` additionally writes a machine-readable artifact which
//! CI uploads next to the loadgen JSONs, so per-family cost is trackable
//! across commits.
//!
//! ```sh
//! feature_timing [--length 256] [--reps 200] [--seed 3] [--json-out PATH]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use tsg_core::catalogue::{
    autocorrelation_features, distribution_features, fft_magnitude_features, peak_features,
    stat_family_len, trend_features, StatFamily, StatisticalConfig, FAMILIES,
};
use tsg_core::{motif_probability_distribution, FeatureConfig, SeriesGraphs};
use tsg_eval::{Stopwatch, Table};
use tsg_graph::motifs::count_motifs;
use tsg_graph::stats::GraphStatistics;
use tsg_serve::json::Json;
use tsg_ts::{generators, TimeSeries};

struct Args {
    length: usize,
    reps: usize,
    seed: u64,
    json_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        length: 256,
        reps: 200,
        seed: 3,
        json_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("flag `{}` needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--length" => {
                args.length = value(&mut i)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 3)
                    .ok_or_else(|| "--length expects a number >= 3".to_string())?
            }
            "--reps" => {
                args.reps = value(&mut i)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--reps expects a positive number".to_string())?
            }
            "--seed" => {
                args.seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "--seed expects a number".to_string())?
            }
            "--json-out" => args.json_out = Some(std::path::PathBuf::from(value(&mut i)?)),
            "--help" | "-h" => {
                println!(
                    "feature_timing: per-family cost table for the feature catalogue\n\n\
                     flags:\n  \
                     --length N     series length (default 256)\n  \
                     --reps N       timing repetitions per family (default 200)\n  \
                     --seed N       series generator seed (default 3)\n  \
                     --json-out P   write the machine-readable cost table to P"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let series = TimeSeries::with_label(
        generators::ecg_like(&mut rng, args.length, args.length / 8, 2.0, false, 0.05),
        0,
    );
    let values = series.values();

    // the graph families run over the full wide-config MVG representation
    // (every scale, both graph kinds) — the same graphs the extractor builds
    let config = FeatureConfig::wide();
    let stat = StatisticalConfig::standard();
    let graphs = SeriesGraphs::build(&series, &config.kinds, config.scale_mode, config.multiscale);
    let motif_len = motif_probability_distribution(&count_motifs(&graphs.graphs[0].graph)).len();
    let stats_len = GraphStatistics::compute(&graphs.graphs[0].graph)
        .to_features()
        .len();

    println!(
        "feature catalogue cost table: length {}, {} graphs in the MVG representation, {} reps\n",
        args.length,
        graphs.len(),
        args.reps
    );

    let mut sw = Stopwatch::new();
    let mut rows: Vec<(&'static str, usize)> = Vec::new();
    for spec in FAMILIES {
        let n_features = match spec.name {
            "motifs" => graphs.len() * motif_len,
            "graph-stats" => graphs.len() * stats_len,
            name => {
                let family = StatFamily::ALL
                    .iter()
                    .copied()
                    .find(|f| f.family_name() == name)
                    .expect("every catalogue family is timed");
                stat_family_len(family, &stat)
            }
        };
        sw.time(spec.name, || {
            for _ in 0..args.reps {
                match spec.name {
                    "motifs" => {
                        for g in &graphs.graphs {
                            black_box(motif_probability_distribution(&count_motifs(&g.graph)));
                        }
                    }
                    "graph-stats" => {
                        for g in &graphs.graphs {
                            black_box(GraphStatistics::compute(&g.graph).to_features());
                        }
                    }
                    "dist" => {
                        black_box(distribution_features(values));
                    }
                    "trend" => {
                        black_box(trend_features(values));
                    }
                    "peaks" => {
                        black_box(peak_features(values));
                    }
                    "acf" => {
                        black_box(autocorrelation_features(values, stat.acf_lags));
                    }
                    "fft" => {
                        black_box(fft_magnitude_features(values, stat.fft_coefficients));
                    }
                    other => unreachable!("unknown family `{other}`"),
                }
            }
        });
        rows.push((spec.name, n_features));
    }

    let mut table = Table::new(&[
        "family",
        "tier",
        "scope",
        "features",
        "us/series",
        "us/feature",
    ]);
    let mut families_json = Vec::new();
    for (name, n_features) in &rows {
        let spec = tsg_core::catalogue::family(name).expect("timed families are in the catalogue");
        let per_series_us = 1e6 * sw.seconds(name) / args.reps as f64;
        let per_feature_us = per_series_us / *n_features as f64;
        table.add_row(vec![
            name.to_string(),
            spec.tier.as_str().to_string(),
            spec.scope.as_str().to_string(),
            n_features.to_string(),
            format!("{per_series_us:.1}"),
            format!("{per_feature_us:.3}"),
        ]);
        families_json.push(Json::obj(vec![
            ("family", Json::Str(name.to_string())),
            ("tier", Json::Str(spec.tier.as_str().into())),
            ("scope", Json::Str(spec.scope.as_str().into())),
            ("n_features", Json::Num(*n_features as f64)),
            ("micros_per_series", Json::Num(per_series_us)),
            ("micros_per_feature", Json::Num(per_feature_us)),
        ]));
    }
    println!("{}", table.to_aligned());

    if let Some(path) = &args.json_out {
        let doc = Json::obj(vec![
            ("length", Json::Num(args.length as f64)),
            ("reps", Json::Num(args.reps as f64)),
            ("seed", Json::Num(args.seed as f64)),
            ("n_graphs", Json::Num(graphs.len() as f64)),
            ("families", Json::Arr(families_json)),
        ]);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, format!("{doc}\n")).expect("write --json-out artifact");
        println!("\nwrote {}", path.display());
    }
}
