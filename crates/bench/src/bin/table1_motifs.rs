//! Table 1: the motif taxonomy (all graph motifs up to size 4), illustrated
//! with exact counts on an example visibility graph.

use tsg_eval::Table;
use tsg_graph::motifs::{count_motifs, Motif};
use tsg_graph::visibility::{horizontal_visibility_graph, visibility_graph};

fn main() {
    // a short quasi-periodic example series, as in the paper's Figure 1
    let series: Vec<f64> = (0..64)
        .map(|i| ((i as f64) * 0.45).sin() + 0.3 * ((i as f64) * 0.11).cos())
        .collect();
    let vg = visibility_graph(&series);
    let hvg = horizontal_visibility_graph(&series);
    let vg_counts = count_motifs(&vg);
    let hvg_counts = count_motifs(&hvg);

    println!("Table 1: all graph motifs up to size 4");
    println!(
        "(counts on a 64-point example series; VG has {} edges, HVG has {})\n",
        vg.n_edges(),
        hvg.n_edges()
    );
    let mut table = Table::new(&[
        "id",
        "name",
        "size",
        "edges",
        "connected",
        "VG count",
        "HVG count",
    ]);
    for motif in Motif::ALL {
        table.add_row(vec![
            motif.paper_id().to_string(),
            motif.name().to_string(),
            motif.size().to_string(),
            motif.n_edges().to_string(),
            if motif.is_connected() { "yes" } else { "no" }.to_string(),
            vg_counts.get(motif).to_string(),
            hvg_counts.get(motif).to_string(),
        ]);
    }
    println!("{}", table.to_aligned());
    println!(
        "size-3 subsets covered: {} of {}",
        vg_counts.total_size3(),
        64u64 * 63 * 62 / 6
    );
    println!(
        "size-4 subsets covered: {} of {}",
        vg_counts.total_size4(),
        64u64 * 63 * 62 * 61 / 24
    );
}
