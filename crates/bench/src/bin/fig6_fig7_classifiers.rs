//! Figures 6 and 7: critical-difference comparisons of classifier families
//! on MVG features.
//!
//! Figure 6 compares single classifiers (XGBoost-style boosting, Random
//! Forest, SVM). Figure 7 compares stacked generalization restricted to one
//! family at a time against stacking across all three families.
//!
//! Datasets are consumed through the streaming `DatasetSource` pipeline:
//! each split is opened as an instance-at-a-time stream (real UCR files via
//! `--ucr-dir` / `TSG_UCR_DIR`, else the cached synthetic catalogue) and
//! features are extracted chunk-wise on the shared worker pool, so no full
//! `Vec<TimeSeries>` is ever resident. Per-split provenance (source kind,
//! backing file, content hash) is printed and embedded in the JSON artefact.

use tsg_bench::RunOptions;
use tsg_core::{extract_features_streaming, FeatureConfig, StreamedFeatures};
use tsg_datasets::{Split, SplitProvenance};
use tsg_eval::tables::{fmt3, fmt_hash, fmt_hash_opt};
use tsg_eval::{nemenyi_critical_difference, Table};
use tsg_ml::forest::{RandomForest, RandomForestParams};
use tsg_ml::gbt::{GradientBoosting, GradientBoostingParams};
use tsg_ml::metrics::error_rate;
use tsg_ml::scaling::MinMaxScaler;
use tsg_ml::stacking::{StackingEnsemble, StackingParams};
use tsg_ml::svm::{SvmClassifier, SvmKernel, SvmParams};
use tsg_ml::traits::Classifier;
use tsg_serve::json::Json;

fn boosting_candidates(seed: u64) -> Vec<(String, GradientBoostingParams)> {
    [(0.1, 30usize, 4usize), (0.2, 40, 4), (0.3, 60, 6)]
        .iter()
        .map(|&(lr, n, d)| {
            (
                format!("xgb(lr={lr},n={n},d={d})"),
                GradientBoostingParams {
                    n_estimators: n,
                    learning_rate: lr,
                    max_depth: d,
                    subsample: 0.5,
                    colsample_bytree: 0.5,
                    seed,
                    ..Default::default()
                },
            )
        })
        .collect()
}

fn forest_candidates(seed: u64, n_threads: usize) -> Vec<(String, RandomForestParams)> {
    [(40usize, 8usize), (80, 12), (120, 16)]
        .iter()
        .map(|&(n, d)| {
            (
                format!("rf(n={n},d={d})"),
                RandomForestParams {
                    n_estimators: n,
                    max_depth: d,
                    seed,
                    n_threads,
                    ..Default::default()
                },
            )
        })
        .collect()
}

fn svm_candidates(seed: u64) -> Vec<(String, SvmParams)> {
    [(1.0, 1.0), (10.0, 0.5), (5.0, 2.0)]
        .iter()
        .map(|&(c, gamma)| {
            (
                format!("svm(C={c},g={gamma})"),
                SvmParams {
                    c,
                    kernel: SvmKernel::Rbf { gamma },
                    seed,
                    ..Default::default()
                },
            )
        })
        .collect()
}

fn fit_and_score(
    model: &mut dyn Classifier,
    x_train: &tsg_ml::FeatureMatrix,
    y_train: &[usize],
    x_test: &tsg_ml::FeatureMatrix,
    y_test: &[usize],
) -> f64 {
    model.fit(x_train, y_train).expect("training failed");
    let pred = model.predict(x_test).expect("prediction failed");
    error_rate(y_test, &pred)
}

fn stacking_for_family(family: &str, seed: u64, n_threads: usize) -> StackingEnsemble {
    let mut ens = StackingEnsemble::new(StackingParams {
        top_k: 2,
        cv_folds: 3,
        seed,
        n_threads,
    });
    if family == "XGBoost" || family == "All" {
        for (name, params) in boosting_candidates(seed) {
            ens.add_candidate(
                name,
                Box::new(move || Box::new(GradientBoosting::new(params)) as Box<dyn Classifier>),
            );
        }
    }
    if family == "RF" || family == "All" {
        // candidate-level parallelism comes from the ensemble; serial trees
        // avoid oversubscribing the pool
        for (name, params) in forest_candidates(seed, 1) {
            ens.add_candidate(
                name,
                Box::new(move || Box::new(RandomForest::new(params)) as Box<dyn Classifier>),
            );
        }
    }
    if family == "SVM" || family == "All" {
        for (name, params) in svm_candidates(seed) {
            ens.add_candidate(
                name,
                Box::new(move || Box::new(SvmClassifier::new(params)) as Box<dyn Classifier>),
            );
        }
    }
    ens
}

fn main() {
    let mut options = RunOptions::from_args();
    // stacking multiplies training cost; default to a leaner selection unless
    // the user explicitly chose datasets
    if options.dataset_filter.is_empty() && options.max_datasets == 0 {
        options.max_datasets = 12;
    }
    let n_threads = tsg_parallel::resolve_threads(options.n_threads);
    let specs = options.selected_specs();
    let source = options.dataset_source();
    println!(
        "Figures 6 & 7: classifier families and stacked generalization on MVG features ({} datasets, {n_threads} worker threads)\n",
        specs.len()
    );
    let wall_clock = std::time::Instant::now();

    let single_methods = ["MVG (XGBoost)", "MVG (RF)", "MVG (SVM)"];
    let stacking_methods = ["XGBoost", "RF", "SVM", "All"];
    let mut single_errors: Vec<Vec<f64>> = Vec::new();
    let mut stack_errors: Vec<Vec<f64>> = Vec::new();
    let mut single_table = Table::new(&["Dataset", "XGBoost", "RF", "SVM"]);
    let mut stack_table = Table::new(&[
        "Dataset",
        "stack XGBoost",
        "stack RF",
        "stack SVM",
        "stack All",
    ]);

    let mut provenance: Vec<SplitProvenance> = Vec::new();
    for spec in &specs {
        // streaming ingestion: features are extracted chunk-wise while the
        // split is read / generated instance-at-a-time. Both splits share
        // one feature width, derived from the longer of the two maximum
        // series lengths — a real variable-length dataset can have its
        // longest series in either split, and per-split widths would make
        // the train-fitted scaler reject the test matrix
        let features = FeatureConfig::mvg();
        let mut open = |split: Split| {
            let stream = source
                .open_split(spec.name, split)
                .unwrap_or_else(|e| panic!("failed to open {} {:?}: {e}", spec.name, split));
            provenance.push(stream.provenance().clone());
            stream
        };
        let train_stream = open(Split::Train);
        let test_stream = open(Split::Test);
        let max_length = train_stream.max_length().max(test_stream.max_length());
        let extract = |stream: tsg_datasets::SplitStream| -> StreamedFeatures {
            let split = stream.split();
            extract_features_streaming(stream, max_length, &features, n_threads)
                .unwrap_or_else(|e| panic!("failed to stream {} {:?}: {e}", spec.name, split))
        };
        let streamed_train = extract(train_stream);
        let streamed_test = extract(test_stream);
        println!(
            "  {}: {}",
            spec.name,
            provenance[provenance.len() - 2].describe()
        );
        let y_train = streamed_train.labels_required().expect("labeled data");
        let y_test = streamed_test.labels_required().expect("labeled data");
        let (scaler, x_train) =
            MinMaxScaler::fit_transform(&streamed_train.features).expect("scaling");
        let x_test = scaler.transform(&streamed_test.features).expect("scaling");

        // --- Figure 6: single classifiers --------------------------------
        let mut xgb = GradientBoosting::new(boosting_candidates(options.seed)[1].1);
        let mut rf = RandomForest::new(forest_candidates(options.seed, n_threads)[1].1);
        let mut svm = SvmClassifier::new(svm_candidates(options.seed)[1].1);
        let row = vec![
            fit_and_score(&mut xgb, &x_train, &y_train, &x_test, &y_test),
            fit_and_score(&mut rf, &x_train, &y_train, &x_test, &y_test),
            fit_and_score(&mut svm, &x_train, &y_train, &x_test, &y_test),
        ];
        single_table.add_row({
            let mut cells = vec![spec.name.to_string()];
            cells.extend(row.iter().map(|e| fmt3(*e)));
            cells
        });
        single_errors.push(row);

        // --- Figure 7: stacking per family vs all families ----------------
        let mut row = Vec::new();
        for family in stacking_methods {
            let mut ens = stacking_for_family(family, options.seed, n_threads);
            row.push(fit_and_score(
                &mut ens, &x_train, &y_train, &x_test, &y_test,
            ));
        }
        stack_table.add_row({
            let mut cells = vec![spec.name.to_string()];
            cells.extend(row.iter().map(|e| fmt3(*e)));
            cells
        });
        stack_errors.push(row);
        println!("  finished {}", spec.name);
    }

    println!("\nPer-dataset error rates (single classifiers, Figure 6):");
    println!("{}", single_table.to_aligned());
    let cd6 = nemenyi_critical_difference(&single_errors, &single_methods);
    println!("{}", cd6.render());

    println!("Per-dataset error rates (stacked generalization, Figure 7):");
    println!("{}", stack_table.to_aligned());
    let stack_labels = ["stack XGBoost", "stack RF", "stack SVM", "stack All"];
    let cd7 = nemenyi_critical_difference(&stack_errors, &stack_labels);
    println!("{}", cd7.render());

    println!(
        "total wall time: {:.2} s with {n_threads} worker threads (rerun with `--threads 1` for the serial baseline)\n",
        wall_clock.elapsed().as_secs_f64()
    );

    let mut provenance_table = Table::new(&["Split", "Source", "Hash", "Detail"]);
    for p in &provenance {
        provenance_table.add_row(vec![
            format!("{}_{}", p.dataset, p.split.suffix()),
            p.kind.as_str().to_string(),
            fmt_hash_opt(p.content_hash),
            p.describe(),
        ]);
    }
    println!("Dataset provenance:");
    println!("{}", provenance_table.to_aligned());

    if options.figures {
        options.write_artefact("fig6_single_classifiers.csv", &single_table.to_csv());
        options.write_artefact("fig7_stacking.csv", &stack_table.to_csv());
        let document = Json::obj(vec![
            ("fig6", cd_json(&single_methods, &cd6.average_ranks, cd6.cd)),
            ("fig7", cd_json(&stack_labels, &cd7.average_ranks, cd7.cd)),
            (
                "datasets",
                Json::Arr(provenance.iter().map(provenance_json).collect()),
            ),
        ]);
        options.write_artefact(
            "fig6_fig7_critical_difference.json",
            &format!("{}\n", document.write()),
        );
    }
}

/// One critical-difference record, built with the shared JSON writer
/// (`tsg_serve::json`) instead of hand-formatted strings.
fn cd_json(methods: &[&str], ranks: &[f64], cd: f64) -> Json {
    Json::obj(vec![
        ("methods", Json::strs(methods.iter().copied())),
        ("ranks", Json::nums(ranks.iter().copied())),
        ("cd", Json::Num(cd)),
    ])
}

/// One split's provenance record for the JSON artefact: CI asserts that
/// fixture-backed runs report `"provenance": "real"` end-to-end.
fn provenance_json(p: &SplitProvenance) -> Json {
    let mut members = vec![
        ("dataset", Json::Str(p.dataset.clone())),
        ("split", Json::Str(p.split.suffix().to_string())),
        ("provenance", Json::Str(p.kind.as_str().to_string())),
    ];
    if let Some(seed) = p.seed {
        members.push(("seed", Json::Num(seed as f64)));
    }
    if let Some(v) = p.generator_version {
        members.push(("generator_version", Json::Num(v as f64)));
    }
    if let Some(path) = &p.path {
        members.push(("path", Json::Str(path.display().to_string())));
    }
    if let Some(hash) = p.content_hash {
        members.push(("content_hash", Json::Str(fmt_hash(hash))));
    }
    Json::obj(members)
}
