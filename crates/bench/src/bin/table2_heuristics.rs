//! Table 2 + Figures 3, 4, 5: heuristic validation.
//!
//! For every dataset the binary evaluates the 1NN-Euclidean and 1NN-DTW
//! baselines plus the seven feature configurations A–G of the paper
//! (HVG/VG × MPDs/All at a single scale, then UVG / AMVG / MVG with all
//! graph kinds and features), each classified with gradient boosting. It
//! reports the per-dataset error rates, win counts and Wilcoxon p-values of
//! the paper's comparison rows, and writes the scatter-plot series behind
//! Figures 3, 4 and 5.

use tsg_baselines::{NnClassifier, NnDistance};
use tsg_bench::experiments::{
    load_dataset, mvg_fixed_config, run_baseline, run_mvg, table2_configurations,
};
use tsg_bench::RunOptions;
use tsg_eval::tables::fmt3;
use tsg_eval::{wilcoxon_signed_rank, ScatterComparison, Table};

fn main() {
    let options = RunOptions::from_args();
    let specs = options.selected_specs();
    let configs = table2_configurations();
    println!(
        "Table 2: heuristic validation over {} datasets (budget: ≤{} train, ≤{} test, length ≤{})\n",
        specs.len(),
        options.archive.max_train.min(99999),
        options.archive.max_test.min(99999),
        options.archive.max_length.min(99999),
    );

    let mut header: Vec<&str> = vec![
        "Dataset", "#Cls", "#Train", "#Test", "Dim", "1NN-ED", "1NN-DTW",
    ];
    let config_labels: Vec<String> = configs.iter().map(|(c, _)| c.to_string()).collect();
    for label in &config_labels {
        header.push(Box::leak(label.clone().into_boxed_str()));
    }
    let mut table = Table::new(&header);

    // per-method error vectors across datasets (columns: ED, DTW, A..G)
    let n_methods = 2 + configs.len();
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); n_methods];
    let mut dataset_names: Vec<String> = Vec::new();

    for spec in &specs {
        let loaded = load_dataset(spec, &options);
        println!("  {}: {}", spec.name, loaded.train_provenance.describe());
        let (train, test) = (loaded.train, loaded.test);
        let mut row = vec![
            spec.name.to_string(),
            spec.n_classes.to_string(),
            train.len().to_string(),
            test.len().to_string(),
            train.max_length().to_string(),
        ];
        // 1NN baselines
        let mut ed = NnClassifier::new(NnDistance::Euclidean);
        let ed_result = run_baseline(&mut ed, &train, &test);
        let mut dtw = NnClassifier::new(NnDistance::Dtw {
            window_fraction: Some(0.1),
        });
        let dtw_result = run_baseline(&mut dtw, &train, &test);
        errors[0].push(ed_result.error_rate);
        errors[1].push(dtw_result.error_rate);
        row.push(fmt3(ed_result.error_rate));
        row.push(fmt3(dtw_result.error_rate));
        // configurations A..G
        for (i, (letter, features)) in configs.iter().enumerate() {
            let config = mvg_fixed_config(features.clone(), options.seed, options.n_threads);
            let result = run_mvg(&letter.to_string(), config, &train, &test);
            errors[2 + i].push(result.error_rate);
            row.push(fmt3(result.error_rate));
        }
        dataset_names.push(spec.name.to_string());
        table.add_row(row);
        println!("  finished {}", spec.name);
    }

    println!("\n{}", table.to_aligned());

    // ---- the paper's comparison rows ------------------------------------
    // (comparison column, baseline column) pairs as in the bottom of Table 2
    let method_names: Vec<String> = {
        let mut v = vec!["1NN-ED".to_string(), "1NN-DTW".to_string()];
        v.extend(configs.iter().map(|(c, f)| format!("{c} ({})", f.label())));
        v
    };
    let comparisons: Vec<(usize, usize)> = vec![
        (0, 8), // 1NN-ED vs G
        (1, 8), // 1NN-DTW vs G
        (2, 3), // A vs B
        (3, 5), // B vs D
        (4, 5), // C vs D
        (5, 6), // D vs E
        (6, 7), // E vs F
        (6, 8), // E vs G
        (7, 8), // F vs G
    ];
    let mut cmp_table = Table::new(&["comparison", "wins (right)", "ties", "losses", "Wilcoxon p"]);
    for (left, right) in &comparisons {
        let comparison = ScatterComparison::new(
            method_names[*left].clone(),
            method_names[*right].clone(),
            dataset_names.clone(),
            errors[*left].clone(),
            errors[*right].clone(),
        );
        let wl = comparison.win_loss();
        let p = wilcoxon_signed_rank(&errors[*left], &errors[*right])
            .map(|r| format!("{:.4}", r.p_value))
            .unwrap_or_else(|| "n/a".to_string());
        cmp_table.add_row(vec![
            format!("{} vs {}", method_names[*left], method_names[*right]),
            wl.wins.to_string(),
            wl.ties.to_string(),
            wl.losses.to_string(),
            p,
        ]);
    }
    println!("{}", cmp_table.to_aligned());

    // ---- figure artefacts -------------------------------------------------
    if options.figures {
        let figure_pairs: Vec<(&str, usize, usize)> = vec![
            ("fig3_hvg_mpds_vs_all.csv", 2, 3),
            ("fig3_vg_mpds_vs_all.csv", 4, 5),
            ("fig4_hvg_vs_vg.csv", 3, 5),
            ("fig4_hvg_vs_uvg.csv", 3, 6),
            ("fig4_vg_vs_uvg.csv", 5, 6),
            ("fig5_uvg_vs_amvg.csv", 6, 7),
            ("fig5_amvg_vs_mvg.csv", 7, 8),
            ("fig5_uvg_vs_mvg.csv", 6, 8),
        ];
        for (file, left, right) in figure_pairs {
            let comparison = ScatterComparison::new(
                method_names[left].clone(),
                method_names[right].clone(),
                dataset_names.clone(),
                errors[left].clone(),
                errors[right].clone(),
            );
            options.write_artefact(file, &comparison.to_csv());
            println!("{}", comparison.render_ascii(24));
        }
        // full table as CSV
        options.write_artefact("table2_error_rates.csv", &table.to_csv());
    }
}
