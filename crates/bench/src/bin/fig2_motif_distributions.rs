//! Figure 2: box plots of the size-4 motif probability distributions per
//! class on the ArrowHead training set.

use tsg_bench::RunOptions;
use tsg_core::motif_groups::motif_probability_distribution;
use tsg_datasets::archive::generate_scaled;
use tsg_eval::{BoxplotSummary, Table};
use tsg_graph::motifs::{count_motifs, Motif};
use tsg_graph::visibility::visibility_graph;

fn main() {
    let options = RunOptions::from_args();
    let spec = tsg_datasets::archive::spec_by_name("ArrowHead").expect("ArrowHead in catalogue");
    let (train, _) = generate_scaled(spec, options.archive);
    println!(
        "Figure 2: motif probability distributions per class, ArrowHead training set ({} instances)\n",
        train.len()
    );

    // per-class, per-motif probability samples (size-4 motifs only, as in the figure)
    let motifs_connected = [
        Motif::Clique4,
        Motif::ChordalCycle4,
        Motif::TailedTriangle4,
        Motif::Cycle4,
        Motif::Star4,
        Motif::Path4,
    ];
    let motifs_disconnected = [
        Motif::NodeTriangle4,
        Motif::NodeStar4,
        Motif::TwoEdges4,
        Motif::OneEdge4,
        Motif::Independent4,
    ];
    let n_classes = train.n_classes();
    // probabilities indexed [class][motif_position] -> Vec of samples
    let mut samples: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 17]; n_classes];
    for series in train.series() {
        let label = series.label().expect("labeled training data");
        let graph = visibility_graph(series.values());
        let counts = count_motifs(&graph);
        let mpd = motif_probability_distribution(&counts);
        for (j, p) in mpd.iter().enumerate() {
            samples[label][j].push(*p);
        }
    }
    // the MPD layout: indices 6..12 are the connected 4-motifs, 12..17 the disconnected ones
    let mut csv = String::from("class,motif,min,q1,median,q3,max,mean\n");
    for (title, motifs, offset) in [
        ("Connected Motifs", &motifs_connected[..], 6usize),
        ("Disconnected Motifs", &motifs_disconnected[..], 12usize),
    ] {
        println!("{title}");
        let mut table = Table::new(&["class", "motif", "min", "q1", "median", "q3", "max"]);
        for (class, class_samples) in samples.iter().enumerate().take(n_classes) {
            for (k, motif) in motifs.iter().enumerate() {
                let values = &class_samples[offset + k];
                let summary = BoxplotSummary::compute(
                    format!("class {} {}", class + 1, motif.paper_id()),
                    values,
                );
                table.add_row(vec![
                    format!("{}", class + 1),
                    motif.paper_id().to_string(),
                    format!("{:.4}", summary.min),
                    format!("{:.4}", summary.q1),
                    format!("{:.4}", summary.median),
                    format!("{:.4}", summary.q3),
                    format!("{:.4}", summary.max),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{},{}\n",
                    class + 1,
                    motif.paper_id(),
                    summary.min,
                    summary.q1,
                    summary.median,
                    summary.q3,
                    summary.max,
                    summary.mean
                ));
            }
        }
        println!("{}", table.to_aligned());
    }
    if options.figures {
        options.write_artefact("fig2_motif_distributions.csv", &csv);
    }
    println!(
        "\nAs in the paper, the per-class distributions overlap substantially —\n\
         motif probabilities alone are not enough, motivating the extra graph\n\
         statistics and the multiscale representation (heuristics 1 and 3)."
    );
}
