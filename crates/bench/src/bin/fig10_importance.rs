//! Figure 10: the ten most important MVG features on FordA, plus the data
//! behind the scatter-matrix plot (feature values and class labels for every
//! test instance).

use tsg_bench::experiments::{load_dataset, mvg_fixed_config, run_mvg};
use tsg_bench::RunOptions;
use tsg_core::importance::top_k;
use tsg_core::{FeatureConfig, MvgClassifier};
use tsg_eval::Table;

fn main() {
    let options = RunOptions::from_args();
    let spec = tsg_datasets::archive::spec_by_name("FordA").expect("FordA in catalogue");
    let loaded = load_dataset(spec, &options);
    let (train, test) = (loaded.train, loaded.test);
    println!(
        "Figure 10: feature importances on FordA ({} train / {} test instances, {})\n",
        train.len(),
        test.len(),
        loaded.train_provenance.describe()
    );

    let config = mvg_fixed_config(FeatureConfig::mvg(), options.seed, options.n_threads);
    // train once to get the error rate (sanity) ...
    let result = run_mvg("MVG", config.clone(), &train, &test);
    println!("MVG error rate on FordA: {:.3}\n", result.error_rate);
    // ... and once more keeping the classifier to read its importances
    let mut clf = MvgClassifier::new(config);
    clf.fit(&train).expect("training failed");
    let ranked = clf.feature_importances();
    let top = top_k(&ranked, 10);

    let mut table = Table::new(&["rank", "feature", "importance"]);
    for (i, f) in top.iter().enumerate() {
        table.add_row(vec![
            (i + 1).to_string(),
            f.name.clone(),
            format!("{:.4}", f.importance),
        ]);
    }
    println!("{}", table.to_aligned());
    let n_hvg = top.iter().filter(|f| f.name.contains("HVG")).count();
    let n_scaled = top.iter().filter(|f| !f.name.starts_with("T0 ")).count();
    println!(
        "{n_hvg} of the top-10 features come from HVGs and {n_scaled} from downscaled approximations,\n\
         mirroring the paper's observation that both graph kinds and multiple scales contribute.\n"
    );

    if options.figures {
        // scatter-matrix data: values of the top-10 features for every test
        // instance plus the class label
        let (x_test, names) = clf.extract_features(&test);
        let labels = test.labels_required().expect("labeled data");
        let top_indices: Vec<usize> = top
            .iter()
            .filter_map(|f| names.iter().position(|n| n == &f.name))
            .collect();
        let mut csv = String::from("class");
        for &j in &top_indices {
            csv.push(',');
            csv.push_str(&names[j].replace(',', ";"));
        }
        csv.push('\n');
        for (i, &label) in labels.iter().enumerate() {
            csv.push_str(&label.to_string());
            for &j in &top_indices {
                csv.push_str(&format!(",{}", x_test.get(i, j)));
            }
            csv.push('\n');
        }
        options.write_artefact("fig10_forda_top_features.csv", &csv);
        let mut importance_csv = String::from("rank,feature,importance\n");
        for (i, f) in ranked.iter().enumerate() {
            importance_csv.push_str(&format!(
                "{},{},{}\n",
                i + 1,
                f.name.replace(',', ";"),
                f.importance
            ));
        }
        options.write_artefact("fig10_forda_importances.csv", &importance_csv);
    }
}
