//! Table 3 + Figures 8, 9: accuracy and runtime versus the five
//! state-of-the-art baselines (1NN-ED, 1NN-DTW, Learning Shapelets, Fast
//! Shapelets, SAX-VSM).

use tsg_bench::experiments::{
    load_dataset, mvg_fixed_config, run_baseline, run_mvg, table3_baselines,
};
use tsg_bench::RunOptions;
use tsg_core::FeatureConfig;
use tsg_eval::tables::fmt3;
use tsg_eval::{wilcoxon_signed_rank, ScatterComparison, Table};

fn main() {
    let options = RunOptions::from_args();
    let specs = options.selected_specs();
    println!(
        "Table 3: error rates and runtimes vs five baselines over {} datasets\n",
        specs.len()
    );

    let baseline_names: Vec<String> = table3_baselines(options.seed)
        .iter()
        .map(|b| b.name())
        .collect();
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(baseline_names.iter().cloned());
    header.push("MVG".into());
    header.push("MVG FE (s)".into());
    header.push("MVG Clf (s)".into());
    header.push("MVG total (s)".into());
    header.push("FS (s)".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let n_methods = baseline_names.len() + 1; // + MVG
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); n_methods];
    let mut mvg_runtime: Vec<f64> = Vec::new();
    let mut fs_runtime: Vec<f64> = Vec::new();
    let mut dataset_names: Vec<String> = Vec::new();

    for spec in &specs {
        let loaded = load_dataset(spec, &options);
        println!("  {}: {}", spec.name, loaded.train_provenance.describe());
        let (train, test) = (loaded.train, loaded.test);
        let mut row = vec![spec.name.to_string()];
        let mut fs_seconds = 0.0;
        for (b, mut baseline) in table3_baselines(options.seed).into_iter().enumerate() {
            let result = run_baseline(baseline.as_mut(), &train, &test);
            if result.method.contains("FastShapelets") {
                fs_seconds = result.total_seconds();
            }
            errors[b].push(result.error_rate);
            row.push(fmt3(result.error_rate));
        }
        let mvg = run_mvg(
            "MVG",
            mvg_fixed_config(FeatureConfig::mvg(), options.seed, options.n_threads),
            &train,
            &test,
        );
        errors[n_methods - 1].push(mvg.error_rate);
        row.push(fmt3(mvg.error_rate));
        row.push(format!("{:.2}", mvg.feature_seconds));
        row.push(format!("{:.2}", mvg.classify_seconds));
        row.push(format!("{:.2}", mvg.total_seconds()));
        row.push(format!("{:.2}", fs_seconds));
        mvg_runtime.push(mvg.total_seconds());
        fs_runtime.push(fs_seconds);
        dataset_names.push(spec.name.to_string());
        table.add_row(row);
        println!("  finished {}", spec.name);
    }
    println!("\n{}", table.to_aligned());

    // ---- win counts and Wilcoxon tests against MVG -----------------------
    let mvg_errors = errors[n_methods - 1].clone();
    let mut summary = Table::new(&["method", "MVG wins", "ties", "MVG losses", "Wilcoxon p"]);
    for (b, name) in baseline_names.iter().enumerate() {
        let comparison = ScatterComparison::new(
            name.clone(),
            "MVG",
            dataset_names.clone(),
            errors[b].clone(),
            mvg_errors.clone(),
        );
        let wl = comparison.win_loss();
        let p = wilcoxon_signed_rank(&errors[b], &mvg_errors)
            .map(|r| format!("{:.4}", r.p_value))
            .unwrap_or_else(|| "n/a".to_string());
        summary.add_row(vec![
            name.clone(),
            wl.wins.to_string(),
            wl.ties.to_string(),
            wl.losses.to_string(),
            p,
        ]);
        if options.figures {
            let file = format!(
                "fig8_{}_vs_mvg.csv",
                name.to_lowercase()
                    .replace(['-', ' ', '('], "_")
                    .replace(')', "")
            );
            options.write_artefact(&file, &comparison.to_csv());
        }
    }
    println!("{}", summary.to_aligned());
    println!(
        "total MVG runtime: {:.1}s, total FastShapelets runtime: {:.1}s ({}x)",
        mvg_runtime.iter().sum::<f64>(),
        fs_runtime.iter().sum::<f64>(),
        (fs_runtime.iter().sum::<f64>() / mvg_runtime.iter().sum::<f64>().max(1e-9)).round()
    );

    // ---- Figure 9: runtime scatter (log10 seconds) ------------------------
    if options.figures {
        let runtime_scatter = ScatterComparison::new(
            "FS log10(s)",
            "MVG log10(s)",
            dataset_names.clone(),
            fs_runtime.iter().map(|s| s.max(1e-3).log10()).collect(),
            mvg_runtime.iter().map(|s| s.max(1e-3).log10()).collect(),
        );
        options.write_artefact("fig9_runtime_fs_vs_mvg.csv", &runtime_scatter.to_csv());
        println!("{}", runtime_scatter.render_ascii(24));
        options.write_artefact("table3_results.csv", &table.to_csv());
    }
}
