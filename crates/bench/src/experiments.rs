//! Shared experiment runners used by the per-table binaries.

use crate::RunOptions;
use tsg_baselines::{
    FastShapelets, FastShapeletsParams, LearningShapelets, LearningShapeletsParams, NnClassifier,
    NnDistance, SaxVsm, SaxVsmParams, TscClassifier,
};
use tsg_core::{ClassifierChoice, FeatureConfig, MvgClassifier, MvgConfig};
use tsg_datasets::{DatasetSpec, ResolvedPair};
use tsg_eval::Stopwatch;
use tsg_ml::gbt::GradientBoostingParams;
use tsg_ts::Dataset;

/// Result of running one method on one dataset.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label (table column).
    pub method: String,
    /// Test error rate.
    pub error_rate: f64,
    /// Feature-extraction seconds (MVG only; 0 otherwise).
    pub feature_seconds: f64,
    /// Training + prediction seconds.
    pub classify_seconds: f64,
}

impl MethodResult {
    /// Total runtime in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.feature_seconds + self.classify_seconds
    }
}

/// Resolves the `(train, test)` splits for a spec through the run's
/// [`tsg_datasets::DatasetSource`]: a real UCR directory (`--ucr-dir` /
/// `TSG_UCR_DIR`) when it holds the pair, otherwise the on-disk dataset
/// cache (`target/tsg-dataset-cache/`) in front of synthesis — so repeated
/// experiment runs, in particular `--full` ones, stop regenerating identical
/// series. The returned [`ResolvedPair`] carries per-split provenance, which
/// the binaries print and embed in their artefacts.
///
/// A present-but-malformed real pair aborts the run (loading different data
/// than the user pointed at would silently change every reported number).
pub fn load_dataset(spec: &DatasetSpec, options: &RunOptions) -> ResolvedPair {
    options
        .dataset_source()
        .resolve(spec.name)
        .unwrap_or_else(|e| panic!("failed to load dataset `{}`: {e}", spec.name))
}

/// The default boosting parameters used across experiment binaries (a fixed,
/// modest configuration so runs finish in reasonable time; `--full` runs can
/// switch to the grid with [`mvg_grid_config`]).
pub fn default_boosting() -> GradientBoostingParams {
    GradientBoostingParams {
        n_estimators: 40,
        learning_rate: 0.2,
        max_depth: 4,
        subsample: 0.5,
        colsample_bytree: 0.5,
        ..Default::default()
    }
}

/// MVG configuration with a fixed booster and the given feature config.
/// `n_threads = 0` uses the process-wide default pool.
pub fn mvg_fixed_config(features: FeatureConfig, seed: u64, n_threads: usize) -> MvgConfig {
    MvgConfig {
        features,
        classifier: ClassifierChoice::GradientBoosting(default_boosting()),
        oversample: true,
        n_threads: tsg_parallel::resolve_threads(n_threads),
        seed,
    }
}

/// MVG configuration with the paper's cross-validated grid search.
/// `n_threads = 0` uses the process-wide default pool.
pub fn mvg_grid_config(features: FeatureConfig, seed: u64, n_threads: usize) -> MvgConfig {
    MvgConfig {
        features,
        classifier: ClassifierChoice::GradientBoostingGrid,
        oversample: true,
        n_threads: tsg_parallel::resolve_threads(n_threads),
        seed,
    }
}

/// Runs one MVG configuration on one dataset and reports error rate plus the
/// feature-extraction / classification runtime split of Table 3.
pub fn run_mvg(label: &str, config: MvgConfig, train: &Dataset, test: &Dataset) -> MethodResult {
    let mut stopwatch = Stopwatch::new();
    let mut clf = MvgClassifier::new(config);
    // time extraction separately by extracting once up front (the classifier
    // re-extracts internally; the second extraction is what we time as FE)
    stopwatch.time("feature_extraction", || {
        let _ = clf.extract_features(train);
        let _ = clf.extract_features(test);
    });
    let error_rate = stopwatch.time("classification", || {
        clf.fit(train).expect("MVG training failed");
        clf.error_rate(test).expect("MVG prediction failed")
    });
    MethodResult {
        method: label.to_string(),
        error_rate,
        feature_seconds: stopwatch.seconds("feature_extraction"),
        classify_seconds: stopwatch.seconds("classification")
            - stopwatch
                .seconds("feature_extraction")
                .min(stopwatch.seconds("classification")),
    }
}

/// Runs a baseline classifier on one dataset.
pub fn run_baseline(
    classifier: &mut dyn TscClassifier,
    train: &Dataset,
    test: &Dataset,
) -> MethodResult {
    let mut stopwatch = Stopwatch::new();
    let error_rate = stopwatch.time("classification", || {
        classifier.fit(train).expect("baseline training failed");
        classifier
            .error_rate(test)
            .expect("baseline prediction failed")
    });
    MethodResult {
        method: classifier.name(),
        error_rate,
        feature_seconds: 0.0,
        classify_seconds: stopwatch.seconds("classification"),
    }
}

/// Builds the five baseline classifiers of Table 3.
pub fn table3_baselines(seed: u64) -> Vec<Box<dyn TscClassifier>> {
    vec![
        Box::new(NnClassifier::new(NnDistance::Euclidean)),
        Box::new(NnClassifier::new(NnDistance::Dtw {
            window_fraction: Some(0.1),
        })),
        Box::new(LearningShapelets::new(LearningShapeletsParams {
            n_iterations: 60,
            ..Default::default()
        })),
        Box::new(FastShapelets::new(FastShapeletsParams {
            seed,
            ..Default::default()
        })),
        Box::new(SaxVsm::new(SaxVsmParams::default())),
    ]
}

/// The seven heuristic configurations (columns A–G) of Table 2.
pub fn table2_configurations() -> Vec<(char, FeatureConfig)> {
    use tsg_graph::visibility::VisibilityKind;
    vec![
        (
            'A',
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false),
        ),
        (
            'B',
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, true),
        ),
        (
            'C',
            FeatureConfig::uniscale_single(VisibilityKind::Natural, false),
        ),
        (
            'D',
            FeatureConfig::uniscale_single(VisibilityKind::Natural, true),
        ),
        ('E', FeatureConfig::uvg()),
        ('F', FeatureConfig::amvg()),
        ('G', FeatureConfig::mvg()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_datasets::archive::{spec_by_name, ArchiveOptions};

    fn tiny_options() -> RunOptions {
        RunOptions {
            archive: ArchiveOptions::bounded(12, 96, 3),
            ..Default::default()
        }
    }

    #[test]
    fn mvg_runner_produces_sane_result() {
        let spec = spec_by_name("BeetleFly").unwrap();
        let loaded = load_dataset(spec, &tiny_options());
        let result = run_mvg(
            "MVG",
            mvg_fixed_config(FeatureConfig::uvg(), 1, 2),
            &loaded.train,
            &loaded.test,
        );
        assert!((0.0..=1.0).contains(&result.error_rate));
        assert!(result.feature_seconds >= 0.0);
        assert!(result.total_seconds() > 0.0);
    }

    #[test]
    fn baseline_runner_produces_sane_result() {
        let spec = spec_by_name("BeetleFly").unwrap();
        let loaded = load_dataset(spec, &tiny_options());
        assert_eq!(
            loaded.train_provenance.kind, loaded.test_provenance.kind,
            "splits of one dataset resolve from the same place"
        );
        let mut nn = NnClassifier::new(NnDistance::Euclidean);
        let result = run_baseline(&mut nn, &loaded.train, &loaded.test);
        assert_eq!(result.method, "1NN-ED");
        assert!((0.0..=1.0).contains(&result.error_rate));
    }

    #[test]
    fn table2_has_seven_configurations() {
        let configs = table2_configurations();
        assert_eq!(configs.len(), 7);
        let labels: Vec<char> = configs.iter().map(|(c, _)| *c).collect();
        assert_eq!(labels, vec!['A', 'B', 'C', 'D', 'E', 'F', 'G']);
        assert_eq!(configs[6].1.label(), "MVG VG+HVG All");
    }

    #[test]
    fn table3_has_five_baselines() {
        let baselines = table3_baselines(0);
        assert_eq!(baselines.len(), 5);
        let names: Vec<String> = baselines.iter().map(|b| b.name()).collect();
        assert!(names.iter().any(|n| n.contains("1NN-ED")));
        assert!(names.iter().any(|n| n.contains("DTW")));
        assert!(names.iter().any(|n| n.contains("Shapelets")));
        assert!(names.iter().any(|n| n.contains("SAX")));
    }
}
