//! # tsg-bench — experiment harness
//!
//! Shared plumbing for the per-table / per-figure experiment binaries under
//! `src/bin/` and the criterion micro-benchmarks under `benches/`.
//!
//! Each binary regenerates one artefact of the paper's evaluation section:
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `table1_motifs` | Table 1 (motif taxonomy) |
//! | `fig2_motif_distributions` | Figure 2 (per-class motif box plots, ArrowHead) |
//! | `table2_heuristics` | Table 2 + Figures 3, 4, 5 (heuristic ablations) |
//! | `fig6_fig7_classifiers` | Figures 6, 7 (critical-difference diagrams) |
//! | `table3_benchmark` | Table 3 + Figures 8, 9 (accuracy and runtime vs baselines) |
//! | `fig10_importance` | Figure 10 (top feature importances, FordA) |
//!
//! All binaries accept `--quick` (tiny budget, minutes), default to a
//! *reduced* budget (bounded instance counts and lengths) and accept
//! `--full` for paper-scale dataset sizes. Results are printed as aligned
//! text tables and written as CSV/JSON artefacts under `target/experiments/`.

use std::path::PathBuf;
use tsg_datasets::archive::ArchiveOptions;
use tsg_datasets::DatasetSource;

pub mod experiments;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Dataset size budget.
    pub archive: ArchiveOptions,
    /// Restrict the run to datasets whose name contains one of these
    /// substrings (empty = all datasets).
    pub dataset_filter: Vec<String>,
    /// How many datasets to include at most (0 = all).
    pub max_datasets: usize,
    /// Emit per-figure CSV artefacts as well as the tables.
    pub figures: bool,
    /// Output directory for artefacts.
    pub output_dir: PathBuf,
    /// Random seed.
    pub seed: u64,
    /// Worker threads for extraction, grid search, forest fitting and
    /// stacking (`0` = process default, i.e. `TSC_MVG_THREADS` or available
    /// parallelism capped at 8).
    pub n_threads: usize,
    /// Real UCR archive directory (`--ucr-dir`; overrides the `TSG_UCR_DIR`
    /// environment variable). Datasets found there are loaded from disk;
    /// the rest fall back to the cached synthetic catalogue.
    pub ucr_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            archive: ArchiveOptions::bounded(60, 512, 7),
            dataset_filter: Vec::new(),
            max_datasets: 0,
            figures: true,
            output_dir: PathBuf::from("target/experiments"),
            seed: 7,
            n_threads: 0,
            ucr_dir: None,
        }
    }
}

impl RunOptions {
    /// Parses the common flags from `std::env::args`.
    ///
    /// Supported flags: `--quick`, `--full`, `--datasets a,b,c`,
    /// `--max-datasets N`, `--seed N`, `--threads N`, `--no-figures`,
    /// `--out DIR`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_arg_slice(&args)
    }

    /// Parses flags from an explicit slice (testable).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut options = RunOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    options.archive = ArchiveOptions::bounded(24, 192, options.seed);
                    if options.max_datasets == 0 {
                        options.max_datasets = 8;
                    }
                }
                "--full" => {
                    options.archive = ArchiveOptions::full(options.seed);
                }
                "--no-figures" => options.figures = false,
                "--datasets" => {
                    if let Some(v) = args.get(i + 1) {
                        options.dataset_filter =
                            v.split(',').map(|s| s.trim().to_string()).collect();
                        i += 1;
                    }
                }
                "--max-datasets" => {
                    if let Some(v) = args.get(i + 1) {
                        options.max_datasets = v.parse().unwrap_or(0);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1) {
                        options.seed = v.parse().unwrap_or(7);
                        options.archive.seed = options.seed;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1) {
                        options.n_threads = v.parse().unwrap_or(0);
                        i += 1;
                    }
                }
                "--out" => {
                    if let Some(v) = args.get(i + 1) {
                        options.output_dir = PathBuf::from(v);
                        i += 1;
                    }
                }
                "--ucr-dir" => {
                    if let Some(v) = args.get(i + 1) {
                        options.ucr_dir = Some(PathBuf::from(v));
                        i += 1;
                    }
                }
                other => {
                    eprintln!("ignoring unknown flag `{other}`");
                }
            }
            i += 1;
        }
        options
    }

    /// The unified dataset resolver for this run: the `--ucr-dir` flag (or
    /// the `TSG_UCR_DIR` environment variable) in front, the on-disk cache
    /// behind it, in-memory synthesis last. All experiment binaries load
    /// their splits through this, so provenance is uniform across artefacts.
    pub fn dataset_source(&self) -> DatasetSource {
        let source = DatasetSource::from_env(self.archive);
        match &self.ucr_dir {
            Some(dir) => source.with_ucr_dir(dir.clone()),
            None => source,
        }
    }

    /// The dataset specs selected by the filter / cap.
    pub fn selected_specs(&self) -> Vec<&'static tsg_datasets::DatasetSpec> {
        let mut specs: Vec<&'static tsg_datasets::DatasetSpec> = tsg_datasets::ALL_DATASETS
            .iter()
            .filter(|spec| {
                self.dataset_filter.is_empty()
                    || self
                        .dataset_filter
                        .iter()
                        .any(|f| spec.name.to_lowercase().contains(&f.to_lowercase()))
            })
            .collect();
        if self.max_datasets > 0 && specs.len() > self.max_datasets {
            specs.truncate(self.max_datasets);
        }
        specs
    }

    /// Ensures the output directory exists and returns the path of an
    /// artefact file inside it.
    pub fn artefact_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.output_dir).ok();
        self.output_dir.join(name)
    }

    /// Writes an artefact file and logs its location.
    pub fn write_artefact(&self, name: &str, content: &str) {
        let path = self.artefact_path(name);
        match std::fs::write(&path, content) {
            Ok(()) => println!("  wrote {}", path.display()),
            Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn default_options_select_all_datasets() {
        let options = RunOptions::default();
        assert_eq!(options.selected_specs().len(), 39);
    }

    #[test]
    fn flags_are_parsed() {
        let args: Vec<String> = [
            "--quick",
            "--datasets",
            "beetle,wine",
            "--seed",
            "13",
            "--threads",
            "3",
            "--no-figures",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = RunOptions::from_arg_slice(&args);
        assert!(!options.figures);
        assert_eq!(options.seed, 13);
        assert_eq!(options.n_threads, 3);
        let specs = options.selected_specs();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().any(|s| s.name == "BeetleFly"));
        assert!(specs.iter().any(|s| s.name == "Wine"));
    }

    #[test]
    fn max_datasets_caps_selection() {
        let args: Vec<String> = ["--max-datasets", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = RunOptions::from_arg_slice(&args);
        assert_eq!(options.selected_specs().len(), 5);
    }

    #[test]
    fn ucr_dir_flag_feeds_the_dataset_source() {
        let args: Vec<String> = ["--ucr-dir", "/tmp/ucr-tree"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = RunOptions::from_arg_slice(&args);
        assert_eq!(options.ucr_dir.as_deref(), Some(Path::new("/tmp/ucr-tree")));
        let source = options.dataset_source();
        assert_eq!(source.ucr_dir(), Some(Path::new("/tmp/ucr-tree")));
        assert_eq!(source.options(), options.archive);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let args: Vec<String> = ["--bogus", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = RunOptions::from_arg_slice(&args);
        assert_eq!(options.archive.max_train, usize::MAX);
    }
}
