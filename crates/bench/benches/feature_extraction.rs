//! Criterion micro-benchmarks for the MVG feature extraction pipeline
//! (Algorithm 1): per-series extraction under the UVG and MVG
//! configurations, and whole-dataset extraction with the parallel map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsg_core::{
    extract_dataset_features, extract_series_features, FeatureConfig, FeatureSelection,
};
use tsg_ts::{generators, Dataset, TimeSeries};

fn make_series(n: usize) -> TimeSeries {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    TimeSeries::with_label(
        generators::ecg_like(&mut rng, n, n / 8, 2.0, false, 0.05),
        0,
    )
}

fn make_dataset(n_instances: usize, length: usize) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut d = Dataset::new("bench");
    for i in 0..n_instances {
        d.push(TimeSeries::with_label(
            generators::harmonic_mixture(&mut rng, length, &[(24.0, 1.0)], 0.4),
            i % 2,
        ));
    }
    d
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("series_feature_extraction");
    group.sample_size(15);
    for &n in &[128usize, 512] {
        let series = make_series(n);
        group.bench_with_input(BenchmarkId::new("uvg", n), &series, |b, s| {
            b.iter(|| extract_series_features(std::hint::black_box(s), &FeatureConfig::uvg()))
        });
        group.bench_with_input(BenchmarkId::new("mvg", n), &series, |b, s| {
            b.iter(|| extract_series_features(std::hint::black_box(s), &FeatureConfig::mvg()))
        });
        // the tiered catalogue: full graph features + the statistical layer
        group.bench_with_input(BenchmarkId::new("wide", n), &series, |b, s| {
            b.iter(|| extract_series_features(std::hint::black_box(s), &FeatureConfig::wide()))
        });
        // a pruned serving config — a concentrated selection (T0 HVG block
        // plus the statistical layer) that lets the extractor skip the VG
        // builds and all downscaled graphs entirely: the latency win
        // importance-driven pruning buys on the extraction hot path
        let wide = FeatureConfig::wide();
        let names: Vec<String> = wide
            .feature_names_for_length(n)
            .into_iter()
            .filter(|name| name.starts_with("T0 HVG") || name.starts_with("stat "))
            .collect();
        let mut pruned = wide;
        pruned.selection = Some(FeatureSelection::new(names));
        group.bench_with_input(BenchmarkId::new("pruned", n), &series, |b, s| {
            b.iter(|| extract_series_features(std::hint::black_box(s), &pruned))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dataset_feature_extraction");
    group.sample_size(10);
    let dataset = make_dataset(32, 256);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mvg_32x256", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    extract_dataset_features(
                        std::hint::black_box(&dataset),
                        &FeatureConfig::mvg(),
                        t,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
