//! Criterion micro-benchmarks for visibility graph construction
//! (section 4.5: VG construction is O(n log n) with the divide-and-conquer
//! builder, HVG is O(n)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsg_graph::visibility::{
    horizontal_visibility_graph, visibility_graph, visibility_graph_naive,
};
use tsg_ts::generators;

fn series(n: usize) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    generators::harmonic_mixture(
        &mut rng,
        n,
        &[(n as f64 / 8.0, 1.0), (n as f64 / 31.0, 0.4)],
        0.3,
    )
}

fn bench_visibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("visibility_graph");
    group.sample_size(20);
    for &n in &[250usize, 1000, 4000] {
        let values = series(n);
        group.bench_with_input(BenchmarkId::new("vg_divide_conquer", n), &values, |b, v| {
            b.iter(|| visibility_graph(std::hint::black_box(v)))
        });
        group.bench_with_input(BenchmarkId::new("vg_naive", n), &values, |b, v| {
            b.iter(|| visibility_graph_naive(std::hint::black_box(v)))
        });
        group.bench_with_input(BenchmarkId::new("hvg", n), &values, |b, v| {
            b.iter(|| horizontal_visibility_graph(std::hint::black_box(v)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_visibility);
criterion_main!(benches);
