//! Criterion micro-benchmarks for graphlet counting and the other graph
//! statistics (the PGD-style counter versus brute force, k-core,
//! assortativity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsg_graph::assortativity::degree_assortativity;
use tsg_graph::kcore::max_coreness;
use tsg_graph::motifs::{count_motifs, count_motifs_bruteforce};
use tsg_graph::visibility::visibility_graph;
use tsg_ts::generators;

fn graph(n: usize) -> tsg_graph::Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let values = generators::fractional_noise(&mut rng, n, 0.6);
    visibility_graph(&values)
}

fn bench_motifs(c: &mut Criterion) {
    let mut group = c.benchmark_group("motif_counting");
    group.sample_size(15);
    for &n in &[250usize, 1000, 4000] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::new("pgd_style", n), &g, |b, g| {
            b.iter(|| count_motifs(std::hint::black_box(g)))
        });
    }
    // brute force only at a size where it terminates quickly
    let small = graph(48);
    group.bench_function("bruteforce_48", |b| {
        b.iter(|| count_motifs_bruteforce(std::hint::black_box(&small)))
    });
    group.finish();

    let mut group = c.benchmark_group("graph_statistics");
    group.sample_size(20);
    let g = graph(1000);
    group.bench_function("kcore_1000", |b| {
        b.iter(|| max_coreness(std::hint::black_box(&g)))
    });
    group.bench_function("assortativity_1000", |b| {
        b.iter(|| degree_assortativity(std::hint::black_box(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_motifs);
criterion_main!(benches);
