//! Criterion micro-benchmarks for the classifier substrate: gradient
//! boosting, random forest and SVM training on an MVG-sized feature matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use tsg_ml::forest::{RandomForest, RandomForestParams};
use tsg_ml::gbt::{GradientBoosting, GradientBoostingParams};
use tsg_ml::svm::{SvmClassifier, SvmKernel, SvmParams};
use tsg_ml::traits::Classifier;
use tsg_ml::FeatureMatrix;

/// A deterministic pseudo-random feature matrix shaped like a typical MVG
/// extraction (120 instances × 240 features, 3 classes).
fn dataset() -> (FeatureMatrix, Vec<usize>) {
    let n_rows = 120usize;
    let n_cols = 240usize;
    let mut state = 99u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    let mut rows = Vec::with_capacity(n_rows);
    let mut labels = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let class = i % 3;
        let mut row = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let signal = if j % 3 == class { 0.5 } else { 0.0 };
            row.push(signal + 0.3 * next());
        }
        rows.push(row);
        labels.push(class);
    }
    (FeatureMatrix::from_rows(&rows).unwrap(), labels)
}

fn bench_classifiers(c: &mut Criterion) {
    let (x, y) = dataset();
    let mut group = c.benchmark_group("classifier_training");
    group.sample_size(10);
    group.bench_function("gradient_boosting_120x240", |b| {
        b.iter(|| {
            let mut gbt = GradientBoosting::new(GradientBoostingParams {
                n_estimators: 20,
                max_depth: 4,
                subsample: 0.5,
                colsample_bytree: 0.5,
                ..Default::default()
            });
            gbt.fit(std::hint::black_box(&x), std::hint::black_box(&y))
                .unwrap();
        })
    });
    group.bench_function("random_forest_120x240", |b| {
        b.iter(|| {
            let mut rf = RandomForest::new(RandomForestParams {
                n_estimators: 30,
                max_depth: 10,
                ..Default::default()
            });
            rf.fit(std::hint::black_box(&x), std::hint::black_box(&y))
                .unwrap();
        })
    });
    group.bench_function("svm_rbf_120x240", |b| {
        b.iter(|| {
            let mut svm = SvmClassifier::new(SvmParams {
                c: 1.0,
                kernel: SvmKernel::Rbf { gamma: 0.5 },
                ..Default::default()
            });
            svm.fit(std::hint::black_box(&x), std::hint::black_box(&y))
                .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
