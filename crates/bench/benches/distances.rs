//! Criterion micro-benchmarks for the distance substrate used by the 1NN
//! baselines: Euclidean, full DTW, banded DTW and the LB_Keogh lower bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsg_ts::distance::{dtw, dtw_windowed, euclidean, lb_keogh};
use tsg_ts::generators;

fn pair(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    (
        generators::sine_wave(&mut rng, n, n as f64 / 7.0, 1.0, 0.0, 0.2),
        generators::sine_wave(&mut rng, n, n as f64 / 7.5, 1.0, 0.5, 0.2),
    )
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances");
    group.sample_size(30);
    for &n in &[128usize, 512] {
        let (a, b) = pair(n);
        group.bench_with_input(BenchmarkId::new("euclidean", n), &n, |bench, _| {
            bench.iter(|| euclidean(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dtw_full", n), &n, |bench, _| {
            bench.iter(|| dtw(std::hint::black_box(&a), std::hint::black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dtw_band10", n), &n, |bench, _| {
            bench.iter(|| {
                dtw_windowed(std::hint::black_box(&a), std::hint::black_box(&b), 0.1).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("lb_keogh", n), &n, |bench, _| {
            bench.iter(|| {
                lb_keogh(std::hint::black_box(&a), std::hint::black_box(&b), n / 10).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
