//! Proof that the motif kernel is allocation-free after workspace warm-up.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! call has grown every scratch buffer, repeated [`count_motifs_with`] calls
//! on the same workspace must perform exactly zero heap allocations — the
//! core promise of the CSR + marker-array rewrite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use tsg_graph::motifs::{count_motifs_bruteforce, count_motifs_with, MotifWorkspace};
use tsg_graph::visibility::{horizontal_visibility_graph, visibility_graph};
use tsg_graph::Graph;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: the impl upholds the GlobalAlloc contract by delegating every
// call verbatim to `System` — same layout, same pointer — only bumping an
// atomic counter on the side, which cannot itself allocate or unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, who
        // guarantees it is valid per the GlobalAlloc contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: `ptr`/`layout` come from our caller, who guarantees `ptr` was
    // returned by this allocator (which always hands out System pointers)
    // with this layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: see above — a direct delegation of the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same delegation argument as `dealloc` for `ptr`/`layout`;
    // `new_size` is forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: see above — a direct delegation of the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn pseudo_series(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64)
        })
        .collect()
}

#[test]
fn count_motifs_allocates_nothing_after_warm_up() {
    let series = pseudo_series(17, 600);
    let vg = visibility_graph(&series);
    let hvg = horizontal_visibility_graph(&series);

    let mut ws = MotifWorkspace::new();
    // warm-up: grows every scratch buffer to the larger graph's size
    let reference_vg = count_motifs_with(&vg, &mut ws);
    let reference_hvg = count_motifs_with(&hvg, &mut ws);

    let before = allocation_count();
    for _ in 0..5 {
        assert_eq!(count_motifs_with(&vg, &mut ws), reference_vg);
        assert_eq!(count_motifs_with(&hvg, &mut ws), reference_hvg);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "count_motifs_with allocated {} times after warm-up",
        after - before
    );
}

#[test]
fn warmed_workspace_handles_smaller_graphs_without_allocating() {
    // shrinking below the warmed-up size must not reallocate either
    let big = visibility_graph(&pseudo_series(3, 400));
    let small = visibility_graph(&pseudo_series(4, 60));
    let mut ws = MotifWorkspace::new();
    count_motifs_with(&big, &mut ws);
    let reference = count_motifs_with(&small, &mut ws);
    assert_eq!(reference, count_motifs_bruteforce(&small));

    let before = allocation_count();
    let counts = count_motifs_with(&small, &mut ws);
    let after = allocation_count();
    assert_eq!(counts, reference);
    assert_eq!(after - before, 0);
}

#[test]
fn csr_construction_from_edge_buffer_is_exact_size() {
    // not allocation-free (CSR owns its arrays) but bounded: finalizing an
    // edge buffer must not regress into per-edge reallocation storms.
    // 3 scratch arrays + offsets/neighbors + small constant slack.
    let series = pseudo_series(9, 500);
    let edges: Vec<(u32, u32)> = {
        let g = visibility_graph(&series);
        g.edges().map(|(u, v)| (u as u32, v as u32)).collect()
    };
    let before = allocation_count();
    let g = Graph::from_edge_buffer(500, &edges);
    let after = allocation_count();
    assert_eq!(g.n_edges(), edges.len());
    assert!(
        after - before <= 8,
        "CSR finalize performed {} allocations",
        after - before
    );
}
