//! Property-based tests for the graph substrate, centred on the invariants
//! the paper relies on: visibility graphs are connected, HVG ⊆ VG, VG is
//! invariant to affine rescaling, motif counts partition all vertex subsets,
//! and the optimized algorithms agree with reference implementations.

use proptest::prelude::*;
use tsg_graph::graph::Graph;
use tsg_graph::kcore::{core_numbers, core_numbers_naive};
use tsg_graph::motifs::{count_motifs, count_motifs_bruteforce, count_motifs_with, MotifWorkspace};
use tsg_graph::stats::density;
use tsg_graph::traversal::is_connected;
use tsg_graph::visibility::{
    horizontal_visibility_graph, horizontally_visible, naturally_visible, visibility_graph,
    visibility_graph_naive,
};

fn series_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, 2..max_len)
}

fn random_graph_strategy() -> impl Strategy<Value = Graph> {
    (
        3usize..20,
        prop::collection::vec((0usize..20, 0usize..20), 0..60),
    )
        .prop_map(|(n, edges)| {
            Graph::from_edges(
                n,
                edges
                    .into_iter()
                    .filter(|(u, v)| u < &n && v < &n && u != v),
            )
        })
}

/// Erdős–Rényi G(n, p) over n ≤ 25: every vertex pair is an edge with
/// probability `p`, decided by a splitmix64 stream seeded from the strategy
/// input. Unlike `random_graph_strategy` (bounded edge lists, so sparse) or
/// visibility graphs (planar-ish), this covers the whole density spectrum up
/// to near-complete graphs.
fn erdos_renyi_strategy() -> impl Strategy<Value = Graph> {
    (2usize..26, 0u64..u64::MAX, 0.0..1.0f64).prop_map(|(n, seed, p)| {
        let mut state = seed;
        let mut next_unit = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if next_unit() < p {
                    edges.push((u, v));
                }
            }
        }
        Graph::from_edges(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vg_divide_and_conquer_matches_naive(values in series_strategy(120)) {
        let dc = visibility_graph(&values);
        let naive = visibility_graph_naive(&values);
        prop_assert_eq!(dc, naive);
    }

    #[test]
    fn vg_matches_definition(values in series_strategy(40)) {
        let g = visibility_graph(&values);
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                prop_assert_eq!(g.has_edge(i, j), naturally_visible(&values, i, j));
            }
        }
    }

    #[test]
    fn hvg_matches_definition(values in series_strategy(60)) {
        let g = horizontal_visibility_graph(&values);
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                prop_assert_eq!(g.has_edge(i, j), horizontally_visible(&values, i, j));
            }
        }
    }

    #[test]
    fn visibility_graphs_are_connected(values in series_strategy(100)) {
        prop_assert!(is_connected(&visibility_graph(&values)));
        prop_assert!(is_connected(&horizontal_visibility_graph(&values)));
    }

    #[test]
    fn hvg_is_subgraph_of_vg(values in series_strategy(100)) {
        let vg = visibility_graph(&values);
        let hvg = horizontal_visibility_graph(&values);
        prop_assert!(hvg.is_subgraph_of(&vg));
    }

    #[test]
    fn vg_affine_invariance(values in series_strategy(80), scale in 0.01..50.0f64, offset in -100.0..100.0f64) {
        let rescaled: Vec<f64> = values.iter().map(|v| scale * v + offset).collect();
        prop_assert_eq!(visibility_graph(&values), visibility_graph(&rescaled));
        prop_assert_eq!(
            horizontal_visibility_graph(&values),
            horizontal_visibility_graph(&rescaled)
        );
    }

    #[test]
    fn vg_time_reversal_symmetry(values in series_strategy(60)) {
        // visibility is symmetric under reversing the time axis
        let g = visibility_graph(&values);
        let reversed: Vec<f64> = values.iter().rev().cloned().collect();
        let gr = visibility_graph(&reversed);
        let n = values.len();
        for (u, v) in g.edges() {
            prop_assert!(gr.has_edge(n - 1 - u, n - 1 - v));
        }
        prop_assert_eq!(g.n_edges(), gr.n_edges());
    }

    #[test]
    fn motif_counts_partition_subsets(g in random_graph_strategy()) {
        let c = count_motifs(&g);
        let n = g.n_vertices() as u64;
        prop_assert_eq!(c.edge2 + c.independent2, n * (n - 1) / 2);
        prop_assert_eq!(c.total_size3(), n * (n - 1) * (n - 2) / 6);
        prop_assert_eq!(c.total_size4(), n * (n - 1) * (n - 2) * (n - 3) / 24);
    }

    #[test]
    fn motif_fast_equals_bruteforce(g in random_graph_strategy()) {
        prop_assert_eq!(count_motifs(&g), count_motifs_bruteforce(&g));
    }

    #[test]
    fn motif_fast_equals_bruteforce_on_erdos_renyi(g in erdos_renyi_strategy()) {
        prop_assert_eq!(count_motifs(&g), count_motifs_bruteforce(&g));
    }

    #[test]
    fn motif_counts_partition_subsets_on_erdos_renyi(g in erdos_renyi_strategy()) {
        let c = count_motifs(&g);
        let n = g.n_vertices() as u64;
        // saturating: the strategy includes n = 2, where there are no
        // size-3/size-4 subsets at all
        prop_assert_eq!(c.total_size3(), n * (n - 1) * n.saturating_sub(2) / 6);
        prop_assert_eq!(
            c.total_size4(),
            n * (n - 1) * n.saturating_sub(2) * n.saturating_sub(3) / 24
        );
    }

    #[test]
    fn reused_workspace_equals_fresh_on_erdos_renyi(
        a in erdos_renyi_strategy(),
        b in erdos_renyi_strategy(),
        c in erdos_renyi_strategy(),
    ) {
        // one workspace across differently-sized graphs must behave exactly
        // like a fresh workspace per graph
        let mut reused = MotifWorkspace::new();
        for g in [&a, &b, &c] {
            prop_assert_eq!(
                count_motifs_with(g, &mut reused),
                count_motifs_with(g, &mut MotifWorkspace::new())
            );
        }
    }

    #[test]
    fn kcore_bucket_equals_naive(g in random_graph_strategy()) {
        prop_assert_eq!(core_numbers(&g), core_numbers_naive(&g));
    }

    #[test]
    fn core_number_bounded_by_degree(g in random_graph_strategy()) {
        let core = core_numbers(&g);
        for (v, &c) in core.iter().enumerate() {
            prop_assert!(c <= g.degree(v));
        }
    }

    #[test]
    fn density_in_unit_interval(g in random_graph_strategy()) {
        let d = density(&g);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn vg_edge_count_at_least_path(values in series_strategy(100)) {
        // visibility graphs always contain the time path, so |E| ≥ n - 1
        let g = visibility_graph(&values);
        prop_assert!(g.n_edges() >= values.len() - 1);
        let h = horizontal_visibility_graph(&values);
        prop_assert!(h.n_edges() >= values.len() - 1);
    }
}
