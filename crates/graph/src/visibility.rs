//! Visibility graph construction.
//!
//! * **Natural visibility graph (VG)** — Definition 2.3: vertices `i` and `j`
//!   are connected iff every intermediate bar stays strictly below the
//!   straight line between the tops of bars `i` and `j`.
//! * **Horizontal visibility graph (HVG)** — Definition 2.4: `i` and `j` are
//!   connected iff every intermediate value is strictly smaller than both
//!   endpoints.
//!
//! Two VG builders are provided: a reference `O(n²)` sweep
//! ([`visibility_graph_naive`]) and a divide-and-conquer builder
//! ([`visibility_graph`]) that recurses around range maxima and runs in
//! `O(n log n)` for typical (noisy) series. The two are equivalence-tested
//! against each other. The HVG builder uses the classic monotone stack and
//! runs in `O(n)`.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Which visibility criterion to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VisibilityKind {
    /// Natural visibility graph (Definition 2.3).
    Natural,
    /// Horizontal visibility graph (Definition 2.4).
    Horizontal,
}

impl VisibilityKind {
    /// Builds the corresponding graph from a series.
    pub fn build(self, values: &[f64]) -> Graph {
        match self {
            VisibilityKind::Natural => visibility_graph(values),
            VisibilityKind::Horizontal => horizontal_visibility_graph(values),
        }
    }

    /// Short name used in feature labels (`"VG"` / `"HVG"`).
    pub fn short_name(self) -> &'static str {
        match self {
            VisibilityKind::Natural => "VG",
            VisibilityKind::Horizontal => "HVG",
        }
    }
}

/// Reference natural visibility graph: for every start vertex `i`, sweep
/// right keeping the maximum slope seen so far; `j` is visible from `i` iff
/// its slope exceeds every intermediate slope. `O(n²)` worst case; edges are
/// emitted into a flat buffer and finalized into CSR in one `O(n + m)` pass.
pub fn visibility_graph_naive(values: &[f64]) -> Graph {
    let n = values.len();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(4 * n);
    for i in 0..n {
        let mut max_slope = f64::NEG_INFINITY;
        for j in (i + 1)..n {
            let slope = (values[j] - values[i]) / (j - i) as f64;
            if slope > max_slope {
                edges.push((i as u32, j as u32));
            }
            max_slope = max_slope.max(slope);
        }
    }
    Graph::from_edge_buffer(n, &edges)
}

/// Divide-and-conquer natural visibility graph.
///
/// The maximum of the current range is visible from a prefix of nodes on its
/// left and right (found with the same max-slope sweep restricted to the
/// range); the range is then split at the maximum and both halves are
/// processed recursively. Expected `O(n log n)` for series without long
/// monotone runs; worst case `O(n²)` (same asymptotics as the naive builder).
pub fn visibility_graph(values: &[f64]) -> Graph {
    let n = values.len();
    if n == 0 {
        return Graph::new(0);
    }
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(4 * n);
    // Explicit stack of (lo, hi) inclusive ranges to avoid deep recursion on
    // monotone series.
    let mut stack: Vec<(usize, usize)> = vec![(0, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo {
            continue;
        }
        // index of the maximum value in [lo, hi]
        let mut max_idx = lo;
        for i in lo..=hi {
            if values[i] > values[max_idx] {
                max_idx = i;
            }
        }
        // sweep left of the maximum
        if max_idx > lo {
            let mut max_slope = f64::NEG_INFINITY;
            for j in (lo..max_idx).rev() {
                let slope = (values[j] - values[max_idx]) / (max_idx - j) as f64;
                if slope > max_slope {
                    edges.push((max_idx as u32, j as u32));
                }
                max_slope = max_slope.max(slope);
            }
        }
        // sweep right of the maximum
        if max_idx < hi {
            let mut max_slope = f64::NEG_INFINITY;
            for j in (max_idx + 1)..=hi {
                let slope = (values[j] - values[max_idx]) / (j - max_idx) as f64;
                if slope > max_slope {
                    edges.push((max_idx as u32, j as u32));
                }
                max_slope = max_slope.max(slope);
            }
        }
        if max_idx > lo {
            stack.push((lo, max_idx - 1));
        }
        if max_idx < hi {
            stack.push((max_idx + 1, hi));
        }
    }
    let g = Graph::from_edge_buffer(n, &edges);
    // The divide-and-conquer recursion only links vertices to range maxima;
    // visibility pairs fully inside one side of a split that do not involve
    // that side's maximum are discovered deeper in the recursion, but pairs
    // that straddle a split are blocked by the maximum by definition —
    // except neighbours of the maximum on opposite sides are NOT mutually
    // visible through it (it is higher), so no straddling edges are missed.
    g
}

/// Horizontal visibility graph via a monotone stack, `O(n)`.
pub fn horizontal_visibility_graph(values: &[f64]) -> Graph {
    let n = values.len();
    // every bar is pushed and popped at most once, so m ≤ 2n - 3
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(2 * n);
    // stack of indices with strictly decreasing values from bottom to top
    let mut stack: Vec<u32> = Vec::new();
    for j in 0..n {
        while let Some(&top) = stack.last() {
            if values[top as usize] < values[j] {
                edges.push((top, j as u32));
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&top) = stack.last() {
            // the first element ≥ values[j] is still horizontally visible
            edges.push((top, j as u32));
            if values[top as usize] == values[j] {
                // an equal bar blocks everything behind it from seeing past j
                stack.pop();
            }
        }
        stack.push(j as u32);
    }
    Graph::from_edge_buffer(n, &edges)
}

/// Checks the Definition 2.3 visibility predicate directly (used by tests).
pub fn naturally_visible(values: &[f64], i: usize, j: usize) -> bool {
    if i == j {
        return false;
    }
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    for k in (i + 1)..j {
        let line = values[j] + (values[i] - values[j]) * (j - k) as f64 / (j - i) as f64;
        if values[k] >= line {
            return false;
        }
    }
    true
}

/// Checks the Definition 2.4 horizontal visibility predicate directly.
pub fn horizontally_visible(values: &[f64], i: usize, j: usize) -> bool {
    if i == j {
        return false;
    }
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    for k in (i + 1)..j {
        if values[k] >= values[i] || values[k] >= values[j] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn brute_force(values: &[f64], horizontal: bool) -> Graph {
        let n = values.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let visible = if horizontal {
                    horizontally_visible(values, i, j)
                } else {
                    naturally_visible(values, i, j)
                };
                if visible {
                    edges.push((i, j));
                }
            }
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(visibility_graph(&[]).n_vertices(), 0);
        assert_eq!(visibility_graph(&[1.0]).n_edges(), 0);
        assert_eq!(horizontal_visibility_graph(&[1.0]).n_edges(), 0);
    }

    #[test]
    fn adjacent_points_always_connected() {
        let v = [3.0, 1.0, 2.0, 5.0, 0.5];
        let vg = visibility_graph(&v);
        let hvg = horizontal_visibility_graph(&v);
        for i in 0..v.len() - 1 {
            assert!(vg.has_edge(i, i + 1), "VG missing edge ({i},{})", i + 1);
            assert!(hvg.has_edge(i, i + 1), "HVG missing edge ({i},{})", i + 1);
        }
    }

    #[test]
    fn known_small_example() {
        // values: a valley between two peaks
        let v = [1.0, 3.0, 0.5, 0.4, 2.0];
        let vg = visibility_graph_naive(&v);
        // peak 1 sees everything
        assert!(vg.has_edge(1, 0));
        assert!(vg.has_edge(1, 2));
        assert!(vg.has_edge(1, 3));
        assert!(vg.has_edge(1, 4));
        // 0 cannot see past the higher peak at 1
        assert!(!vg.has_edge(0, 2));
        assert!(!vg.has_edge(0, 4));
        // 2 sees 4 over 3 (line from 0.5 to 2.0 stays above 0.4)
        assert!(vg.has_edge(2, 4));

        let hvg = horizontal_visibility_graph(&v);
        // 2 sees 4 horizontally? intermediate 0.4 < min(0.5, 2.0) → yes
        assert!(hvg.has_edge(2, 4));
        // 1 sees 4 horizontally? intermediates 0.5, 0.4 both < min(3,2) → yes
        assert!(hvg.has_edge(1, 4));
        // 0 sees 2? intermediate 3.0 ≥ 1.0 → no
        assert!(!hvg.has_edge(0, 2));
    }

    #[test]
    fn monotone_series_gives_path_hvg() {
        // strictly increasing: only adjacent bars are horizontally visible
        let v: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let hvg = horizontal_visibility_graph(&v);
        assert_eq!(hvg.n_edges(), v.len() - 1);
        // but the natural VG of a convex/monotone ramp is denser
        let vg = visibility_graph(&v);
        assert!(vg.n_edges() >= hvg.n_edges());
    }

    #[test]
    fn concave_series_vg_is_path() {
        // strictly concave: each point only sees its neighbours naturally
        let n = 30usize;
        let v: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 - (n as f64 - 1.0) / 2.0;
                -(x * x)
            })
            .collect();
        let vg = visibility_graph(&v);
        assert_eq!(vg.n_edges(), n - 1);
    }

    #[test]
    fn divide_and_conquer_matches_naive_and_bruteforce() {
        let seeds: [u64; 6] = [1, 2, 3, 4, 5, 6];
        for seed in seeds {
            // deterministic pseudo-random series without pulling in rand here
            let mut x = seed;
            let v: Vec<f64> = (0..200)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) as f64) / (u32::MAX as f64)
                })
                .collect();
            let dc = visibility_graph(&v);
            let naive = visibility_graph_naive(&v);
            let brute = brute_force(&v, false);
            assert_eq!(naive, brute, "naive vs brute mismatch for seed {seed}");
            assert_eq!(
                dc, brute,
                "divide-and-conquer vs brute mismatch for seed {seed}"
            );
        }
    }

    #[test]
    fn hvg_matches_bruteforce() {
        let mut x = 99u64;
        let v: Vec<f64> = (0..300)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64) / (u32::MAX as f64)
            })
            .collect();
        assert_eq!(horizontal_visibility_graph(&v), brute_force(&v, true));
    }

    #[test]
    fn hvg_with_ties_matches_bruteforce() {
        // plateaus exercise the strictness of the inequality
        let v = [1.0, 2.0, 2.0, 1.0, 3.0, 3.0, 3.0, 0.0, 2.0, 2.0];
        assert_eq!(horizontal_visibility_graph(&v), brute_force(&v, true));
    }

    #[test]
    fn hvg_is_subgraph_of_vg() {
        let mut x = 7u64;
        let v: Vec<f64> = (0..150)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64) / (u32::MAX as f64)
            })
            .collect();
        let vg = visibility_graph(&v);
        let hvg = horizontal_visibility_graph(&v);
        assert!(hvg.is_subgraph_of(&vg));
    }

    #[test]
    fn visibility_graphs_are_connected() {
        let v = [5.0, 1.0, 4.0, 4.0, 2.0, 9.0, 0.0, 3.0];
        assert!(is_connected(&visibility_graph(&v)));
        assert!(is_connected(&horizontal_visibility_graph(&v)));
    }

    #[test]
    fn vg_affine_invariance() {
        let mut x = 5u64;
        let v: Vec<f64> = (0..120)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64) / (u32::MAX as f64)
            })
            .collect();
        let scaled: Vec<f64> = v.iter().map(|y| 3.5 * y - 40.0).collect();
        assert_eq!(visibility_graph(&v), visibility_graph(&scaled));
        assert_eq!(
            horizontal_visibility_graph(&v),
            horizontal_visibility_graph(&scaled)
        );
    }

    #[test]
    fn kind_dispatch() {
        let v = [1.0, 0.5, 2.0, 0.1, 1.5];
        assert_eq!(VisibilityKind::Natural.build(&v), visibility_graph(&v));
        assert_eq!(
            VisibilityKind::Horizontal.build(&v),
            horizontal_visibility_graph(&v)
        );
        assert_eq!(VisibilityKind::Natural.short_name(), "VG");
        assert_eq!(VisibilityKind::Horizontal.short_name(), "HVG");
    }
}
