//! # tsg-graph — graph substrate for visibility-graph time series features
//!
//! Everything the MVG pipeline needs from graph theory, implemented from
//! scratch:
//!
//! * [`Graph`] — a compact undirected graph with sorted adjacency lists.
//! * [`visibility`] — natural visibility graph construction (naive `O(n²)`
//!   and divide-and-conquer) and horizontal visibility graph construction
//!   (stack-based, `O(n)`), following Definitions 2.3 and 2.4 of the paper.
//! * [`motifs`] — exact counting of all graph motifs (graphlets) of size 2,
//!   3 and 4 — connected and disconnected (Table 1) — via edge-centric
//!   triangle/clique enumeration plus combinatorial identities, in the spirit
//!   of PGD (Ahmed et al., ICDM 2015).
//! * [`kcore`] — `O(m)` core decomposition (Batagelj–Zaveršnik).
//! * [`assortativity`] — degree assortativity (Newman's Pearson formulation,
//!   equation 4 of the paper).
//! * [`stats`] — density (equation 2), degree statistics and the combined
//!   [`stats::GraphStatistics`] record.
//! * [`traversal`] — BFS, connected components and connectivity checks.

pub mod assortativity;
pub mod graph;
pub mod kcore;
pub mod motifs;
pub mod stats;
pub mod traversal;
pub mod visibility;

pub use assortativity::degree_assortativity;
pub use graph::Graph;
pub use kcore::{core_numbers, max_coreness};
pub use motifs::{count_motifs, count_motifs_with, Motif, MotifCounts, MotifWorkspace};
pub use stats::{degree_statistics, density, DegreeStatistics, GraphStatistics};
pub use traversal::{connected_components, is_connected};
pub use visibility::{
    horizontal_visibility_graph, visibility_graph, visibility_graph_naive, VisibilityKind,
};
