//! Exact counting of all graph motifs (graphlets) of size 2, 3 and 4.
//!
//! The paper's dominant features are probability distributions over the 16
//! induced subgraph types of Table 1 — connected and disconnected — counted
//! over all vertex subsets of the corresponding size. PGD (Ahmed et al.,
//! ICDM 2015) shows these can be obtained without enumerating subsets: count
//! triangles, 4-cliques and diamonds directly from edge neighborhoods, count
//! the remaining connected types through combinatorial identities on degrees
//! and wedge/path counts, and recover all disconnected types (and therefore
//! the complete distribution) in closed form. This module follows that
//! strategy; a brute-force enumerator over all subsets is kept for tests.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// The sixteen motif types of Table 1 (size 2, 3 and 4; connected and
/// disconnected), identified by the paper's `M{size}{index}` naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Motif {
    /// `M2_1` — a single edge.
    Edge2,
    /// `M2_2` — two independent (non-adjacent) vertices.
    Independent2,
    /// `M3_1` — triangle.
    Triangle3,
    /// `M3_2` — path on three vertices (wedge).
    Path3,
    /// `M3_3` — one edge plus an isolated vertex.
    OneEdge3,
    /// `M3_4` — three independent vertices.
    Independent3,
    /// `M4_1` — 4-clique.
    Clique4,
    /// `M4_2` — chordal cycle (diamond).
    ChordalCycle4,
    /// `M4_3` — tailed triangle (paw).
    TailedTriangle4,
    /// `M4_4` — 4-cycle.
    Cycle4,
    /// `M4_5` — 4-star (claw).
    Star4,
    /// `M4_6` — path on four vertices.
    Path4,
    /// `M4_7` — triangle plus an isolated vertex.
    NodeTriangle4,
    /// `M4_8` — wedge (2-star) plus an isolated vertex.
    NodeStar4,
    /// `M4_9` — two independent edges.
    TwoEdges4,
    /// `M4_10` — one edge plus two isolated vertices.
    OneEdge4,
    /// `M4_11` — four independent vertices.
    Independent4,
}

impl Motif {
    /// All motifs in the canonical Table 1 order.
    pub const ALL: [Motif; 17] = [
        Motif::Edge2,
        Motif::Independent2,
        Motif::Triangle3,
        Motif::Path3,
        Motif::OneEdge3,
        Motif::Independent3,
        Motif::Clique4,
        Motif::ChordalCycle4,
        Motif::TailedTriangle4,
        Motif::Cycle4,
        Motif::Star4,
        Motif::Path4,
        Motif::NodeTriangle4,
        Motif::NodeStar4,
        Motif::TwoEdges4,
        Motif::OneEdge4,
        Motif::Independent4,
    ];

    /// Number of vertices in the motif.
    pub fn size(self) -> usize {
        match self {
            Motif::Edge2 | Motif::Independent2 => 2,
            Motif::Triangle3 | Motif::Path3 | Motif::OneEdge3 | Motif::Independent3 => 3,
            _ => 4,
        }
    }

    /// Whether the motif is connected.
    pub fn is_connected(self) -> bool {
        matches!(
            self,
            Motif::Edge2
                | Motif::Triangle3
                | Motif::Path3
                | Motif::Clique4
                | Motif::ChordalCycle4
                | Motif::TailedTriangle4
                | Motif::Cycle4
                | Motif::Star4
                | Motif::Path4
        )
    }

    /// Number of edges in the motif.
    pub fn n_edges(self) -> usize {
        match self {
            Motif::Independent2 | Motif::Independent3 | Motif::Independent4 => 0,
            Motif::Edge2 | Motif::OneEdge3 | Motif::OneEdge4 => 1,
            Motif::Path3 | Motif::NodeStar4 | Motif::TwoEdges4 => 2,
            Motif::Triangle3 | Motif::Star4 | Motif::Path4 | Motif::NodeTriangle4 => 3,
            Motif::Cycle4 | Motif::TailedTriangle4 => 4,
            Motif::ChordalCycle4 => 5,
            Motif::Clique4 => 6,
        }
    }

    /// The paper's `M{size}{index}` identifier (e.g. `"M41"`).
    pub fn paper_id(self) -> &'static str {
        match self {
            Motif::Edge2 => "M21",
            Motif::Independent2 => "M22",
            Motif::Triangle3 => "M31",
            Motif::Path3 => "M32",
            Motif::OneEdge3 => "M33",
            Motif::Independent3 => "M34",
            Motif::Clique4 => "M41",
            Motif::ChordalCycle4 => "M42",
            Motif::TailedTriangle4 => "M43",
            Motif::Cycle4 => "M44",
            Motif::Star4 => "M45",
            Motif::Path4 => "M46",
            Motif::NodeTriangle4 => "M47",
            Motif::NodeStar4 => "M48",
            Motif::TwoEdges4 => "M49",
            Motif::OneEdge4 => "M410",
            Motif::Independent4 => "M411",
        }
    }

    /// Human-readable name following Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Motif::Edge2 => "2-edge",
            Motif::Independent2 => "2-node-independent",
            Motif::Triangle3 => "3-triangle",
            Motif::Path3 => "3-path",
            Motif::OneEdge3 => "3-node-1-edge",
            Motif::Independent3 => "3-node-independent",
            Motif::Clique4 => "4-clique",
            Motif::ChordalCycle4 => "4-chordal-cycle",
            Motif::TailedTriangle4 => "4-tailed-triangle",
            Motif::Cycle4 => "4-cycle",
            Motif::Star4 => "4-star",
            Motif::Path4 => "4-path",
            Motif::NodeTriangle4 => "4-node-triangle",
            Motif::NodeStar4 => "4-node-star",
            Motif::TwoEdges4 => "4-node-2-edges",
            Motif::OneEdge4 => "4-node-1-edge",
            Motif::Independent4 => "4-node-independent",
        }
    }
}

/// Exact induced-subgraph counts for all motifs of size 2, 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MotifCounts {
    /// `M2_1` single edges.
    pub edge2: u64,
    /// `M2_2` non-edges.
    pub independent2: u64,
    /// `M3_1` triangles.
    pub triangle3: u64,
    /// `M3_2` induced wedges.
    pub path3: u64,
    /// `M3_3` one edge + isolated vertex.
    pub one_edge3: u64,
    /// `M3_4` empty triples.
    pub independent3: u64,
    /// `M4_1` 4-cliques.
    pub clique4: u64,
    /// `M4_2` diamonds.
    pub chordal_cycle4: u64,
    /// `M4_3` tailed triangles.
    pub tailed_triangle4: u64,
    /// `M4_4` induced 4-cycles.
    pub cycle4: u64,
    /// `M4_5` induced claws.
    pub star4: u64,
    /// `M4_6` induced 4-paths.
    pub path4: u64,
    /// `M4_7` triangle + isolated vertex.
    pub node_triangle4: u64,
    /// `M4_8` wedge + isolated vertex.
    pub node_star4: u64,
    /// `M4_9` two independent edges.
    pub two_edges4: u64,
    /// `M4_10` one edge + two isolated vertices.
    pub one_edge4: u64,
    /// `M4_11` empty quadruple.
    pub independent4: u64,
}

impl MotifCounts {
    /// The count for a specific motif.
    pub fn get(&self, motif: Motif) -> u64 {
        match motif {
            Motif::Edge2 => self.edge2,
            Motif::Independent2 => self.independent2,
            Motif::Triangle3 => self.triangle3,
            Motif::Path3 => self.path3,
            Motif::OneEdge3 => self.one_edge3,
            Motif::Independent3 => self.independent3,
            Motif::Clique4 => self.clique4,
            Motif::ChordalCycle4 => self.chordal_cycle4,
            Motif::TailedTriangle4 => self.tailed_triangle4,
            Motif::Cycle4 => self.cycle4,
            Motif::Star4 => self.star4,
            Motif::Path4 => self.path4,
            Motif::NodeTriangle4 => self.node_triangle4,
            Motif::NodeStar4 => self.node_star4,
            Motif::TwoEdges4 => self.two_edges4,
            Motif::OneEdge4 => self.one_edge4,
            Motif::Independent4 => self.independent4,
        }
    }

    /// Sets the count for a specific motif (used by the brute-force counter).
    pub fn set(&mut self, motif: Motif, value: u64) {
        match motif {
            Motif::Edge2 => self.edge2 = value,
            Motif::Independent2 => self.independent2 = value,
            Motif::Triangle3 => self.triangle3 = value,
            Motif::Path3 => self.path3 = value,
            Motif::OneEdge3 => self.one_edge3 = value,
            Motif::Independent3 => self.independent3 = value,
            Motif::Clique4 => self.clique4 = value,
            Motif::ChordalCycle4 => self.chordal_cycle4 = value,
            Motif::TailedTriangle4 => self.tailed_triangle4 = value,
            Motif::Cycle4 => self.cycle4 = value,
            Motif::Star4 => self.star4 = value,
            Motif::Path4 => self.path4 = value,
            Motif::NodeTriangle4 => self.node_triangle4 = value,
            Motif::NodeStar4 => self.node_star4 = value,
            Motif::TwoEdges4 => self.two_edges4 = value,
            Motif::OneEdge4 => self.one_edge4 = value,
            Motif::Independent4 => self.independent4 = value,
        }
    }

    /// Total number of size-3 subsets accounted for.
    pub fn total_size3(&self) -> u64 {
        self.triangle3 + self.path3 + self.one_edge3 + self.independent3
    }

    /// Total number of size-4 subsets accounted for.
    pub fn total_size4(&self) -> u64 {
        self.clique4
            + self.chordal_cycle4
            + self.tailed_triangle4
            + self.cycle4
            + self.star4
            + self.path4
            + self.node_triangle4
            + self.node_star4
            + self.two_edges4
            + self.one_edge4
            + self.independent4
    }
}

/// Reusable scratch memory for [`count_motifs_with`].
///
/// The kernel is allocation-free after warm-up: every buffer lives here and
/// only ever grows. Hold one workspace per thread and feed it a stream of
/// graphs — [`count_motifs`] does exactly that through a thread-local, so
/// each worker of the extraction pool reuses one workspace across its whole
/// chunk of series.
#[derive(Debug, Default)]
pub struct MotifWorkspace {
    /// Epoch-stamped membership marker for the neighborhood of the vertex
    /// currently being processed (`marker[x] == epoch` ⇔ `x ∈ N(u)`).
    marker: Vec<u32>,
    epoch: u32,
    /// Second marker for the rank-filtered common neighborhood (K4 pairs).
    marker2: Vec<u32>,
    epoch2: u32,
    /// Common neighbors of the current edge ranked above both endpoints.
    ordered: Vec<u32>,
    /// Reusable output buffer of [`MotifWorkspace::common_neighbors`].
    common: Vec<u32>,
    /// Degree-ascending rank (ties by index): a degeneracy-style order that
    /// points every edge at its higher-degree endpoint.
    rank: Vec<u32>,
    /// CSR of the rank-increasing orientation (`out_neighbors[out_offsets[v]..
    /// out_offsets[v + 1]]` are the neighbors of `v` ranked above it).
    out_offsets: Vec<u32>,
    out_neighbors: Vec<u32>,
    /// Wedge co-degree accumulator + touched list for 4-cycle counting.
    codeg: Vec<u32>,
    touched: Vec<u32>,
    /// Counting-sort scratch for rank construction.
    buckets: Vec<u32>,
}

impl MotifWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        MotifWorkspace::default()
    }

    /// Grows the marker arrays to `n` vertices and resets the epoch counters
    /// before they can wrap around (each call consumes at most `n` epochs and
    /// `m` second-marker epochs).
    fn prepare_markers(&mut self, n: usize, m: usize) {
        self.marker.resize(n.max(self.marker.len()), 0);
        self.marker2.resize(n.max(self.marker2.len()), 0);
        if self.epoch as u64 + n as u64 + 2 > u32::MAX as u64 {
            self.marker.iter_mut().for_each(|slot| *slot = 0);
            self.epoch = 0;
        }
        if self.epoch2 as u64 + m as u64 + 2 > u32::MAX as u64 {
            self.marker2.iter_mut().for_each(|slot| *slot = 0);
            self.epoch2 = 0;
        }
    }

    /// Computes the degree-ascending rank (ties broken by vertex index) and
    /// the CSR of the rank-increasing orientation.
    fn prepare_order(&mut self, graph: &Graph) {
        let n = graph.n_vertices();
        // counting sort over degrees; `buckets[d]` becomes the next rank to
        // hand out among degree-d vertices
        self.buckets.clear();
        self.buckets.resize(n + 1, 0);
        for d in graph.degrees() {
            self.buckets[d] += 1;
        }
        let mut start = 0u32;
        for bucket in self.buckets.iter_mut() {
            let count = *bucket;
            *bucket = start;
            start += count;
        }
        self.rank.clear();
        self.rank.resize(n, 0);
        for v in 0..n {
            let d = graph.degree(v);
            self.rank[v] = self.buckets[d];
            self.buckets[d] += 1;
        }
        // orientation CSR: per vertex, the neighbors ranked above it, in
        // ascending index order (deterministic)
        self.out_offsets.clear();
        self.out_offsets.resize(n + 1, 0);
        self.out_neighbors.clear();
        for v in 0..n {
            self.out_offsets[v] = self.out_neighbors.len() as u32;
            let rv = self.rank[v];
            for &w in graph.neighbors(v) {
                if self.rank[w as usize] > rv {
                    self.out_neighbors.push(w);
                }
            }
        }
        self.out_offsets[n] = self.out_neighbors.len() as u32;
    }

    fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.out_neighbors[self.out_offsets[v] as usize..self.out_offsets[v + 1] as usize]
    }

    /// Common neighbors of `u` and `v` via the epoch-stamped marker array —
    /// the allocation-free path the motif kernel uses per edge, exposed so
    /// tests can pin it against the sorted-merge reference
    /// ([`Graph::common_neighbors`]). The returned slice is ascending and
    /// valid until the next call on this workspace.
    pub fn common_neighbors(&mut self, graph: &Graph, u: usize, v: usize) -> &[u32] {
        self.prepare_markers(graph.n_vertices(), graph.n_edges());
        self.epoch += 1;
        for &x in graph.neighbors(u) {
            self.marker[x as usize] = self.epoch;
        }
        self.common.clear();
        for &w in graph.neighbors(v) {
            if self.marker[w as usize] == self.epoch {
                self.common.push(w);
            }
        }
        &self.common
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<MotifWorkspace> = RefCell::new(MotifWorkspace::new());
}

/// Counts all size-2, size-3 and size-4 induced motifs of `graph`,
/// reusing a thread-local [`MotifWorkspace`] so repeated calls on one thread
/// (e.g. a pool worker extracting a chunk of series) allocate nothing after
/// the first graph.
pub fn count_motifs(graph: &Graph) -> MotifCounts {
    THREAD_WORKSPACE.with(|ws| count_motifs_with(graph, &mut ws.borrow_mut()))
}

/// Counts all size-2, size-3 and size-4 induced motifs of `graph` using a
/// caller-held workspace. Allocation-free after workspace warm-up.
///
/// Edge-centric and degree-ordered, in the spirit of PGD (Ahmed et al.,
/// ICDM 2015): every edge is processed once from its higher-ranked endpoint
/// (rank = degree ascending, ties by index), whose neighborhood is marked
/// once and shared by all of that vertex's edges. Per edge this yields the
/// triangle count `t_e` and the paw attachment sum in `O(d_lower)` after the
/// amortised marking; 4-cliques are found once each as adjacent pairs inside
/// the rank-filtered common neighborhood (scanning only rank-increasing
/// out-neighbors, so each K4 is discovered exactly once from its two
/// lowest-ranked vertices); diamonds follow in closed form from
/// `Σ_e C(t_e, 2) = diamonds + 6·K4`. Non-induced 4-cycles are counted once
/// each by rank-filtered wedge co-degrees (Chiba–Nishizeki style), and every
/// remaining motif — connected and disconnected — falls out of combinatorial
/// identities on `n`, `m`, degrees and the exact counts above. Total work is
/// `O(n + Σ_e d_lower(e))` ≈ `O(m·α)` for degeneracy `α`, instead of the
/// previous `O(Σ_e (d_u + d_v + Σ_{w ∈ tri(e)} d_w))` with a `Vec` allocated
/// per edge.
pub fn count_motifs_with(graph: &Graph, ws: &mut MotifWorkspace) -> MotifCounts {
    let nv = graph.n_vertices();
    let n = nv as u64;
    let m = graph.n_edges() as u64;

    let choose2 = |x: u64| if x >= 2 { x * (x - 1) / 2 } else { 0 };
    let choose3 = |x: u64| if x >= 3 { x * (x - 1) * (x - 2) / 6 } else { 0 };
    let choose4 = |x: u64| {
        if x >= 4 {
            x * (x - 1) * (x - 2) * (x - 3) / 24
        } else {
            0
        }
    };

    ws.prepare_markers(nv, graph.n_edges());
    ws.prepare_order(graph);

    // --- edge-centric exact counts -------------------------------------
    // triangles, 4-cliques, Σ C(t_e, 2) and the "non-induced paw" sum
    let mut triangle_x3 = 0u64; // 3 * #triangles (each edge contributes t_e)
    let mut clique4 = 0u64; // exact K4s (counted once each)
    let mut sum_ct2 = 0u64; // Σ_e C(t_e, 2) = diamonds + 6 * K4
    let mut nonind_paw = 0u64; // Σ_triangles (d_a + d_b + d_c - 6)
    let mut nonind_p4_pairs = 0u64; // Σ_e (d_u - 1)(d_v - 1)
    for u in 0..nv {
        let ru = ws.rank[u];
        let du = graph.degree(u) as u64;
        // mark N(u) lazily: only vertices that own at least one edge (their
        // rank exceeds a neighbor's) pay the marking cost, and they pay it
        // once for all of their edges
        let mut marked = false;
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if ws.rank[v] >= ru {
                continue; // edge handled from its higher-ranked endpoint
            }
            if !marked {
                ws.epoch += 1;
                for &x in graph.neighbors(u) {
                    ws.marker[x as usize] = ws.epoch;
                }
                marked = true;
            }
            let dv = graph.degree(v) as u64;
            nonind_p4_pairs += (du - 1) * (dv - 1);
            // common neighborhood of the edge (u, v): scan the lower-degree
            // endpoint's list against the marked one
            let mut t_e = 0u64;
            ws.ordered.clear();
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if ws.marker[w] == ws.epoch {
                    t_e += 1;
                    // every triangle is seen by its 3 edges once each, so the
                    // third-vertex contributions sum to Σ (d - 2) per triangle
                    nonind_paw += graph.degree(w) as u64 - 2;
                    if ws.rank[w] > ru {
                        ws.ordered.push(w as u32);
                    }
                }
            }
            triangle_x3 += t_e;
            sum_ct2 += choose2(t_e);
            // K4 {a,b,c,d} with rank a < b < c < d is found exactly once:
            // from edge (a, b), as the adjacent pair {c, d} of its
            // rank-above-both common neighborhood. Adjacency inside that set
            // is tested by scanning rank-increasing out-neighbors only, so
            // each pair is probed from its lower-ranked member once.
            if ws.ordered.len() >= 2 {
                ws.epoch2 += 1;
                for &w in &ws.ordered {
                    ws.marker2[w as usize] = ws.epoch2;
                }
                for &w in &ws.ordered {
                    for &x in ws.out_neighbors(w as usize) {
                        if ws.marker2[x as usize] == ws.epoch2 {
                            clique4 += 1;
                        }
                    }
                }
            }
        }
    }
    let triangle = triangle_x3 / 3;
    // Σ_e C(t_e, 2) classifies each common-neighbor pair {w, x} of an edge:
    // adjacent pairs close a K4 (6 such pairs per K4, one per edge),
    // non-adjacent pairs witness a diamond via its chord (1 per diamond).
    let diamond = sum_ct2 - 6 * clique4;

    // --- rank-filtered wedge enumeration for 4-cycles --------------------
    // Every non-induced 4-cycle is counted exactly once, at its
    // highest-ranked vertex u: both wedge midpoints and the opposite corner
    // rank below u, so the codegree accumulation filtered to rank < rank(u)
    // sees C(codeg, 2) = 1 there and 0 at the other three corners
    // (Chiba–Nishizeki processing order expressed as a rank filter).
    let mut nonind_c4 = 0u64;
    {
        ws.codeg.clear();
        ws.codeg.resize(nv, 0);
        ws.touched.clear();
        for u in 0..nv {
            let ru = ws.rank[u];
            for &w in graph.neighbors(u) {
                let w = w as usize;
                if ws.rank[w] >= ru {
                    continue;
                }
                for &v in graph.neighbors(w) {
                    let v = v as usize;
                    if v != u && ws.rank[v] < ru {
                        if ws.codeg[v] == 0 {
                            ws.touched.push(v as u32);
                        }
                        ws.codeg[v] += 1;
                    }
                }
            }
            for &v in &ws.touched {
                nonind_c4 += choose2(ws.codeg[v as usize] as u64);
                ws.codeg[v as usize] = 0;
            }
            ws.touched.clear();
        }
    }

    // --- induced connected counts via identities ------------------------
    // non-induced 4-paths: subtract the w == x degenerate case (3 per triangle)
    let nonind_p4 = nonind_p4_pairs - 3 * triangle;
    // induced 4-cycle: every diamond contains exactly one non-induced C4 and
    // every K4 contains three.
    let cycle4 = nonind_c4 - diamond - 3 * clique4;
    // induced paw (tailed triangle)
    let tailed_triangle4 = nonind_paw - 12 * clique4 - 4 * diamond;
    // induced claw (4-star)
    let nonind_claw: u64 = graph.degrees().map(|d| choose3(d as u64)).sum();
    let star4 = nonind_claw - 4 * clique4 - 2 * diamond - tailed_triangle4;
    // induced 4-path
    let path4 = nonind_p4 - 12 * clique4 - 6 * diamond - 4 * cycle4 - 2 * tailed_triangle4;

    // --- size-3 counts ---------------------------------------------------
    let wedge_nonind: u64 = graph.degrees().map(|d| choose2(d as u64)).sum();
    let path3 = wedge_nonind - 3 * triangle;
    let one_edge3 = m * (n.saturating_sub(2)) - 2 * path3 - 3 * triangle;
    let independent3 = choose3(n) - triangle - path3 - one_edge3;

    // --- size-4 disconnected counts --------------------------------------
    let node_triangle4 =
        triangle * n.saturating_sub(3) - 4 * clique4 - 2 * diamond - tailed_triangle4;
    let node_star4 = path3 * n.saturating_sub(3)
        - 2 * diamond
        - 2 * tailed_triangle4
        - 4 * cycle4
        - 3 * star4
        - 2 * path4;
    let disjoint_edge_pairs = choose2(m) - wedge_nonind;
    let two_edges4 =
        disjoint_edge_pairs - 3 * clique4 - 2 * diamond - tailed_triangle4 - 2 * cycle4 - path4;
    let edge_incidences_in_quads = m * choose2(n.saturating_sub(2));
    let one_edge4 = edge_incidences_in_quads
        - 6 * clique4
        - 5 * diamond
        - 4 * tailed_triangle4
        - 4 * cycle4
        - 3 * star4
        - 3 * path4
        - 3 * node_triangle4
        - 2 * node_star4
        - 2 * two_edges4;
    let independent4 = choose4(n)
        - clique4
        - diamond
        - tailed_triangle4
        - cycle4
        - star4
        - path4
        - node_triangle4
        - node_star4
        - two_edges4
        - one_edge4;

    MotifCounts {
        edge2: m,
        independent2: choose2(n) - m,
        triangle3: triangle,
        path3,
        one_edge3,
        independent3,
        clique4,
        chordal_cycle4: diamond,
        tailed_triangle4,
        cycle4,
        star4,
        path4,
        node_triangle4,
        node_star4,
        two_edges4,
        one_edge4,
        independent4,
    }
}

/// Brute-force induced-subgraph enumeration (exponential; tests only).
pub fn count_motifs_bruteforce(graph: &Graph) -> MotifCounts {
    let n = graph.n_vertices();
    let mut counts = MotifCounts::default();
    // size 2
    for u in 0..n {
        for v in (u + 1)..n {
            if graph.has_edge(u, v) {
                counts.edge2 += 1;
            } else {
                counts.independent2 += 1;
            }
        }
    }
    // size 3
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let e = graph.has_edge(a, b) as u32
                    + graph.has_edge(a, c) as u32
                    + graph.has_edge(b, c) as u32;
                match e {
                    3 => counts.triangle3 += 1,
                    2 => counts.path3 += 1,
                    1 => counts.one_edge3 += 1,
                    _ => counts.independent3 += 1,
                }
            }
        }
    }
    // size 4
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                for d in (c + 1)..n {
                    let verts = [a, b, c, d];
                    let mut deg = [0usize; 4];
                    let mut edges = 0usize;
                    for i in 0..4 {
                        for j in (i + 1)..4 {
                            if graph.has_edge(verts[i], verts[j]) {
                                edges += 1;
                                deg[i] += 1;
                                deg[j] += 1;
                            }
                        }
                    }
                    let mut degs = deg;
                    degs.sort_unstable();
                    // Edge count alone separates everything except the two
                    // 4-edge shapes and the three 3-edge / two 2-edge shapes,
                    // where the sorted degree signature is decisive: with 4
                    // edges on 4 vertices only the cycle (2,2,2,2) and the
                    // tailed triangle (1,2,2,3) exist — a signature like
                    // (1,1,3,3) would need two vertices adjacent to all
                    // others, which already forces 5 edges.
                    let motif = match (edges, degs) {
                        (6, _) => Motif::Clique4,
                        (5, _) => Motif::ChordalCycle4,
                        (4, [2, 2, 2, 2]) => Motif::Cycle4,
                        (4, _) => Motif::TailedTriangle4,
                        (3, [1, 1, 1, 3]) => Motif::Star4,
                        (3, [1, 1, 2, 2]) => Motif::Path4,
                        (3, [0, 2, 2, 2]) => Motif::NodeTriangle4,
                        (2, [0, 1, 1, 2]) => Motif::NodeStar4,
                        (2, [1, 1, 1, 1]) => Motif::TwoEdges4,
                        (1, _) => Motif::OneEdge4,
                        (0, _) => Motif::Independent4,
                        _ => unreachable!("impossible 4-vertex configuration"),
                    };
                    counts.set(motif, counts.get(motif) + 1);
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{horizontal_visibility_graph, visibility_graph};

    fn pseudo_series(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64) / (u32::MAX as f64)
            })
            .collect()
    }

    #[test]
    fn motif_metadata_is_consistent() {
        assert_eq!(Motif::ALL.len(), 17);
        let connected: Vec<_> = Motif::ALL.iter().filter(|m| m.is_connected()).collect();
        assert_eq!(connected.len(), 9); // 1 + 2 + 6
        for m in Motif::ALL {
            assert!(m.size() >= 2 && m.size() <= 4);
            assert!(m.n_edges() <= m.size() * (m.size() - 1) / 2);
            assert!(m.paper_id().starts_with('M'));
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn clique_counts() {
        // K5: C(5,3)=10 triangles, C(5,4)=5 cliques of size 4, nothing else connected
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges);
        let c = count_motifs(&g);
        assert_eq!(c.edge2, 10);
        assert_eq!(c.independent2, 0);
        assert_eq!(c.triangle3, 10);
        assert_eq!(c.path3, 0);
        assert_eq!(c.clique4, 5);
        assert_eq!(c.chordal_cycle4, 0);
        assert_eq!(c.cycle4, 0);
        assert_eq!(c.total_size4(), 5);
    }

    #[test]
    fn cycle_graph_counts() {
        // C6: no triangles; 4-subsets are paths/2-edges/cycles...
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let fast = count_motifs(&g);
        let brute = count_motifs_bruteforce(&g);
        assert_eq!(fast, brute);
        assert_eq!(fast.triangle3, 0);
        assert_eq!(fast.cycle4, 0); // C6 contains no induced C4
        assert_eq!(fast.path4, 6);
    }

    #[test]
    fn star_graph_counts() {
        // star K1,5: wedges = C(5,2) = 10, claws = C(5,3) = 10
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = count_motifs(&g);
        assert_eq!(c.triangle3, 0);
        assert_eq!(c.path3, 10);
        assert_eq!(c.star4, 10);
        assert_eq!(
            c.clique4 + c.chordal_cycle4 + c.tailed_triangle4 + c.cycle4 + c.path4,
            0
        );
        assert_eq!(c, count_motifs_bruteforce(&g));
    }

    #[test]
    fn totals_cover_all_subsets() {
        let v = pseudo_series(3, 60);
        for g in [visibility_graph(&v), horizontal_visibility_graph(&v)] {
            let c = count_motifs(&g);
            let n = g.n_vertices() as u64;
            assert_eq!(c.edge2 + c.independent2, n * (n - 1) / 2);
            assert_eq!(c.total_size3(), n * (n - 1) * (n - 2) / 6);
            assert_eq!(c.total_size4(), n * (n - 1) * (n - 2) * (n - 3) / 24);
        }
    }

    #[test]
    fn fast_matches_bruteforce_on_visibility_graphs() {
        for seed in [1u64, 7, 13] {
            let v = pseudo_series(seed, 40);
            let vg = visibility_graph(&v);
            assert_eq!(
                count_motifs(&vg),
                count_motifs_bruteforce(&vg),
                "VG seed {seed}"
            );
            let hvg = horizontal_visibility_graph(&v);
            assert_eq!(
                count_motifs(&hvg),
                count_motifs_bruteforce(&hvg),
                "HVG seed {seed}"
            );
        }
    }

    #[test]
    fn fast_matches_bruteforce_on_structured_graphs() {
        // graphs with many overlapping cliques / cycles stress the identities
        let diamond_chain = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
        );
        assert_eq!(
            count_motifs(&diamond_chain),
            count_motifs_bruteforce(&diamond_chain)
        );
        // two disjoint triangles
        let two_triangles = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let c = count_motifs(&two_triangles);
        assert_eq!(c, count_motifs_bruteforce(&two_triangles));
        assert_eq!(c.node_triangle4, 6); // each triangle × 3 external vertices
        assert_eq!(c.two_edges4, 9);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let c = count_motifs(&Graph::new(0));
        assert_eq!(c, MotifCounts::default());
        let c = count_motifs(&Graph::new(3));
        assert_eq!(c.independent3, 1);
        assert_eq!(c.edge2, 0);
        let c = count_motifs(&Graph::from_edges(2, [(0, 1)]));
        assert_eq!(c.edge2, 1);
        assert_eq!(c.total_size4(), 0);
    }

    fn star(n_leaves: usize) -> Graph {
        Graph::from_edges(n_leaves + 1, (1..=n_leaves).map(|leaf| (0, leaf)))
    }

    fn clique(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, edges)
    }

    fn long_path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn fast_matches_bruteforce_on_adversarial_graphs() {
        // extreme degree skew (star), maximal triangle density (clique) and
        // maximal diameter (path) stress the marker/rank machinery from
        // opposite directions
        for g in [star(12), clique(9), long_path(16)] {
            assert_eq!(count_motifs(&g), count_motifs_bruteforce(&g));
        }
        // two stars joined at their hubs: hubs rank above all leaves
        let mut edges: Vec<(usize, usize)> = (1..8).map(|leaf| (0, leaf)).collect();
        edges.extend((9..16).map(|leaf| (8, leaf)));
        edges.push((0, 8));
        let barbell = Graph::from_edges(16, edges);
        assert_eq!(count_motifs(&barbell), count_motifs_bruteforce(&barbell));
    }

    #[test]
    fn marker_path_matches_sorted_merge_on_adversarial_graphs() {
        // the per-edge marker-array common neighborhood must agree with the
        // sorted-merge reference everywhere, including across graph switches
        // on one reused workspace
        let mut ws = MotifWorkspace::new();
        for g in [star(10), clique(8), long_path(12)] {
            for (u, v) in g.edges() {
                assert_eq!(
                    ws.common_neighbors(&g, u, v),
                    g.common_neighbors(u, v).as_slice(),
                    "edge ({u}, {v})"
                );
            }
            // non-adjacent pairs exercise empty and large intersections too
            for u in 0..g.n_vertices() {
                for v in (u + 1)..g.n_vertices() {
                    assert_eq!(
                        ws.common_neighbors(&g, u, v),
                        g.common_neighbors(u, v).as_slice(),
                        "pair ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        // one workspace across many graphs of varying size == a fresh
        // workspace per graph, bit for bit
        let graphs: Vec<Graph> = vec![
            star(9),
            visibility_graph(&pseudo_series(3, 50)),
            clique(7),
            horizontal_visibility_graph(&pseudo_series(4, 30)),
            long_path(25),
            Graph::new(0),
            visibility_graph(&pseudo_series(5, 64)),
        ];
        let mut reused = MotifWorkspace::new();
        for g in &graphs {
            let with_reuse = count_motifs_with(g, &mut reused);
            let with_fresh = count_motifs_with(g, &mut MotifWorkspace::new());
            assert_eq!(with_reuse, with_fresh);
            assert_eq!(with_reuse, count_motifs_bruteforce(g));
        }
    }

    #[test]
    fn paper_id_roundtrip_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in Motif::ALL {
            assert!(seen.insert(m.paper_id()));
        }
    }
}
