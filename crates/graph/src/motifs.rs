//! Exact counting of all graph motifs (graphlets) of size 2, 3 and 4.
//!
//! The paper's dominant features are probability distributions over the 16
//! induced subgraph types of Table 1 — connected and disconnected — counted
//! over all vertex subsets of the corresponding size. PGD (Ahmed et al.,
//! ICDM 2015) shows these can be obtained without enumerating subsets: count
//! triangles, 4-cliques and diamonds directly from edge neighborhoods, count
//! the remaining connected types through combinatorial identities on degrees
//! and wedge/path counts, and recover all disconnected types (and therefore
//! the complete distribution) in closed form. This module follows that
//! strategy; a brute-force enumerator over all subsets is kept for tests.

use crate::graph::{sorted_intersection, sorted_intersection_count, Graph};
use serde::{Deserialize, Serialize};

/// The sixteen motif types of Table 1 (size 2, 3 and 4; connected and
/// disconnected), identified by the paper's `M{size}{index}` naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Motif {
    /// `M2_1` — a single edge.
    Edge2,
    /// `M2_2` — two independent (non-adjacent) vertices.
    Independent2,
    /// `M3_1` — triangle.
    Triangle3,
    /// `M3_2` — path on three vertices (wedge).
    Path3,
    /// `M3_3` — one edge plus an isolated vertex.
    OneEdge3,
    /// `M3_4` — three independent vertices.
    Independent3,
    /// `M4_1` — 4-clique.
    Clique4,
    /// `M4_2` — chordal cycle (diamond).
    ChordalCycle4,
    /// `M4_3` — tailed triangle (paw).
    TailedTriangle4,
    /// `M4_4` — 4-cycle.
    Cycle4,
    /// `M4_5` — 4-star (claw).
    Star4,
    /// `M4_6` — path on four vertices.
    Path4,
    /// `M4_7` — triangle plus an isolated vertex.
    NodeTriangle4,
    /// `M4_8` — wedge (2-star) plus an isolated vertex.
    NodeStar4,
    /// `M4_9` — two independent edges.
    TwoEdges4,
    /// `M4_10` — one edge plus two isolated vertices.
    OneEdge4,
    /// `M4_11` — four independent vertices.
    Independent4,
}

impl Motif {
    /// All motifs in the canonical Table 1 order.
    pub const ALL: [Motif; 17] = [
        Motif::Edge2,
        Motif::Independent2,
        Motif::Triangle3,
        Motif::Path3,
        Motif::OneEdge3,
        Motif::Independent3,
        Motif::Clique4,
        Motif::ChordalCycle4,
        Motif::TailedTriangle4,
        Motif::Cycle4,
        Motif::Star4,
        Motif::Path4,
        Motif::NodeTriangle4,
        Motif::NodeStar4,
        Motif::TwoEdges4,
        Motif::OneEdge4,
        Motif::Independent4,
    ];

    /// Number of vertices in the motif.
    pub fn size(self) -> usize {
        match self {
            Motif::Edge2 | Motif::Independent2 => 2,
            Motif::Triangle3 | Motif::Path3 | Motif::OneEdge3 | Motif::Independent3 => 3,
            _ => 4,
        }
    }

    /// Whether the motif is connected.
    pub fn is_connected(self) -> bool {
        matches!(
            self,
            Motif::Edge2
                | Motif::Triangle3
                | Motif::Path3
                | Motif::Clique4
                | Motif::ChordalCycle4
                | Motif::TailedTriangle4
                | Motif::Cycle4
                | Motif::Star4
                | Motif::Path4
        )
    }

    /// Number of edges in the motif.
    pub fn n_edges(self) -> usize {
        match self {
            Motif::Independent2 | Motif::Independent3 | Motif::Independent4 => 0,
            Motif::Edge2 | Motif::OneEdge3 | Motif::OneEdge4 => 1,
            Motif::Path3 | Motif::NodeStar4 | Motif::TwoEdges4 => 2,
            Motif::Triangle3 | Motif::Star4 | Motif::Path4 | Motif::NodeTriangle4 => 3,
            Motif::Cycle4 | Motif::TailedTriangle4 => 4,
            Motif::ChordalCycle4 => 5,
            Motif::Clique4 => 6,
        }
    }

    /// The paper's `M{size}{index}` identifier (e.g. `"M41"`).
    pub fn paper_id(self) -> &'static str {
        match self {
            Motif::Edge2 => "M21",
            Motif::Independent2 => "M22",
            Motif::Triangle3 => "M31",
            Motif::Path3 => "M32",
            Motif::OneEdge3 => "M33",
            Motif::Independent3 => "M34",
            Motif::Clique4 => "M41",
            Motif::ChordalCycle4 => "M42",
            Motif::TailedTriangle4 => "M43",
            Motif::Cycle4 => "M44",
            Motif::Star4 => "M45",
            Motif::Path4 => "M46",
            Motif::NodeTriangle4 => "M47",
            Motif::NodeStar4 => "M48",
            Motif::TwoEdges4 => "M49",
            Motif::OneEdge4 => "M410",
            Motif::Independent4 => "M411",
        }
    }

    /// Human-readable name following Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Motif::Edge2 => "2-edge",
            Motif::Independent2 => "2-node-independent",
            Motif::Triangle3 => "3-triangle",
            Motif::Path3 => "3-path",
            Motif::OneEdge3 => "3-node-1-edge",
            Motif::Independent3 => "3-node-independent",
            Motif::Clique4 => "4-clique",
            Motif::ChordalCycle4 => "4-chordal-cycle",
            Motif::TailedTriangle4 => "4-tailed-triangle",
            Motif::Cycle4 => "4-cycle",
            Motif::Star4 => "4-star",
            Motif::Path4 => "4-path",
            Motif::NodeTriangle4 => "4-node-triangle",
            Motif::NodeStar4 => "4-node-star",
            Motif::TwoEdges4 => "4-node-2-edges",
            Motif::OneEdge4 => "4-node-1-edge",
            Motif::Independent4 => "4-node-independent",
        }
    }
}

/// Exact induced-subgraph counts for all motifs of size 2, 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MotifCounts {
    /// `M2_1` single edges.
    pub edge2: u64,
    /// `M2_2` non-edges.
    pub independent2: u64,
    /// `M3_1` triangles.
    pub triangle3: u64,
    /// `M3_2` induced wedges.
    pub path3: u64,
    /// `M3_3` one edge + isolated vertex.
    pub one_edge3: u64,
    /// `M3_4` empty triples.
    pub independent3: u64,
    /// `M4_1` 4-cliques.
    pub clique4: u64,
    /// `M4_2` diamonds.
    pub chordal_cycle4: u64,
    /// `M4_3` tailed triangles.
    pub tailed_triangle4: u64,
    /// `M4_4` induced 4-cycles.
    pub cycle4: u64,
    /// `M4_5` induced claws.
    pub star4: u64,
    /// `M4_6` induced 4-paths.
    pub path4: u64,
    /// `M4_7` triangle + isolated vertex.
    pub node_triangle4: u64,
    /// `M4_8` wedge + isolated vertex.
    pub node_star4: u64,
    /// `M4_9` two independent edges.
    pub two_edges4: u64,
    /// `M4_10` one edge + two isolated vertices.
    pub one_edge4: u64,
    /// `M4_11` empty quadruple.
    pub independent4: u64,
}

impl MotifCounts {
    /// The count for a specific motif.
    pub fn get(&self, motif: Motif) -> u64 {
        match motif {
            Motif::Edge2 => self.edge2,
            Motif::Independent2 => self.independent2,
            Motif::Triangle3 => self.triangle3,
            Motif::Path3 => self.path3,
            Motif::OneEdge3 => self.one_edge3,
            Motif::Independent3 => self.independent3,
            Motif::Clique4 => self.clique4,
            Motif::ChordalCycle4 => self.chordal_cycle4,
            Motif::TailedTriangle4 => self.tailed_triangle4,
            Motif::Cycle4 => self.cycle4,
            Motif::Star4 => self.star4,
            Motif::Path4 => self.path4,
            Motif::NodeTriangle4 => self.node_triangle4,
            Motif::NodeStar4 => self.node_star4,
            Motif::TwoEdges4 => self.two_edges4,
            Motif::OneEdge4 => self.one_edge4,
            Motif::Independent4 => self.independent4,
        }
    }

    /// Sets the count for a specific motif (used by the brute-force counter).
    pub fn set(&mut self, motif: Motif, value: u64) {
        match motif {
            Motif::Edge2 => self.edge2 = value,
            Motif::Independent2 => self.independent2 = value,
            Motif::Triangle3 => self.triangle3 = value,
            Motif::Path3 => self.path3 = value,
            Motif::OneEdge3 => self.one_edge3 = value,
            Motif::Independent3 => self.independent3 = value,
            Motif::Clique4 => self.clique4 = value,
            Motif::ChordalCycle4 => self.chordal_cycle4 = value,
            Motif::TailedTriangle4 => self.tailed_triangle4 = value,
            Motif::Cycle4 => self.cycle4 = value,
            Motif::Star4 => self.star4 = value,
            Motif::Path4 => self.path4 = value,
            Motif::NodeTriangle4 => self.node_triangle4 = value,
            Motif::NodeStar4 => self.node_star4 = value,
            Motif::TwoEdges4 => self.two_edges4 = value,
            Motif::OneEdge4 => self.one_edge4 = value,
            Motif::Independent4 => self.independent4 = value,
        }
    }

    /// Total number of size-3 subsets accounted for.
    pub fn total_size3(&self) -> u64 {
        self.triangle3 + self.path3 + self.one_edge3 + self.independent3
    }

    /// Total number of size-4 subsets accounted for.
    pub fn total_size4(&self) -> u64 {
        self.clique4
            + self.chordal_cycle4
            + self.tailed_triangle4
            + self.cycle4
            + self.star4
            + self.path4
            + self.node_triangle4
            + self.node_star4
            + self.two_edges4
            + self.one_edge4
            + self.independent4
    }
}

/// Counts all size-2, size-3 and size-4 induced motifs of `graph`.
///
/// Complexity is dominated by per-edge common-neighborhood processing:
/// `O(Σ_e (d_u + d_v + Σ_{w ∈ tri(e)} d_w))`, plus wedge enumeration for
/// 4-cycle counting — well within budget for visibility graphs of series up
/// to a few thousand points.
pub fn count_motifs(graph: &Graph) -> MotifCounts {
    let n = graph.n_vertices() as u64;
    let m = graph.n_edges() as u64;
    let degrees = graph.degrees();

    let choose2 = |x: u64| if x >= 2 { x * (x - 1) / 2 } else { 0 };
    let choose3 = |x: u64| if x >= 3 { x * (x - 1) * (x - 2) / 6 } else { 0 };
    let choose4 = |x: u64| {
        if x >= 4 {
            x * (x - 1) * (x - 2) * (x - 3) / 24
        } else {
            0
        }
    };

    // --- edge-centric exact counts -------------------------------------
    // triangles, diamonds, 4-cliques and the "non-induced paw" sum
    let mut triangle_x3 = 0u64; // 3 * #triangles
    let mut clique4_x6 = 0u64; // 6 * #K4
    let mut diamond = 0u64; // exact diamonds (counted once, via the chord)
    let mut nonind_paw = 0u64; // Σ_triangles (d_a + d_b + d_c - 6)
    let mut nonind_p4_pairs = 0u64; // Σ_e (d_u - 1)(d_v - 1)
    for (u, v) in graph.edges() {
        let common = sorted_intersection(graph.neighbors(u), graph.neighbors(v));
        let t_e = common.len() as u64;
        triangle_x3 += t_e;
        // For every triangle (u, v, w) discovered via this edge, accumulate
        // the paw attachment count once per triangle: handled by dividing by
        // 3 at the end is wrong because each edge sees the triangle once;
        // each triangle is seen by exactly 3 of its edges, so summing
        // (d_w - 2) over common neighbours w for every edge counts each
        // triangle's Σ(d - 2) exactly once per incident edge pairing:
        //   edge (u,v) contributes d_w - 2 for the third vertex w.
        // Over the 3 edges of the triangle this sums (d_u - 2)+(d_v - 2)+(d_w - 2),
        // which is exactly the non-induced paw attachment count per triangle.
        for &w in &common {
            nonind_paw += degrees[w as usize] as u64 - 2;
        }
        // edges inside the common neighborhood: every such edge (w, x) forms
        // a K4 {u, v, w, x}; counted once per edge of the K4 → 6 times total.
        let mut edges_in_common = 0u64;
        for &w in &common {
            edges_in_common +=
                sorted_intersection_count(&common, graph.neighbors(w as usize)) as u64;
        }
        edges_in_common /= 2;
        clique4_x6 += edges_in_common;
        // diamonds with chord (u, v): pairs of common neighbours that are NOT
        // adjacent.
        diamond += choose2(t_e) - edges_in_common;
        nonind_p4_pairs += (degrees[u] as u64 - 1) * (degrees[v] as u64 - 1);
    }
    let triangle = triangle_x3 / 3;
    let clique4 = clique4_x6 / 6;

    // --- wedge enumeration for 4-cycles ---------------------------------
    // Non-induced 4-cycles = ½ Σ_{unordered pairs {u,v}} C(codeg(u, v), 2).
    // Enumerate wedges centred at every vertex w and accumulate co-degrees.
    // To stay memory-friendly we process one "left endpoint" u at a time:
    // codeg(u, v) = |N(u) ∩ N(v)| for v > u, accumulated via neighbours of
    // neighbours of u.
    let mut nc4_x2 = 0u64;
    {
        let nv = graph.n_vertices();
        let mut codeg = vec![0u32; nv];
        let mut touched: Vec<usize> = Vec::new();
        for u in 0..nv {
            for &w in graph.neighbors(u) {
                for &v in graph.neighbors(w as usize) {
                    let v = v as usize;
                    if v > u {
                        if codeg[v] == 0 {
                            touched.push(v);
                        }
                        codeg[v] += 1;
                    }
                }
            }
            for &v in &touched {
                nc4_x2 += choose2(codeg[v] as u64);
                codeg[v] = 0;
            }
            touched.clear();
        }
    }
    // Each 4-cycle has two opposite pairs; with pairs restricted to u < v
    // both opposite pairs are still seen exactly once each, so nc4_x2 counts
    // every non-induced 4-cycle exactly twice.
    let nonind_c4 = nc4_x2 / 2;

    // --- induced connected counts via identities ------------------------
    // non-induced 4-paths: subtract the w == x degenerate case (3 per triangle)
    let nonind_p4 = nonind_p4_pairs - 3 * triangle;
    // induced 4-cycle: every diamond contains exactly one non-induced C4 and
    // every K4 contains three.
    let cycle4 = nonind_c4 - diamond - 3 * clique4;
    // induced paw (tailed triangle)
    let tailed_triangle4 = nonind_paw - 12 * clique4 - 4 * diamond;
    // induced claw (4-star)
    let nonind_claw: u64 = degrees.iter().map(|&d| choose3(d as u64)).sum();
    let star4 = nonind_claw - 4 * clique4 - 2 * diamond - tailed_triangle4;
    // induced 4-path
    let path4 = nonind_p4 - 12 * clique4 - 6 * diamond - 4 * cycle4 - 2 * tailed_triangle4;

    // --- size-3 counts ---------------------------------------------------
    let wedge_nonind: u64 = degrees.iter().map(|&d| choose2(d as u64)).sum();
    let path3 = wedge_nonind - 3 * triangle;
    let one_edge3 = m * (n.saturating_sub(2)) - 2 * path3 - 3 * triangle;
    let independent3 = choose3(n) - triangle - path3 - one_edge3;

    // --- size-4 disconnected counts --------------------------------------
    let node_triangle4 =
        triangle * n.saturating_sub(3) - 4 * clique4 - 2 * diamond - tailed_triangle4;
    let node_star4 = path3 * n.saturating_sub(3)
        - 2 * diamond
        - 2 * tailed_triangle4
        - 4 * cycle4
        - 3 * star4
        - 2 * path4;
    let disjoint_edge_pairs = choose2(m) - wedge_nonind;
    let two_edges4 =
        disjoint_edge_pairs - 3 * clique4 - 2 * diamond - tailed_triangle4 - 2 * cycle4 - path4;
    let edge_incidences_in_quads = m * choose2(n.saturating_sub(2));
    let one_edge4 = edge_incidences_in_quads
        - 6 * clique4
        - 5 * diamond
        - 4 * tailed_triangle4
        - 4 * cycle4
        - 3 * star4
        - 3 * path4
        - 3 * node_triangle4
        - 2 * node_star4
        - 2 * two_edges4;
    let independent4 = choose4(n)
        - clique4
        - diamond
        - tailed_triangle4
        - cycle4
        - star4
        - path4
        - node_triangle4
        - node_star4
        - two_edges4
        - one_edge4;

    MotifCounts {
        edge2: m,
        independent2: choose2(n) - m,
        triangle3: triangle,
        path3,
        one_edge3,
        independent3,
        clique4,
        chordal_cycle4: diamond,
        tailed_triangle4,
        cycle4,
        star4,
        path4,
        node_triangle4,
        node_star4,
        two_edges4,
        one_edge4,
        independent4,
    }
}

/// Brute-force induced-subgraph enumeration (exponential; tests only).
pub fn count_motifs_bruteforce(graph: &Graph) -> MotifCounts {
    let n = graph.n_vertices();
    let mut counts = MotifCounts::default();
    // size 2
    for u in 0..n {
        for v in (u + 1)..n {
            if graph.has_edge(u, v) {
                counts.edge2 += 1;
            } else {
                counts.independent2 += 1;
            }
        }
    }
    // size 3
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let e = graph.has_edge(a, b) as u32
                    + graph.has_edge(a, c) as u32
                    + graph.has_edge(b, c) as u32;
                match e {
                    3 => counts.triangle3 += 1,
                    2 => counts.path3 += 1,
                    1 => counts.one_edge3 += 1,
                    _ => counts.independent3 += 1,
                }
            }
        }
    }
    // size 4
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                for d in (c + 1)..n {
                    let verts = [a, b, c, d];
                    let mut deg = [0usize; 4];
                    let mut edges = 0usize;
                    for i in 0..4 {
                        for j in (i + 1)..4 {
                            if graph.has_edge(verts[i], verts[j]) {
                                edges += 1;
                                deg[i] += 1;
                                deg[j] += 1;
                            }
                        }
                    }
                    let mut degs = deg;
                    degs.sort_unstable();
                    let motif = match (edges, degs) {
                        (6, _) => Motif::Clique4,
                        (5, _) => Motif::ChordalCycle4,
                        (4, [1, 1, 3, 3]) => Motif::TailedTriangle4,
                        (4, [2, 2, 2, 2]) => Motif::Cycle4,
                        (4, _) => Motif::TailedTriangle4,
                        (3, [1, 1, 1, 3]) => Motif::Star4,
                        (3, [1, 1, 2, 2]) => Motif::Path4,
                        (3, [0, 2, 2, 2]) => Motif::NodeTriangle4,
                        (2, [0, 1, 1, 2]) => Motif::NodeStar4,
                        (2, [1, 1, 1, 1]) => Motif::TwoEdges4,
                        (1, _) => Motif::OneEdge4,
                        (0, _) => Motif::Independent4,
                        _ => unreachable!("impossible 4-vertex configuration"),
                    };
                    counts.set(motif, counts.get(motif) + 1);
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{horizontal_visibility_graph, visibility_graph};

    fn pseudo_series(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64) / (u32::MAX as f64)
            })
            .collect()
    }

    #[test]
    fn motif_metadata_is_consistent() {
        assert_eq!(Motif::ALL.len(), 17);
        let connected: Vec<_> = Motif::ALL.iter().filter(|m| m.is_connected()).collect();
        assert_eq!(connected.len(), 9); // 1 + 2 + 6
        for m in Motif::ALL {
            assert!(m.size() >= 2 && m.size() <= 4);
            assert!(m.n_edges() <= m.size() * (m.size() - 1) / 2);
            assert!(m.paper_id().starts_with('M'));
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn clique_counts() {
        // K5: C(5,3)=10 triangles, C(5,4)=5 cliques of size 4, nothing else connected
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges);
        let c = count_motifs(&g);
        assert_eq!(c.edge2, 10);
        assert_eq!(c.independent2, 0);
        assert_eq!(c.triangle3, 10);
        assert_eq!(c.path3, 0);
        assert_eq!(c.clique4, 5);
        assert_eq!(c.chordal_cycle4, 0);
        assert_eq!(c.cycle4, 0);
        assert_eq!(c.total_size4(), 5);
    }

    #[test]
    fn cycle_graph_counts() {
        // C6: no triangles; 4-subsets are paths/2-edges/cycles...
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let fast = count_motifs(&g);
        let brute = count_motifs_bruteforce(&g);
        assert_eq!(fast, brute);
        assert_eq!(fast.triangle3, 0);
        assert_eq!(fast.cycle4, 0); // C6 contains no induced C4
        assert_eq!(fast.path4, 6);
    }

    #[test]
    fn star_graph_counts() {
        // star K1,5: wedges = C(5,2) = 10, claws = C(5,3) = 10
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = count_motifs(&g);
        assert_eq!(c.triangle3, 0);
        assert_eq!(c.path3, 10);
        assert_eq!(c.star4, 10);
        assert_eq!(
            c.clique4 + c.chordal_cycle4 + c.tailed_triangle4 + c.cycle4 + c.path4,
            0
        );
        assert_eq!(c, count_motifs_bruteforce(&g));
    }

    #[test]
    fn totals_cover_all_subsets() {
        let v = pseudo_series(3, 60);
        for g in [visibility_graph(&v), horizontal_visibility_graph(&v)] {
            let c = count_motifs(&g);
            let n = g.n_vertices() as u64;
            assert_eq!(c.edge2 + c.independent2, n * (n - 1) / 2);
            assert_eq!(c.total_size3(), n * (n - 1) * (n - 2) / 6);
            assert_eq!(c.total_size4(), n * (n - 1) * (n - 2) * (n - 3) / 24);
        }
    }

    #[test]
    fn fast_matches_bruteforce_on_visibility_graphs() {
        for seed in [1u64, 7, 13] {
            let v = pseudo_series(seed, 40);
            let vg = visibility_graph(&v);
            assert_eq!(
                count_motifs(&vg),
                count_motifs_bruteforce(&vg),
                "VG seed {seed}"
            );
            let hvg = horizontal_visibility_graph(&v);
            assert_eq!(
                count_motifs(&hvg),
                count_motifs_bruteforce(&hvg),
                "HVG seed {seed}"
            );
        }
    }

    #[test]
    fn fast_matches_bruteforce_on_structured_graphs() {
        // graphs with many overlapping cliques / cycles stress the identities
        let diamond_chain = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
        );
        assert_eq!(
            count_motifs(&diamond_chain),
            count_motifs_bruteforce(&diamond_chain)
        );
        // two disjoint triangles
        let two_triangles = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let c = count_motifs(&two_triangles);
        assert_eq!(c, count_motifs_bruteforce(&two_triangles));
        assert_eq!(c.node_triangle4, 6); // each triangle × 3 external vertices
        assert_eq!(c.two_edges4, 9);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let c = count_motifs(&Graph::new(0));
        assert_eq!(c, MotifCounts::default());
        let c = count_motifs(&Graph::new(3));
        assert_eq!(c.independent3, 1);
        assert_eq!(c.edge2, 0);
        let c = count_motifs(&Graph::from_edges(2, [(0, 1)]));
        assert_eq!(c.edge2, 1);
        assert_eq!(c.total_size4(), 0);
    }

    #[test]
    fn paper_id_roundtrip_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in Motif::ALL {
            assert!(seen.insert(m.paper_id()));
        }
    }
}
