//! Degree assortativity.
//!
//! The assortativity coefficient (equation 4 of the paper, following Newman)
//! is the Pearson correlation of the degrees at either end of an edge. For
//! undirected graphs each edge contributes both orientations, which is the
//! convention used by networkx/igraph and reproduced here so feature values
//! are comparable with the paper's pipeline.

use crate::graph::Graph;

/// Degree assortativity coefficient in `[-1, 1]`.
///
/// Returns `0.0` for degenerate graphs (fewer than 2 edges, or when all
/// endpoint degrees are equal so the correlation is undefined), matching the
/// "no preference" interpretation used when feeding the value to a
/// classifier.
pub fn degree_assortativity(graph: &Graph) -> f64 {
    if graph.n_edges() < 2 {
        return 0.0;
    }
    // Pearson correlation over directed edge endpoint excess degrees.
    // Using the standard simplification: for each undirected edge (u, v) with
    // degrees j = deg(u), k = deg(v):
    //   r = [ M1 * sum(jk) - (sum(½(j+k)))² ] / [ M1 * sum(½(j²+k²)) - (sum(½(j+k)))² ]
    // where M1 = 1/m and sums run over undirected edges.
    let m = graph.n_edges() as f64;
    let mut sum_jk = 0.0;
    let mut sum_half = 0.0;
    let mut sum_sq_half = 0.0;
    // walk the CSR lists directly: the left endpoint's degree is loaded once
    // per vertex instead of once per edge
    for u in 0..graph.n_vertices() {
        let j = graph.degree(u) as f64;
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if v <= u {
                continue; // count each undirected edge once
            }
            let k = graph.degree(v) as f64;
            sum_jk += j * k;
            sum_half += 0.5 * (j + k);
            sum_sq_half += 0.5 * (j * j + k * k);
        }
    }
    let num = sum_jk / m - (sum_half / m).powi(2);
    let den = sum_sq_half / m - (sum_half / m).powi(2);
    if den.abs() < 1e-12 {
        0.0
    } else {
        (num / den).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_graph_is_disassortative() {
        // hub connected to leaves: high-degree vertex always pairs with
        // degree-1 vertices → strongly negative assortativity
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = degree_assortativity(&g);
        assert!(
            r < -0.99,
            "star should be maximally disassortative, got {r}"
        );
    }

    #[test]
    fn regular_graph_is_degenerate_zero() {
        // cycle: every vertex has degree 2 → correlation undefined → 0
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn clique_is_degenerate_zero() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges);
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn assortative_example() {
        // two cliques of size 4 joined by a single edge between them plus two
        // pendant chains: high-degree vertices tend to connect to high-degree
        // vertices, pendants to pendants
        let mut edges = vec![];
        for i in 0..4usize {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        for i in 4..8usize {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        edges.push((0, 4));
        // pendant path
        edges.push((8, 9));
        let g = Graph::from_edges(10, edges);
        let r = degree_assortativity(&g);
        assert!(
            r > 0.0,
            "community structure should be assortative, got {r}"
        );
    }

    #[test]
    fn path_graph_value_matches_reference() {
        // P4: degrees 1,2,2,1; edges (1,2),(2,2),(2,1)
        // networkx gives r = -0.5 for the path on 4 vertices
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = degree_assortativity(&g);
        assert!((r + 0.5).abs() < 1e-9, "expected -0.5, got {r}");
    }

    #[test]
    fn degenerate_graphs_are_zero() {
        assert_eq!(degree_assortativity(&Graph::new(0)), 0.0);
        assert_eq!(degree_assortativity(&Graph::new(3)), 0.0);
        assert_eq!(degree_assortativity(&Graph::from_edges(2, [(0, 1)])), 0.0);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (0, 3),
                (2, 5),
            ],
        );
        let r = degree_assortativity(&g);
        assert!((-1.0..=1.0).contains(&r));
    }
}
