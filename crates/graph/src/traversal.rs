//! Breadth-first traversal, connected components and connectivity checks.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Breadth-first search from `start`; returns the visited vertices in BFS
/// order. Unreachable vertices are not included.
pub fn bfs_order(graph: &Graph, start: usize) -> Vec<usize> {
    let n = graph.n_vertices();
    if start >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Assigns a component id to every vertex; returns `(component_of, count)`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.n_vertices();
    let mut component = vec![usize::MAX; n];
    let mut count = 0;
    // one shared queue across components: the component array doubles as the
    // visited set, so the whole decomposition allocates exactly twice
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if component[v] == usize::MAX {
                    component[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (component, count)
}

/// Whether the graph is connected. Empty graphs and single vertices count as
/// connected.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.n_vertices() <= 1 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Shortest-path distances (in hops) from `start` to every vertex;
/// unreachable vertices get `usize::MAX`.
pub fn bfs_distances(graph: &Graph, start: usize) -> Vec<usize> {
    let n = graph.n_vertices();
    let mut dist = vec![usize::MAX; n];
    if start >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_is_connected() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1}, {2,3}, {4}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn degenerate_graphs_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn bfs_from_out_of_range_is_empty() {
        let g = Graph::new(3);
        assert!(bfs_order(&g, 10).is_empty());
    }

    #[test]
    fn distances_unreachable_are_max() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }
}
