//! K-core decomposition.
//!
//! The k-core of a graph is the maximal subgraph in which every vertex has
//! degree at least `k`; the *core number* of a vertex is the largest `k` for
//! which it belongs to the k-core. The paper uses the maximum core number
//! ("coreness") of a visibility graph as one of its statistical features and
//! cites the `O(m)` bucket algorithm of Batagelj and Zaveršnik, which is what
//! this module implements.

use crate::graph::Graph;

/// Computes the core number of every vertex with the Batagelj–Zaveršnik
/// bucket algorithm (`O(|V| + |E|)`).
pub fn core_numbers(graph: &Graph) -> Vec<usize> {
    let n = graph.n_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = graph.degrees().collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // bucket sort vertices by degree
    let mut bin = vec![0usize; max_degree + 1];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    // pos[v] = position of v in vert; vert = vertices sorted by degree
    let mut pos = vec![0usize; n];
    let mut vert = vec![0usize; n];
    for v in 0..n {
        pos[v] = bin[degree[v]];
        vert[pos[v]] = v;
        bin[degree[v]] += 1;
    }
    // restore bin starts
    for d in (1..=max_degree).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        core[v] = degree[v];
        for &u in graph.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // move u one bucket down
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The maximum core number over all vertices (the "K" feature of the paper,
/// equation 3). Zero for empty graphs.
pub fn max_coreness(graph: &Graph) -> usize {
    core_numbers(graph).into_iter().max().unwrap_or(0)
}

/// Naive reference implementation: repeatedly strip vertices of degree < k.
/// Exposed for tests and benchmarks only.
pub fn core_numbers_naive(graph: &Graph) -> Vec<usize> {
    let n = graph.n_vertices();
    let mut core = vec![0usize; n];
    let max_degree = graph.degrees().max().unwrap_or(0);
    for k in 1..=max_degree {
        // iteratively remove vertices with degree < k
        let mut alive = vec![true; n];
        let mut degree: Vec<usize> = graph.degrees().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if alive[v] && degree[v] < k {
                    alive[v] = false;
                    changed = true;
                    for &u in graph.neighbors(v) {
                        let u = u as usize;
                        if alive[u] {
                            degree[u] -= 1;
                        }
                    }
                }
            }
        }
        for v in 0..n {
            if alive[v] {
                core[v] = k;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::visibility_graph;

    #[test]
    fn path_graph_core_is_one() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(core_numbers(&g), vec![1; 5]);
        assert_eq!(max_coreness(&g), 1);
    }

    #[test]
    fn clique_core_is_n_minus_one() {
        let mut edges = Vec::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(6, edges);
        assert_eq!(core_numbers(&g), vec![5; 6]);
        assert_eq!(max_coreness(&g), 5);
    }

    #[test]
    fn triangle_with_pendant() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let core = core_numbers(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let core = core_numbers(&g);
        assert_eq!(core[2], 0);
        assert_eq!(core[0], 1);
    }

    #[test]
    fn empty_graph() {
        assert!(core_numbers(&Graph::new(0)).is_empty());
        assert_eq!(max_coreness(&Graph::new(0)), 0);
    }

    #[test]
    fn bucket_matches_naive_on_visibility_graphs() {
        let mut x = 11u64;
        let v: Vec<f64> = (0..180)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64) / (u32::MAX as f64)
            })
            .collect();
        let g = visibility_graph(&v);
        assert_eq!(core_numbers(&g), core_numbers_naive(&g));
    }

    #[test]
    fn core_number_at_most_degree() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let core = core_numbers(&g);
        for (v, &c) in core.iter().enumerate() {
            assert!(c <= g.degree(v));
        }
    }
}
