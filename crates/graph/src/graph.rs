//! A compact undirected simple graph.
//!
//! Vertices are dense `0..n` indices (visibility graphs have one vertex per
//! time step). Adjacency is stored as sorted neighbor lists, which gives
//! `O(log d)` adjacency queries, cache-friendly sorted-merge set
//! intersections for triangle/graphlet counting, and cheap iteration.

use serde::{Deserialize, Serialize};

/// An undirected simple graph over vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<u32>>,
    n_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Builds a graph from an edge list. Self-loops are ignored and parallel
    /// edges are deduplicated.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Self-loops and duplicate edges are silently ignored; out-of-range
    /// endpoints panic (vertex indices are created up-front).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n_vertices() && v < self.n_vertices(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.n_vertices()
        );
        if u == v {
            return;
        }
        let (u32u, u32v) = (u as u32, v as u32);
        match self.adjacency[u].binary_search(&u32v) {
            Ok(_) => return, // already present
            Err(pos) => self.adjacency[u].insert(pos, u32v),
        }
        match self.adjacency[v].binary_search(&u32u) {
            Ok(_) => {}
            Err(pos) => self.adjacency[v].insert(pos, u32u),
        }
        self.n_edges += 1;
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n_vertices() || v >= self.n_vertices() || u == v {
            return false;
        }
        self.adjacency[u].binary_search(&(v as u32)).is_ok()
    }

    /// Sorted neighbors of `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adjacency[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Degrees of all vertices.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(|a| a.len()).collect()
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Number of common neighbors of `u` and `v` (sorted-merge intersection).
    pub fn common_neighbor_count(&self, u: usize, v: usize) -> usize {
        sorted_intersection_count(&self.adjacency[u], &self.adjacency[v])
    }

    /// Common neighbors of `u` and `v`.
    pub fn common_neighbors(&self, u: usize, v: usize) -> Vec<u32> {
        sorted_intersection(&self.adjacency[u], &self.adjacency[v])
    }

    /// The union of this graph's edges with another graph over the same
    /// vertex set (used in tests for the HVG ⊆ VG invariant).
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        if self.n_vertices() != other.n_vertices() {
            return false;
        }
        self.edges().all(|(u, v)| other.has_edge(u, v))
    }
}

/// Size of the intersection of two sorted ascending slices.
pub fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Intersection of two sorted ascending slices.
pub fn sorted_intersection(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_with_tail() -> Graph {
        // 0-1-2 triangle, 3 attached to 0
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    #[test]
    fn construction_and_queries() {
        let g = triangle_with_tail();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degrees(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.n_edges(), 1);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle_with_tail();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn common_neighbors_work() {
        let g = triangle_with_tail();
        assert_eq!(g.common_neighbor_count(1, 2), 1); // vertex 0
        assert_eq!(g.common_neighbors(1, 2), vec![0]);
        assert_eq!(g.common_neighbor_count(1, 3), 1); // vertex 0
        assert_eq!(g.common_neighbor_count(2, 3), 1);
    }

    #[test]
    fn subgraph_check() {
        let g = triangle_with_tail();
        let sub = Graph::from_edges(4, [(0, 1), (0, 2)]);
        assert!(sub.is_subgraph_of(&g));
        assert!(!g.is_subgraph_of(&sub));
        let other_size = Graph::new(3);
        assert!(!other_size.is_subgraph_of(&g));
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(sorted_intersection_count(&[], &[1, 2]), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
