//! A compact undirected simple graph in CSR (compressed sparse row) form.
//!
//! Vertices are dense `0..n` indices (visibility graphs have one vertex per
//! time step). Adjacency lives in two flat arrays — `offsets` (length
//! `n + 1`) and `neighbors` (length `2m`, ascending within each vertex's
//! slice) — built in one `O(n + m)` counting-sort pass from an edge buffer.
//! This keeps construction allocation-light (three exact-size arrays, no
//! per-vertex `Vec`s, no `O(d)` memmove per inserted edge), makes
//! `degree()` a subtraction of two offsets, and lays every neighborhood out
//! contiguously for the cache-bound motif kernel.

use serde::{Deserialize, Serialize};

/// An undirected simple graph over vertices `0..n`, stored as CSR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s slice of `neighbors`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, ascending within each vertex's slice.
    neighbors: Vec<u32>,
    n_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            n_edges: 0,
        }
    }

    /// Builds a graph from an edge list. Self-loops are ignored and parallel
    /// edges are deduplicated; out-of-range endpoints panic (vertex indices
    /// are created up-front).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let buffer: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| {
                assert!(
                    u < n && v < n,
                    "edge ({u}, {v}) out of range for {n} vertices"
                );
                (u as u32, v as u32)
            })
            .collect();
        Graph::from_edge_buffer(n, &buffer)
    }

    /// Builds the CSR layout from a raw edge buffer in `O(n + m)`.
    ///
    /// This is the finalize step the visibility-graph builders use: they emit
    /// edges into a plain `Vec<(u32, u32)>` and hand it over once. Self-loops
    /// are dropped and duplicates (in either orientation) deduplicated; both
    /// endpoints of every edge must be `< n`.
    pub fn from_edge_buffer(n: usize, edges: &[(u32, u32)]) -> Self {
        let n32 = n as u32;
        for &(u, v) in edges {
            assert!(
                u < n32 && v < n32,
                "edge ({u}, {v}) out of range for {n} vertices"
            );
        }
        // Two-pass counting sort of the 2m directed arcs by (src, dst):
        // pass 1 buckets by dst, pass 2 stably re-buckets by src, leaving
        // each vertex's neighbor run sorted ascending.
        let n_arcs = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .count()
            .checked_mul(2)
            .expect("arc count overflow");
        let mut by_dst: Vec<(u32, u32)> = Vec::with_capacity(n_arcs);
        let mut counts = vec![0u32; n + 1];
        for &(u, v) in edges {
            if u != v {
                counts[v as usize + 1] += 1;
                counts[u as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        // SAFETY-free bucket fill: write positions come from the prefix sums
        by_dst.resize(n_arcs, (0, 0));
        {
            let mut cursor = counts.clone();
            for &(u, v) in edges {
                if u != v {
                    let slot = cursor[v as usize];
                    cursor[v as usize] += 1;
                    by_dst[slot as usize] = (u, v);
                    let slot = cursor[u as usize];
                    cursor[u as usize] += 1;
                    by_dst[slot as usize] = (v, u);
                }
            }
        }
        // pass 2: stable bucket by src, so dst order from pass 1 is preserved
        let mut src_counts = vec![0u32; n + 1];
        for &(src, _) in &by_dst {
            src_counts[src as usize + 1] += 1;
        }
        for i in 0..n {
            src_counts[i + 1] += src_counts[i];
        }
        let mut sorted: Vec<(u32, u32)> = vec![(0, 0); n_arcs];
        {
            let mut cursor = src_counts.clone();
            for &(src, dst) in &by_dst {
                let slot = cursor[src as usize];
                cursor[src as usize] += 1;
                sorted[slot as usize] = (src, dst);
            }
        }
        // compact: drop consecutive duplicate (src, dst) arcs while building
        // the final offsets/neighbors arrays
        let mut offsets = vec![0u32; n + 1];
        let mut neighbors: Vec<u32> = Vec::with_capacity(n_arcs);
        let mut previous: Option<(u32, u32)> = None;
        for &(src, dst) in &sorted {
            if previous == Some((src, dst)) {
                continue;
            }
            previous = Some((src, dst));
            offsets[src as usize + 1] += 1;
            neighbors.push(dst);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let n_edges = neighbors.len() / 2;
        Graph {
            offsets,
            neighbors,
            n_edges,
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n_vertices() || v >= self.n_vertices() || u == v {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Sorted neighbors of `u` — a contiguous slice of the CSR array.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Degree of `u`: one subtraction on the offset array.
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Degrees of all vertices, derived from the offset array without
    /// walking adjacency (and without allocating: callers that need an owned
    /// buffer collect explicitly).
    pub fn degrees(&self) -> impl ExactSizeIterator<Item = usize> + Clone + '_ {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Number of common neighbors of `u` and `v` (sorted-merge intersection).
    pub fn common_neighbor_count(&self, u: usize, v: usize) -> usize {
        sorted_intersection_count(self.neighbors(u), self.neighbors(v))
    }

    /// Common neighbors of `u` and `v` (sorted-merge reference path; the
    /// motif kernel uses the allocation-free marker path instead).
    pub fn common_neighbors(&self, u: usize, v: usize) -> Vec<u32> {
        sorted_intersection(self.neighbors(u), self.neighbors(v))
    }

    /// The union of this graph's edges with another graph over the same
    /// vertex set (used in tests for the HVG ⊆ VG invariant).
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        if self.n_vertices() != other.n_vertices() {
            return false;
        }
        self.edges().all(|(u, v)| other.has_edge(u, v))
    }
}

/// Size of the intersection of two sorted ascending slices.
pub fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Intersection of two sorted ascending slices.
pub fn sorted_intersection(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_with_tail() -> Graph {
        // 0-1-2 triangle, 3 attached to 0
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    #[test]
    fn construction_and_queries() {
        let g = triangle_with_tail();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degrees().collect::<Vec<_>>(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.n_edges(), 1);
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle_with_tail();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn edge_buffer_finalize_matches_from_edges() {
        // same edge set in scrambled order, with duplicates in both
        // orientations and self-loops sprinkled in
        let buffer: Vec<(u32, u32)> = vec![
            (3, 0),
            (1, 0),
            (2, 2),
            (0, 1),
            (2, 1),
            (0, 2),
            (1, 2),
            (0, 3),
        ];
        let g = Graph::from_edge_buffer(4, &buffer);
        assert_eq!(g, triangle_with_tail());
    }

    #[test]
    fn empty_edge_buffer() {
        let g = Graph::from_edge_buffer(3, &[]);
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_edges(), 0);
        assert!(g.neighbors(1).is_empty());
        assert_eq!(g, Graph::new(3));
    }

    #[test]
    fn common_neighbors_work() {
        let g = triangle_with_tail();
        assert_eq!(g.common_neighbor_count(1, 2), 1); // vertex 0
        assert_eq!(g.common_neighbors(1, 2), vec![0]);
        assert_eq!(g.common_neighbor_count(1, 3), 1); // vertex 0
        assert_eq!(g.common_neighbor_count(2, 3), 1);
    }

    #[test]
    fn subgraph_check() {
        let g = triangle_with_tail();
        let sub = Graph::from_edges(4, [(0, 1), (0, 2)]);
        assert!(sub.is_subgraph_of(&g));
        assert!(!g.is_subgraph_of(&sub));
        let other_size = Graph::new(3);
        assert!(!other_size.is_subgraph_of(&g));
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(sorted_intersection_count(&[], &[1, 2]), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, [(0, 5)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_buffer_panics() {
        Graph::from_edge_buffer(2, &[(0, 5)]);
    }
}
