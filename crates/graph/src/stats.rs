//! Scalar statistical graph features: density, degree statistics, and the
//! combined per-graph record the feature extractor consumes.

use crate::assortativity::degree_assortativity;
use crate::graph::Graph;
use crate::kcore::max_coreness;
use serde::{Deserialize, Serialize};

/// Graph density (equation 2): `2|E| / (|V| (|V| - 1))`, in `[0, 1]`.
/// Zero for graphs with fewer than two vertices.
pub fn density(graph: &Graph) -> f64 {
    let n = graph.n_vertices();
    if n < 2 {
        return 0.0;
    }
    2.0 * graph.n_edges() as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Minimum, maximum and mean degree of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DegreeStatistics {
    /// Smallest vertex degree.
    pub min: f64,
    /// Largest vertex degree.
    pub max: f64,
    /// Mean vertex degree.
    pub mean: f64,
    /// Standard deviation of the degree distribution.
    pub std: f64,
}

/// Computes degree statistics; all zeros for the empty graph. With the CSR
/// graph, degrees stream straight off the offset array — no allocation.
pub fn degree_statistics(graph: &Graph) -> DegreeStatistics {
    let n = graph.n_vertices();
    if n == 0 {
        return DegreeStatistics::default();
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for d in graph.degrees() {
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    let mean = sum as f64 / n as f64;
    let var = graph
        .degrees()
        .map(|d| (d as f64 - mean) * (d as f64 - mean))
        .sum::<f64>()
        / n as f64;
    DegreeStatistics {
        min: min as f64,
        max: max as f64,
        mean,
        std: var.sqrt(),
    }
}

/// The scalar (non-motif) statistical features the paper extracts from every
/// visibility graph: density, maximum coreness, assortativity and degree
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GraphStatistics {
    /// Graph density (equation 2).
    pub density: f64,
    /// Maximum core number (equation 3).
    pub max_coreness: f64,
    /// Degree assortativity coefficient (equation 4).
    pub assortativity: f64,
    /// Degree statistics (min / max / mean / std).
    pub degrees: DegreeStatistics,
}

impl GraphStatistics {
    /// Computes all scalar statistics for a graph.
    pub fn compute(graph: &Graph) -> Self {
        GraphStatistics {
            density: density(graph),
            max_coreness: max_coreness(graph) as f64,
            assortativity: degree_assortativity(graph),
            degrees: degree_statistics(graph),
        }
    }

    /// Flattens the record into a feature vector in a stable order.
    pub fn to_features(&self) -> Vec<f64> {
        vec![
            self.density,
            self.max_coreness,
            self.assortativity,
            self.degrees.min,
            self.degrees.max,
            self.degrees.mean,
            self.degrees.std,
        ]
    }

    /// Names matching [`GraphStatistics::to_features`], used for feature
    /// importance reporting.
    pub fn feature_names() -> Vec<&'static str> {
        vec![
            "density",
            "max_coreness",
            "assortativity",
            "degree_min",
            "degree_max",
            "degree_mean",
            "degree_std",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::visibility_graph;

    #[test]
    fn density_of_complete_graph_is_one() {
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, edges);
        assert!((density(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_path_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!((density(&g) - 0.5).abs() < 1e-12);
        assert_eq!(density(&Graph::new(1)), 0.0);
        assert_eq!(density(&Graph::new(0)), 0.0);
    }

    #[test]
    fn degree_statistics_basic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (1, 3)]);
        let s = degree_statistics(&g);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!(s.std > 0.0);
        assert_eq!(
            degree_statistics(&Graph::new(0)),
            DegreeStatistics::default()
        );
    }

    #[test]
    fn combined_statistics_on_visibility_graph() {
        let v: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.4).sin()).collect();
        let g = visibility_graph(&v);
        let s = GraphStatistics::compute(&g);
        assert!(s.density > 0.0 && s.density <= 1.0);
        assert!(s.max_coreness >= 1.0);
        assert!((-1.0..=1.0).contains(&s.assortativity));
        assert!(s.degrees.mean >= 2.0 * (1.0 - 1.0 / 64.0)); // connected graph mean degree ≥ ~2
        let f = s.to_features();
        assert_eq!(f.len(), GraphStatistics::feature_names().len());
    }

    #[test]
    fn feature_vector_order_is_stable() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let s = GraphStatistics::compute(&g);
        let f = s.to_features();
        assert_eq!(f[0], s.density);
        assert_eq!(f[1], s.max_coreness);
        assert_eq!(f[2], s.assortativity);
        assert_eq!(f[3], s.degrees.min);
    }
}
