//! Reading and writing the UCR archive text format.
//!
//! The classic UCR format stores one instance per line: the class label
//! followed by the series values, separated by commas (older archive) or
//! whitespace/tabs (UEA & UCR repository `_TRAIN`/`_TEST` files). This module
//! auto-detects the separator, so real archive files can be dropped in to
//! replace the synthetic datasets without code changes.
//!
//! ## Format rules (pinned by `tests/ucr_roundtrip.rs`)
//!
//! * Every record has the same number of raw fields; **ragged rows are a
//!   parse error**. Variable-length series are expressed the way the 2018
//!   archive expresses them: shorter series are padded with trailing `NaN`
//!   values up to the longest row, and the reader strips that padding.
//! * `NaN` is therefore reserved for padding — a `NaN` followed by a real
//!   value, a record that is *only* padding, or an infinite value are all
//!   parse errors rather than silently corrupted data.
//! * Labels may be arbitrary integers (including negative); they are
//!   remapped to consecutive `0..k` indices in order of first appearance.
//!   A `_TRAIN`/`_TEST` pair must share one remapping (the splits of a real
//!   archive dataset routinely list classes in different orders), so pair
//!   loaders parse the training file first and seed the test parser with
//!   its label table via [`UcrRecordParser::seeded`].
//! * Values round-trip **bit-exactly**: the writer emits the shortest
//!   decimal string that parses back to the identical `f64` (Rust's `{}`
//!   float formatting guarantee), so a write→read cycle never perturbs
//!   feature extraction downstream.
//!
//! Parsing is incremental: [`UcrRecordParser`] consumes one line at a time
//! and is the single implementation behind both the eager [`parse_ucr`] /
//! [`read_ucr_file`] path and the streaming split readers in
//! `tsg_datasets::source`, so the two can never disagree.

use crate::error::TsError;
use crate::series::{Dataset, TimeSeries};
use crate::Result;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Field separator used when serialising a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UcrSeparator {
    /// Comma-separated values (the older UCR archive flavour).
    Comma,
    /// Tab-separated values (the UEA & UCR repository `.tsv` flavour).
    Tab,
}

impl UcrSeparator {
    fn as_char(self) -> char {
        match self {
            UcrSeparator::Comma => ',',
            UcrSeparator::Tab => '\t',
        }
    }
}

/// Incremental parser for UCR-format records.
///
/// Feed physical lines in file order via [`UcrRecordParser::parse_line`];
/// each call yields `Ok(Some(series))` for a record, `Ok(None)` for a blank
/// line, or a [`TsError::Parse`] describing the malformed input. Call
/// [`UcrRecordParser::finish`] after the last line to reject files with no
/// records. The parser carries the label-remapping table and the pinned
/// field count across lines, which is exactly the state a streaming reader
/// needs to be bit-identical to the eager [`parse_ucr`].
#[derive(Debug, Clone, Default)]
pub struct UcrRecordParser {
    label_map: Vec<i64>,
    expected_fields: Option<usize>,
    records: usize,
}

impl UcrRecordParser {
    /// Creates a parser with an empty label table.
    pub fn new() -> Self {
        UcrRecordParser::default()
    }

    /// Creates a parser whose label table starts as `labels` (raw label →
    /// index by position). Use this to parse the `_TEST` file of a pair with
    /// the table its `_TRAIN` file produced, so both splits map the same raw
    /// label to the same class index regardless of first-appearance order;
    /// test-only labels extend the table past the training classes. Field
    /// counts are *not* carried over — each file of a variable-length pair
    /// is padded to its own longest row.
    pub fn seeded(labels: &[i64]) -> Self {
        UcrRecordParser {
            label_map: labels.to_vec(),
            expected_fields: None,
            records: 0,
        }
    }

    /// The label table built so far: raw labels in index order.
    pub fn label_map(&self) -> &[i64] {
        &self.label_map
    }

    /// Number of records successfully parsed so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Parses one physical line (`lineno` is 1-based, used in errors).
    ///
    /// Returns `Ok(None)` for blank lines, `Ok(Some(series))` for records
    /// (with trailing `NaN` padding stripped), and `Err` for malformed
    /// input: ragged rows, non-numeric tokens, interior `NaN`, infinite
    /// values, or records that are entirely padding.
    pub fn parse_line(&mut self, lineno: usize, line: &str) -> Result<Option<TimeSeries>> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(None);
        }
        let mut fields: Vec<&str> = if line.contains(',') {
            line.split(',').map(str::trim).collect()
        } else {
            line.split_whitespace().collect()
        };
        // a trailing separator produces one empty trailing field; tolerate
        // exactly that one — several trailing separators are corruption, and
        // stripping them here would also defeat the uniform-field-count check
        if fields.last() == Some(&"") {
            fields.pop();
        }
        if fields.len() < 2 {
            return Err(TsError::Parse {
                line: lineno,
                message: format!(
                    "expected a label and at least one value, got {} fields",
                    fields.len()
                ),
            });
        }
        match self.expected_fields {
            Some(expected) if expected != fields.len() => {
                return Err(TsError::Parse {
                    line: lineno,
                    message: format!(
                        "record has {} fields where the first record had {expected} \
                         (ragged rows are not valid UCR data; pad variable-length \
                         series with trailing NaN values)",
                        fields.len()
                    ),
                });
            }
            _ => self.expected_fields = Some(fields.len()),
        }
        let raw_label: f64 = fields[0].parse().map_err(|_| TsError::Parse {
            line: lineno,
            message: format!("invalid label `{}`", fields[0]),
        })?;
        let raw_label = raw_label.round() as i64;
        let label = match self.label_map.iter().position(|l| *l == raw_label) {
            Some(idx) => idx,
            None => {
                self.label_map.push(raw_label);
                self.label_map.len() - 1
            }
        };
        let mut values = Vec::with_capacity(fields.len() - 1);
        let mut in_padding = false;
        for f in &fields[1..] {
            if f.is_empty() {
                return Err(TsError::Parse {
                    line: lineno,
                    message: "empty value field".into(),
                });
            }
            let v: f64 = f.parse().map_err(|_| TsError::Parse {
                line: lineno,
                message: format!("invalid value `{f}`"),
            })?;
            if v.is_nan() {
                in_padding = true;
                continue;
            }
            if in_padding {
                return Err(TsError::Parse {
                    line: lineno,
                    message: format!(
                        "value `{f}` after NaN padding (NaN is only valid as trailing padding)"
                    ),
                });
            }
            if v.is_infinite() {
                return Err(TsError::Parse {
                    line: lineno,
                    message: format!("non-finite value `{f}`"),
                });
            }
            values.push(v);
        }
        if values.is_empty() {
            return Err(TsError::Parse {
                line: lineno,
                message: "record contains no values (line is entirely NaN padding)".into(),
            });
        }
        self.records += 1;
        Ok(Some(TimeSeries::with_label(values, label)))
    }

    /// Final validation: a UCR file must contain at least one record.
    pub fn finish(&self) -> Result<()> {
        if self.records == 0 {
            return Err(TsError::Parse {
                line: 1,
                message: "file contains no records".into(),
            });
        }
        Ok(())
    }
}

/// Parses UCR-format content (one `label, v1, v2, …` record per line).
///
/// See the module documentation for the format rules (uniform field counts,
/// trailing-`NaN` padding, label remapping). Empty lines are skipped; an
/// input with no records at all is an error.
pub fn parse_ucr(content: &str, name: impl Into<String>) -> Result<Dataset> {
    parse_ucr_with(&mut UcrRecordParser::new(), content, name)
}

/// [`parse_ucr`] driving a caller-supplied parser — typically one created
/// with [`UcrRecordParser::seeded`] so a `_TEST` file reuses its `_TRAIN`
/// file's label table. Use one parser per file: the uniform-field-count pin
/// (and the no-records check in [`UcrRecordParser::finish`]) are per-file
/// state.
pub fn parse_ucr_with(
    parser: &mut UcrRecordParser,
    content: &str,
    name: impl Into<String>,
) -> Result<Dataset> {
    let mut dataset = Dataset::new(name);
    for (lineno, line) in content.lines().enumerate() {
        if let Some(series) = parser.parse_line(lineno + 1, line)? {
            dataset.push(series);
        }
    }
    parser.finish()?;
    Ok(dataset)
}

/// Reads a UCR-format file from disk.
pub fn read_ucr_file(path: impl AsRef<Path>) -> Result<Dataset> {
    read_ucr_file_with(&mut UcrRecordParser::new(), path)
}

/// [`read_ucr_file`] driving a caller-supplied parser (see
/// [`parse_ucr_with`] for when and how to share label tables across the
/// files of a pair).
pub fn read_ucr_file_with(parser: &mut UcrRecordParser, path: impl AsRef<Path>) -> Result<Dataset> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let mut content = String::new();
    let mut reader = std::io::BufReader::new(file);
    for line in (&mut reader).lines() {
        content.push_str(&line?);
        content.push('\n');
    }
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_string());
    parse_ucr_with(parser, &content, name)
}

/// Serialises a dataset to the comma-separated UCR format.
///
/// Variable-length datasets are padded with trailing `NaN` values to the
/// longest series, exactly as the 2018 UCR archive does; [`parse_ucr`]
/// strips the padding again, so the cycle round-trips lengths as well as
/// bit-exact values.
pub fn to_ucr_string(dataset: &Dataset) -> Result<String> {
    to_ucr_string_with(dataset, UcrSeparator::Comma)
}

/// [`to_ucr_string`] with an explicit field separator (the archive ships
/// both comma- and tab-separated flavours; both must parse identically).
pub fn to_ucr_string_with(dataset: &Dataset, separator: UcrSeparator) -> Result<String> {
    let sep = separator.as_char();
    let max_len = dataset.max_length();
    let mut out = String::new();
    for series in dataset.series() {
        let label = series.label().ok_or_else(|| {
            TsError::invalid("dataset", "cannot serialise unlabeled series to UCR format")
        })?;
        if series.is_empty() {
            return Err(TsError::invalid(
                "dataset",
                "cannot serialise an empty series to UCR format",
            ));
        }
        if let Some(bad) = series.values().iter().find(|v| !v.is_finite()) {
            return Err(TsError::invalid(
                "dataset",
                format!("cannot serialise non-finite value `{bad}` (NaN is reserved for padding)"),
            ));
        }
        out.push_str(&label.to_string());
        for v in series.values() {
            out.push(sep);
            out.push_str(&format!("{v}"));
        }
        for _ in series.len()..max_len {
            out.push(sep);
            out.push_str("NaN");
        }
        out.push('\n');
    }
    Ok(out)
}

/// Writes a dataset to disk in the comma-separated UCR format.
pub fn write_ucr_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    write_ucr_file_with(dataset, path, UcrSeparator::Comma)
}

/// [`write_ucr_file`] with an explicit field separator.
pub fn write_ucr_file_with(
    dataset: &Dataset,
    path: impl AsRef<Path>,
    separator: UcrSeparator,
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_ucr_string_with(dataset, separator)?.as_bytes())?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated() {
        let content = "1,0.5,0.6,0.7\n2,1.0,1.1,1.2\n1,0.4,0.5,0.6\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.series()[0].label(), Some(0));
        assert_eq!(d.series()[1].label(), Some(1));
        assert_eq!(d.series()[2].label(), Some(0));
        assert_eq!(d.series()[0].values(), &[0.5, 0.6, 0.7]);
    }

    #[test]
    fn parses_whitespace_separated_and_negative_labels() {
        let content = "-1  0.5 0.6\n 1  1.0 1.1\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn skips_blank_lines() {
        let content = "\n1,1.0,2.0\n\n2,3.0,4.0\n\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_ucr("not_a_label,1.0,2.0\n", "bad").is_err());
        assert!(parse_ucr("1,abc\n", "bad").is_err());
        assert!(parse_ucr("1\n", "bad").is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_ucr("1,1.0,2.0\n2,3.0\n", "bad").unwrap_err();
        assert!(err.to_string().contains("ragged"), "{err}");
        // whitespace flavour too
        assert!(parse_ucr("1 1.0 2.0\n2 3.0 4.0 5.0\n", "bad").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_ucr("", "bad").is_err());
        assert!(parse_ucr("\n\n\n", "bad").is_err());
    }

    #[test]
    fn strips_trailing_nan_padding() {
        let content = "1,0.5,0.6,NaN,NaN\n2,1.0,1.1,1.2,1.3\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.series()[0].values(), &[0.5, 0.6]);
        assert_eq!(d.series()[1].len(), 4);
        assert!(!d.is_uniform_length());
    }

    #[test]
    fn rejects_interior_nan_and_infinite_and_all_padding() {
        // NaN followed by a real value: padding cannot resume
        assert!(parse_ucr("1,0.5,NaN,0.7\n", "bad").is_err());
        // infinities are never valid UCR data
        assert!(parse_ucr("1,0.5,inf\n", "bad").is_err());
        assert!(parse_ucr("1,0.5,-inf\n", "bad").is_err());
        // a record that is only padding has no values
        assert!(parse_ucr("1,NaN,NaN\n", "bad").is_err());
    }

    #[test]
    fn tolerates_one_trailing_separator() {
        let d = parse_ucr("1,0.5,0.6,\n2,1.0,1.1,\n", "toy").unwrap();
        assert_eq!(d.series()[0].values(), &[0.5, 0.6]);
        // but an interior empty field is an error
        assert!(parse_ucr("1,0.5,,0.6\n", "bad").is_err());
        // and so are several trailing separators (only one is tolerated)
        assert!(parse_ucr("1,0.5,0.6,,\n", "bad").is_err());
        assert!(parse_ucr("1,0.5,0.6,,,,\n", "bad").is_err());
    }

    #[test]
    fn seeded_parser_shares_the_label_table_across_a_pair() {
        // the splits of a real pair routinely list classes in different
        // first-appearance orders; the seeded parser keeps indices aligned
        let mut train_parser = UcrRecordParser::new();
        let train = parse_ucr_with(
            &mut train_parser,
            "5,0.5,0.6\n-2,1.0,1.1\n9,2.0,2.1\n",
            "toy",
        )
        .unwrap();
        assert_eq!(train.labels_required().unwrap(), vec![0, 1, 2]);
        assert_eq!(train_parser.label_map(), &[5, -2, 9]);
        let mut test_parser = UcrRecordParser::seeded(train_parser.label_map());
        let test = parse_ucr_with(
            &mut test_parser,
            "-2,1.5,1.6\n9,2.5,2.6\n5,0.1,0.2\n",
            "toy",
        )
        .unwrap();
        assert_eq!(test.labels_required().unwrap(), vec![1, 2, 0]);
        // a label unseen in training extends the table past the known classes
        let mut extra_parser = UcrRecordParser::seeded(train_parser.label_map());
        let extra = parse_ucr_with(&mut extra_parser, "7,1.0,2.0\n", "toy").unwrap();
        assert_eq!(extra.labels_required().unwrap(), vec![3]);
        // field counts are per-file: a seeded parser accepts a different width
        let mut other_width = UcrRecordParser::seeded(train_parser.label_map());
        assert!(parse_ucr_with(&mut other_width, "5,1.0,2.0,3.0,4.0\n", "toy").is_ok());
    }

    #[test]
    fn roundtrip_through_string() {
        let content = "1,0.5,0.625,0.75\n2,1.5,1.25,1.125\n";
        let d = parse_ucr(content, "toy").unwrap();
        let s = to_ucr_string(&d).unwrap();
        let d2 = parse_ucr(&s, "toy").unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn roundtrip_pads_variable_lengths_with_nan() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![0.5, 0.25], 0));
        d.push(TimeSeries::with_label(vec![1.5, 2.5, 3.5, 4.5], 1));
        let s = to_ucr_string(&d).unwrap();
        assert!(s.lines().next().unwrap().ends_with("NaN,NaN"));
        let d2 = parse_ucr(&s, "toy").unwrap();
        assert_eq!(d.series(), d2.series(), "lengths and bits must survive");
    }

    #[test]
    fn tab_separator_parses_identically() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![0.5, -0.0, 1e-300], 0));
        d.push(TimeSeries::with_label(vec![1.5, 2.5, -3.5], 1));
        let comma = parse_ucr(&to_ucr_string(&d).unwrap(), "toy").unwrap();
        let tab = parse_ucr(&to_ucr_string_with(&d, UcrSeparator::Tab).unwrap(), "toy").unwrap();
        assert_eq!(comma, tab);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tsg_ts_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy_TRAIN.txt");
        let content = "1,0.5,0.625,0.75\n2,1.5,1.25,1.125\n";
        let d = parse_ucr(content, "toy").unwrap();
        write_ucr_file(&d, &path).unwrap();
        let d2 = read_ucr_file(&path).unwrap();
        assert_eq!(d.series(), d2.series());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unlabeled_and_nonfinite_series_cannot_serialize() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::new(vec![1.0, 2.0]));
        assert!(to_ucr_string(&d).is_err());
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![1.0, f64::NAN], 0));
        assert!(to_ucr_string(&d).is_err());
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![f64::INFINITY], 0));
        assert!(to_ucr_string(&d).is_err());
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(Vec::new(), 0));
        assert!(to_ucr_string(&d).is_err());
    }

    #[test]
    fn incremental_parser_matches_eager_parse() {
        let content = "1,0.5,0.6,NaN\n\n2,1.0,1.1,1.2\n-3,0.4,0.5,NaN\n";
        let eager = parse_ucr(content, "toy").unwrap();
        let mut parser = UcrRecordParser::new();
        let mut streamed = Vec::new();
        for (i, line) in content.lines().enumerate() {
            if let Some(series) = parser.parse_line(i + 1, line).unwrap() {
                streamed.push(series);
            }
        }
        parser.finish().unwrap();
        assert_eq!(parser.records(), 3);
        assert_eq!(eager.series(), streamed.as_slice());
    }
}
