//! Reading and writing the UCR archive text format.
//!
//! The classic UCR format stores one instance per line: the class label
//! followed by the series values, separated by commas (older archive) or
//! whitespace/tabs (UEA & UCR repository `_TRAIN`/`_TEST` files). This module
//! auto-detects the separator, so real archive files can be dropped in to
//! replace the synthetic datasets without code changes.

use crate::error::TsError;
use crate::series::{Dataset, TimeSeries};
use crate::Result;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses UCR-format content (one `label, v1, v2, …` record per line).
///
/// Labels may be arbitrary integers (including negative, as in some UCR
/// datasets); they are remapped to consecutive `0..k` indices in order of
/// first appearance. Empty lines are skipped.
pub fn parse_ucr(content: &str, name: impl Into<String>) -> Result<Dataset> {
    let mut dataset = Dataset::new(name);
    let mut label_map: Vec<i64> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = if line.contains(',') {
            line.split(',').map(str::trim).collect()
        } else {
            line.split_whitespace().collect()
        };
        if fields.len() < 2 {
            return Err(TsError::Parse {
                line: lineno + 1,
                message: format!(
                    "expected a label and at least one value, got {} fields",
                    fields.len()
                ),
            });
        }
        let raw_label: f64 = fields[0].parse().map_err(|_| TsError::Parse {
            line: lineno + 1,
            message: format!("invalid label `{}`", fields[0]),
        })?;
        let raw_label = raw_label.round() as i64;
        let label = match label_map.iter().position(|l| *l == raw_label) {
            Some(idx) => idx,
            None => {
                label_map.push(raw_label);
                label_map.len() - 1
            }
        };
        let mut values = Vec::with_capacity(fields.len() - 1);
        for f in &fields[1..] {
            if f.is_empty() {
                continue;
            }
            let v: f64 = f.parse().map_err(|_| TsError::Parse {
                line: lineno + 1,
                message: format!("invalid value `{f}`"),
            })?;
            values.push(v);
        }
        if values.is_empty() {
            return Err(TsError::Parse {
                line: lineno + 1,
                message: "record contains no values".into(),
            });
        }
        dataset.push(TimeSeries::with_label(values, label));
    }
    Ok(dataset)
}

/// Reads a UCR-format file from disk.
pub fn read_ucr_file(path: impl AsRef<Path>) -> Result<Dataset> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let mut content = String::new();
    let mut reader = std::io::BufReader::new(file);
    for line in (&mut reader).lines() {
        content.push_str(&line?);
        content.push('\n');
    }
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_string());
    parse_ucr(&content, name)
}

/// Serialises a dataset to the comma-separated UCR format.
pub fn to_ucr_string(dataset: &Dataset) -> Result<String> {
    let mut out = String::new();
    for series in dataset.series() {
        let label = series.label().ok_or_else(|| {
            TsError::invalid("dataset", "cannot serialise unlabeled series to UCR format")
        })?;
        out.push_str(&label.to_string());
        for v in series.values() {
            out.push(',');
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Writes a dataset to disk in the comma-separated UCR format.
pub fn write_ucr_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_ucr_string(dataset)?.as_bytes())?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated() {
        let content = "1,0.5,0.6,0.7\n2,1.0,1.1,1.2\n1,0.4,0.5,0.6\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.series()[0].label(), Some(0));
        assert_eq!(d.series()[1].label(), Some(1));
        assert_eq!(d.series()[2].label(), Some(0));
        assert_eq!(d.series()[0].values(), &[0.5, 0.6, 0.7]);
    }

    #[test]
    fn parses_whitespace_separated_and_negative_labels() {
        let content = "-1  0.5 0.6\n 1  1.0 1.1\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn skips_blank_lines() {
        let content = "\n1,1.0,2.0\n\n2,3.0,4.0\n\n";
        let d = parse_ucr(content, "toy").unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_ucr("not_a_label,1.0,2.0\n", "bad").is_err());
        assert!(parse_ucr("1,abc\n", "bad").is_err());
        assert!(parse_ucr("1\n", "bad").is_err());
    }

    #[test]
    fn roundtrip_through_string() {
        let content = "1,0.5,0.625,0.75\n2,1.5,1.25,1.125\n";
        let d = parse_ucr(content, "toy").unwrap();
        let s = to_ucr_string(&d).unwrap();
        let d2 = parse_ucr(&s, "toy").unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("tsg_ts_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy_TRAIN.txt");
        let content = "1,0.5,0.625,0.75\n2,1.5,1.25,1.125\n";
        let d = parse_ucr(content, "toy").unwrap();
        write_ucr_file(&d, &path).unwrap();
        let d2 = read_ucr_file(&path).unwrap();
        assert_eq!(d.series(), d2.series());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unlabeled_series_cannot_serialize() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::new(vec![1.0, 2.0]));
        assert!(to_ucr_string(&d).is_err());
    }
}
