//! Core time series and dataset types.
//!
//! A time series instance (Definition 2.1) is an ordered sequence of
//! real-valued variables. A [`Dataset`] is a collection of labeled time
//! series, the unit on which classification experiments run.

use crate::error::TsError;
use crate::stats;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single univariate, real-valued time series with an optional class label.
///
/// Values are stored as `f64`; labels are small non-negative integers encoded
/// as `usize` (the synthetic archive and the UCR text format both use integer
/// class labels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
    label: Option<usize>,
}

impl TimeSeries {
    /// Creates an unlabeled time series from raw values.
    pub fn new(values: Vec<f64>) -> Self {
        TimeSeries {
            values,
            label: None,
        }
    }

    /// Creates a labeled time series.
    pub fn with_label(values: Vec<f64>, label: usize) -> Self {
        TimeSeries {
            values,
            label: Some(label),
        }
    }

    /// The sequence of values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (used by preprocessing).
    pub fn values_mut(&mut self) -> &mut Vec<f64> {
        &mut self.values
    }

    /// Consumes the series and returns its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The class label, if any.
    pub fn label(&self) -> Option<usize> {
        self.label
    }

    /// Sets the class label.
    pub fn set_label(&mut self, label: usize) {
        self.label = Some(label);
    }

    /// The dimensionality (length) of the series, `|T|` in the paper.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean of the values.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// Population standard deviation of the values.
    pub fn std(&self) -> f64 {
        stats::std(&self.values)
    }

    /// Minimum value (NaN-free series assumed); returns `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().cloned().reduce(f64::min)
    }

    /// Maximum value; returns `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().cloned().reduce(f64::max)
    }

    /// Returns a z-normalised copy (zero mean, unit variance).
    ///
    /// Constant series (standard deviation below `1e-12`) normalise to all
    /// zeros rather than dividing by zero.
    pub fn znormalized(&self) -> TimeSeries {
        let z = crate::preprocess::znormalize(&self.values);
        TimeSeries {
            values: z,
            label: self.label,
        }
    }

    /// Extracts the subsequence `[start, start + len)`.
    ///
    /// Returns an error when the window exceeds the series bounds.
    pub fn subsequence(&self, start: usize, len: usize) -> Result<TimeSeries> {
        if start + len > self.values.len() {
            return Err(TsError::invalid(
                "subsequence",
                format!(
                    "window [{start}, {}) out of bounds for length {}",
                    start + len,
                    self.values.len()
                ),
            ));
        }
        Ok(TimeSeries {
            values: self.values[start..start + len].to_vec(),
            label: self.label,
        })
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

/// A labeled collection of time series — one split (train or test) of a
/// classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Dataset {
    /// Dataset name (e.g. `"ArrowHead"`).
    pub name: String,
    series: Vec<TimeSeries>,
}

impl Dataset {
    /// Creates an empty dataset with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            series: Vec::new(),
        }
    }

    /// Creates a dataset from pre-built series.
    pub fn from_series(name: impl Into<String>, series: Vec<TimeSeries>) -> Self {
        Dataset {
            name: name.into(),
            series,
        }
    }

    /// Adds one series.
    pub fn push(&mut self, series: TimeSeries) {
        self.series.push(series);
    }

    /// All series in insertion order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Mutable access to the series.
    pub fn series_mut(&mut self) -> &mut [TimeSeries] {
        &mut self.series
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset holds no instances.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Returns the labels of all instances; unlabeled instances map to `None`.
    pub fn labels(&self) -> Vec<Option<usize>> {
        self.series.iter().map(|s| s.label()).collect()
    }

    /// Returns the labels, erroring if any instance is unlabeled.
    pub fn labels_required(&self) -> Result<Vec<usize>> {
        self.series
            .iter()
            .map(|s| {
                s.label()
                    .ok_or_else(|| TsError::invalid("labels", "dataset contains unlabeled series"))
            })
            .collect()
    }

    /// Number of distinct class labels present.
    pub fn n_classes(&self) -> usize {
        self.class_counts().len()
    }

    /// Histogram of class labels.
    pub fn class_counts(&self) -> BTreeMap<usize, usize> {
        let mut counts = BTreeMap::new();
        for s in &self.series {
            if let Some(l) = s.label() {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Length of the longest series in the dataset.
    pub fn max_length(&self) -> usize {
        self.series.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Returns `true` when every series has the same length.
    pub fn is_uniform_length(&self) -> bool {
        match self.series.first() {
            None => true,
            Some(first) => self.series.iter().all(|s| s.len() == first.len()),
        }
    }

    /// Z-normalises every series in place.
    pub fn znormalize(&mut self) {
        for s in &mut self.series {
            let z = crate::preprocess::znormalize(s.values());
            *s.values_mut() = z;
        }
    }

    /// Summary of the dataset shape, mirroring the `#Cls / #Train / Dim.`
    /// columns of the paper's tables.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            name: self.name.clone(),
            n_instances: self.len(),
            n_classes: self.n_classes(),
            length: self.max_length(),
        }
    }
}

/// Shape summary for one dataset split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of instances in the split.
    pub n_instances: usize,
    /// Number of distinct classes.
    pub n_classes: usize,
    /// Series length (dimensionality).
    pub length: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TimeSeries {
        TimeSeries::with_label(vec![1.0, 2.0, 3.0, 4.0], 1)
    }

    #[test]
    fn basic_accessors() {
        let t = toy();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.label(), Some(1));
        assert_eq!(t.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.max(), Some(4.0));
        assert!((t.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn znormalized_has_zero_mean_unit_std() {
        let t = toy().znormalized();
        assert!(t.mean().abs() < 1e-12);
        assert!((t.std() - 1.0).abs() < 1e-9);
        assert_eq!(t.label(), Some(1));
    }

    #[test]
    fn znormalized_constant_series_is_zeros() {
        let t = TimeSeries::new(vec![5.0; 8]).znormalized();
        assert!(t.values().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn subsequence_bounds() {
        let t = toy();
        let sub = t.subsequence(1, 2).unwrap();
        assert_eq!(sub.values(), &[2.0, 3.0]);
        assert!(t.subsequence(3, 2).is_err());
    }

    #[test]
    fn dataset_class_counts() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![0.0; 4], 0));
        d.push(TimeSeries::with_label(vec![1.0; 4], 1));
        d.push(TimeSeries::with_label(vec![2.0; 4], 1));
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_classes(), 2);
        let counts = d.class_counts();
        assert_eq!(counts[&0], 1);
        assert_eq!(counts[&1], 2);
        assert!(d.is_uniform_length());
        assert_eq!(d.max_length(), 4);
        assert_eq!(d.labels_required().unwrap(), vec![0, 1, 1]);
    }

    #[test]
    fn dataset_summary_matches_shape() {
        let mut d = Dataset::new("toy");
        for i in 0..5 {
            d.push(TimeSeries::with_label(vec![0.0; 16], i % 2));
        }
        let s = d.summary();
        assert_eq!(s.n_instances, 5);
        assert_eq!(s.n_classes, 2);
        assert_eq!(s.length, 16);
        assert_eq!(s.name, "toy");
    }

    #[test]
    fn labels_required_fails_on_unlabeled() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::new(vec![0.0; 4]));
        assert!(d.labels_required().is_err());
    }

    #[test]
    fn dataset_znormalize_all() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![1.0, 2.0, 3.0], 0));
        d.push(TimeSeries::with_label(vec![10.0, 20.0, 30.0], 1));
        d.znormalize();
        for s in d.series() {
            assert!(s.mean().abs() < 1e-12);
        }
    }
}
