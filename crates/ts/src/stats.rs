//! Small numeric helpers shared across the substrate.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice; `0.0` for slices shorter than 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice, ignoring NaN ordering subtleties; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().cloned().reduce(f64::min)
}

/// Maximum of a slice; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().cloned().reduce(f64::max)
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `0.0` when either side has zero variance (the convention used for
/// degenerate assortativity computations).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal-length slices");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx <= 1e-300 || dy <= 1e-300 {
        return 0.0;
    }
    num / (dx.sqrt() * dy.sqrt())
}

/// Median of a slice (average of the two middle elements for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Linear interpolation quantile (`q` in `[0, 1]`) of a slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 2.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn pearson_perfectly_correlated() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 3.0, 4.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-12);
    }
}
