//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA (equation 1 of the paper) reduces a series of length `n` to `s`
//! segments by averaging values inside each segment. When `n` is not an
//! integer multiple of `s`, boundary points contribute fractionally to the
//! two segments they straddle, which keeps the approximation exact in the
//! sense that segment weights always sum to `n / s`.

use crate::error::TsError;
use crate::Result;

/// Reduces `values` to `segments` averaged segments.
///
/// Returns an error when `segments` is zero or exceeds the series length.
///
/// ```
/// use tsg_ts::paa::paa;
/// let reduced = paa(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
/// assert_eq!(reduced, vec![1.5, 3.5]);
/// ```
pub fn paa(values: &[f64], segments: usize) -> Result<Vec<f64>> {
    if values.is_empty() {
        return Err(TsError::EmptySeries);
    }
    if segments == 0 {
        return Err(TsError::invalid("segments", "must be positive"));
    }
    if segments > values.len() {
        return Err(TsError::invalid(
            "segments",
            format!(
                "cannot expand {} points into {} segments",
                values.len(),
                segments
            ),
        ));
    }
    let n = values.len();
    if segments == n {
        return Ok(values.to_vec());
    }
    // Fractional PAA: point k spreads uniformly over [k, k+1) on a length-n
    // axis; segment i covers [i*n/s, (i+1)*n/s).
    let mut out = vec![0.0f64; segments];
    let seg_width = n as f64 / segments as f64;
    for (k, &v) in values.iter().enumerate() {
        let start = k as f64;
        let end = (k + 1) as f64;
        let first_seg = (start / seg_width).floor() as usize;
        let last_seg = (((end / seg_width).ceil() as usize).max(1) - 1).min(segments - 1);
        for (seg, out_v) in out
            .iter_mut()
            .enumerate()
            .take(last_seg + 1)
            .skip(first_seg)
        {
            let seg_start = seg as f64 * seg_width;
            let seg_end = seg_start + seg_width;
            let overlap = (end.min(seg_end) - start.max(seg_start)).max(0.0);
            *out_v += v * overlap;
        }
    }
    for v in &mut out {
        *v /= seg_width;
    }
    Ok(out)
}

/// PAA with an even divisor: reduces the series to half its length (used by
/// the multiscale cascade). Odd-length series drop the trailing point of the
/// final pair average gracefully by averaging the remaining single point.
pub fn halve(values: &[f64]) -> Result<Vec<f64>> {
    if values.is_empty() {
        return Err(TsError::EmptySeries);
    }
    if values.len() == 1 {
        return Ok(values.to_vec());
    }
    let mut out = Vec::with_capacity(values.len().div_ceil(2));
    let mut i = 0;
    while i + 1 < values.len() {
        out.push(0.5 * (values[i] + values[i + 1]));
        i += 2;
    }
    if i < values.len() {
        out.push(values[i]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(paa(&v, 3).unwrap(), vec![1.5, 3.5, 5.5]);
        assert_eq!(paa(&v, 2).unwrap(), vec![2.0, 5.0]);
    }

    #[test]
    fn identity_when_segments_equal_length() {
        let v = [1.0, 5.0, -2.0];
        assert_eq!(paa(&v, 3).unwrap(), v.to_vec());
    }

    #[test]
    fn fractional_division_preserves_mean() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = paa(&v, 2).unwrap();
        // total mass preserved: mean of segments equals mean of series
        let mean_r: f64 = r.iter().sum::<f64>() / r.len() as f64;
        let mean_v: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean_r - mean_v).abs() < 1e-9, "{mean_r} vs {mean_v}");
    }

    #[test]
    fn errors() {
        assert!(paa(&[], 2).is_err());
        assert!(paa(&[1.0, 2.0], 0).is_err());
        assert!(paa(&[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn halve_even_odd() {
        assert_eq!(halve(&[1.0, 3.0, 5.0, 7.0]).unwrap(), vec![2.0, 6.0]);
        assert_eq!(halve(&[1.0, 3.0, 5.0]).unwrap(), vec![2.0, 5.0]);
        assert_eq!(halve(&[4.0]).unwrap(), vec![4.0]);
        assert!(halve(&[]).is_err());
    }

    #[test]
    fn single_segment_is_global_mean() {
        let v = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(paa(&v, 1).unwrap(), vec![5.0]);
    }
}
