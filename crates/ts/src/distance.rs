//! Time series dissimilarity measures.
//!
//! Implements the two distances the paper's baselines rely on:
//!
//! * Euclidean distance — a one-to-one mapping of points (requires equal
//!   length series).
//! * Dynamic Time Warping (DTW) — dynamic-programming alignment with an
//!   optional Sakoe–Chiba warping window, early abandoning against a known
//!   best-so-far, and the `LB_Keogh` lower bound used to prune 1NN searches.

use crate::error::TsError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Squared Euclidean distance between two equal-length slices.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum())
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    squared_euclidean(a, b).map(f64::sqrt)
}

/// Options controlling DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DtwOptions {
    /// Sakoe–Chiba band half-width as a fraction of the series length
    /// (`None` = unconstrained warping).
    pub window_fraction: Option<f64>,
    /// Early-abandon threshold: once every cell of a DP row exceeds this
    /// squared distance, the computation aborts and returns `f64::INFINITY`.
    pub early_abandon: Option<f64>,
}

impl DtwOptions {
    /// Unconstrained DTW.
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// DTW with a Sakoe–Chiba band expressed as a fraction of series length
    /// (e.g. `0.1` for a 10 % warping window).
    pub fn with_window(fraction: f64) -> Self {
        DtwOptions {
            window_fraction: Some(fraction),
            early_abandon: None,
        }
    }

    /// Adds an early-abandon threshold (a squared distance).
    pub fn abandon_above(mut self, threshold: f64) -> Self {
        self.early_abandon = Some(threshold);
        self
    }
}

/// Unconstrained DTW distance between two (possibly different-length) series.
pub fn dtw(a: &[f64], b: &[f64]) -> Result<f64> {
    dtw_with_options(a, b, DtwOptions::unconstrained())
}

/// DTW distance constrained to a Sakoe–Chiba band whose half-width is
/// `window_fraction * max(len)` cells.
pub fn dtw_windowed(a: &[f64], b: &[f64], window_fraction: f64) -> Result<f64> {
    dtw_with_options(a, b, DtwOptions::with_window(window_fraction))
}

/// DTW distance with full options. Returns `f64::INFINITY` when early
/// abandoning triggers.
pub fn dtw_with_options(a: &[f64], b: &[f64], options: DtwOptions) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(TsError::EmptySeries);
    }
    if let Some(f) = options.window_fraction {
        if !(0.0..=1.0).contains(&f) {
            return Err(TsError::invalid(
                "window_fraction",
                format!("must be in [0, 1], got {f}"),
            ));
        }
    }
    let n = a.len();
    let m = b.len();
    let band = match options.window_fraction {
        Some(f) => {
            let w = (f * n.max(m) as f64).ceil() as usize;
            // The band must at least cover the length difference, otherwise
            // no warping path exists.
            w.max(n.abs_diff(m))
        }
        None => n.max(m),
    };
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        let j_lo = if i > band { i - band } else { 1 };
        let j_hi = (i + band).min(m);
        if j_lo > j_hi {
            return Ok(inf);
        }
        let mut row_min = inf;
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
            let best_prev = prev[j].min(prev[j - 1]).min(curr[j - 1]);
            if best_prev.is_finite() {
                curr[j] = cost + best_prev;
                row_min = row_min.min(curr[j]);
            }
        }
        if let Some(thresh) = options.early_abandon {
            if row_min > thresh * thresh {
                return Ok(inf);
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    Ok(prev[m].sqrt())
}

/// `LB_Keogh` lower bound on the windowed DTW distance between `query` and
/// `candidate`. Both series must have equal length; the envelope is built on
/// `candidate` with the given band half-width (in points).
pub fn lb_keogh(query: &[f64], candidate: &[f64], band: usize) -> Result<f64> {
    if query.len() != candidate.len() {
        return Err(TsError::LengthMismatch {
            left: query.len(),
            right: candidate.len(),
        });
    }
    if query.is_empty() {
        return Err(TsError::EmptySeries);
    }
    let n = candidate.len();
    let mut sum = 0.0;
    for (i, &q) in query.iter().enumerate() {
        let lo = i.saturating_sub(band);
        let hi = (i + band + 1).min(n);
        let window = &candidate[lo..hi];
        let upper = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lower = window.iter().cloned().fold(f64::INFINITY, f64::min);
        if q > upper {
            sum += (q - upper) * (q - upper);
        } else if q < lower {
            sum += (q - lower) * (q - lower);
        }
    }
    Ok(sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basic() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0);
        assert!(euclidean(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn dtw_identical_series_is_zero() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn dtw_handles_phase_shift_better_than_euclidean() {
        // two identical pulses, one shifted by two steps
        let mut a = vec![0.0; 32];
        let mut b = vec![0.0; 32];
        for i in 10..15 {
            a[i] = 1.0;
            b[i + 2] = 1.0;
        }
        let de = euclidean(&a, &b).unwrap();
        let dd = dtw(&a, &b).unwrap();
        assert!(dd < de, "dtw {dd} should beat euclidean {de}");
    }

    #[test]
    fn dtw_less_or_equal_euclidean_for_equal_length() {
        let a = [0.3, 1.2, -0.5, 0.8, 2.0, -1.0];
        let b = [0.1, 1.0, -0.2, 0.9, 1.5, -0.8];
        assert!(dtw(&a, &b).unwrap() <= euclidean(&a, &b).unwrap() + 1e-12);
    }

    #[test]
    fn dtw_different_lengths() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&a, &b).unwrap();
        assert!(d.is_finite());
        assert!(d < 1.5);
    }

    #[test]
    fn windowed_dtw_at_least_unconstrained() {
        let a: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.2).sin()).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.2 + 0.7).sin()).collect();
        let full = dtw(&a, &b).unwrap();
        let banded = dtw_windowed(&a, &b, 0.05).unwrap();
        assert!(banded >= full - 1e-12);
    }

    #[test]
    fn window_zero_equals_euclidean_for_equal_lengths() {
        let a = [0.5, 1.5, -0.5, 2.5];
        let b = [0.0, 1.0, 0.0, 2.0];
        let banded = dtw_windowed(&a, &b, 0.0).unwrap();
        let e = euclidean(&a, &b).unwrap();
        assert!((banded - e).abs() < 1e-12);
    }

    #[test]
    fn early_abandon_returns_infinity() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| -(i as f64)).collect();
        let opts = DtwOptions::unconstrained().abandon_above(1.0);
        assert!(dtw_with_options(&a, &b, opts).unwrap().is_infinite());
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        let a: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        let b: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.31 + 0.4).cos()).collect();
        let band = 5usize;
        let lb = lb_keogh(&a, &b, band).unwrap();
        let d = dtw_windowed(&a, &b, band as f64 / 50.0).unwrap();
        assert!(lb <= d + 1e-9, "lb {lb} must lower-bound dtw {d}");
    }

    #[test]
    fn invalid_window_fraction_rejected() {
        assert!(dtw_windowed(&[1.0, 2.0], &[1.0, 2.0], 1.5).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(dtw(&[], &[1.0]).is_err());
        assert!(lb_keogh(&[], &[], 2).is_err());
    }
}
