//! Preprocessing routines: z-normalisation, min-max scaling, detrending.
//!
//! The paper notes that visibility graphs are unsuitable for series with
//! monotonic trends, which should be removed before graph generation, and
//! that SVM inputs must be scaled into `[0, 1]`. These helpers implement
//! those transformations on raw value slices.

/// Z-normalises a slice: subtract the mean, divide by the population standard
/// deviation. Constant slices (std below `1e-12`) map to all zeros.
pub fn znormalize(values: &[f64]) -> Vec<f64> {
    let m = crate::stats::mean(values);
    let s = crate::stats::std(values);
    if s < 1e-12 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - m) / s).collect()
}

/// Scales a slice linearly into `[0, 1]`. Constant slices map to all `0.5`.
pub fn minmax_scale(values: &[f64]) -> Vec<f64> {
    let lo = crate::stats::min(values).unwrap_or(0.0);
    let hi = crate::stats::max(values).unwrap_or(0.0);
    let range = hi - lo;
    if range < 1e-12 {
        return vec![0.5; values.len()];
    }
    values.iter().map(|v| (v - lo) / range).collect()
}

/// Removes the least-squares linear trend from a slice.
///
/// Fits `y = a + b·t` by ordinary least squares over `t = 0..n` and returns
/// the residuals. Series shorter than 2 points are returned unchanged.
pub fn detrend(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n < 2 {
        return values.to_vec();
    }
    let nf = n as f64;
    let t_mean = (nf - 1.0) / 2.0;
    let y_mean = crate::stats::mean(values);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in values.iter().enumerate() {
        let dt = i as f64 - t_mean;
        num += dt * (y - y_mean);
        den += dt * dt;
    }
    let slope = if den.abs() < 1e-300 { 0.0 } else { num / den };
    let intercept = y_mean - slope * t_mean;
    values
        .iter()
        .enumerate()
        .map(|(i, &y)| y - (intercept + slope * i as f64))
        .collect()
}

/// First-order differencing: `d[i] = v[i+1] - v[i]`. Returns an empty vector
/// for series shorter than 2 points.
pub fn difference(values: &[f64]) -> Vec<f64> {
    if values.len() < 2 {
        return Vec::new();
    }
    values.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Simple centered moving-average smoothing with the given window (odd
/// windows are recommended). Window sizes of 0 or 1 return the input.
pub fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    if window <= 1 || values.is_empty() {
        return values.to_vec();
    }
    let half = window / 2;
    let n = values.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            crate::stats::mean(&values[lo..hi])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znormalize_properties() {
        let v = [2.0, 4.0, 6.0, 8.0];
        let z = znormalize(&v);
        assert!(crate::stats::mean(&z).abs() < 1e-12);
        assert!((crate::stats::std(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_constant() {
        assert_eq!(znormalize(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn minmax_bounds() {
        let v = [5.0, 10.0, 7.5];
        let m = minmax_scale(&v);
        assert_eq!(m[0], 0.0);
        assert_eq!(m[1], 1.0);
        assert!((m[2] - 0.5).abs() < 1e-12);
        assert_eq!(minmax_scale(&[2.0, 2.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn detrend_removes_linear_ramp() {
        let v: Vec<f64> = (0..50).map(|i| 3.0 + 0.7 * i as f64).collect();
        let d = detrend(&v);
        assert!(d.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    fn detrend_preserves_oscillation() {
        let v: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.3).sin() + 0.05 * i as f64)
            .collect();
        let d = detrend(&v);
        // trend slope should be gone: regression slope of the output ~ 0
        let n = d.len() as f64;
        let t_mean = (n - 1.0) / 2.0;
        let y_mean = crate::stats::mean(&d);
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in d.iter().enumerate() {
            num += (i as f64 - t_mean) * (y - y_mean);
            den += (i as f64 - t_mean) * (i as f64 - t_mean);
        }
        assert!((num / den).abs() < 1e-3);
    }

    #[test]
    fn difference_shrinks_by_one() {
        assert_eq!(difference(&[1.0, 4.0, 9.0]), vec![3.0, 5.0]);
        assert!(difference(&[1.0]).is_empty());
    }

    #[test]
    fn moving_average_smooths() {
        let v = [0.0, 10.0, 0.0, 10.0, 0.0];
        let s = moving_average(&v, 3);
        assert_eq!(s.len(), v.len());
        // interior points are local means
        assert!((s[2] - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(moving_average(&v, 1), v.to_vec());
    }
}
