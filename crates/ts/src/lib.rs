//! # tsg-ts — time series substrate
//!
//! This crate provides the time series foundation used by the Multiscale
//! Visibility Graph (MVG) reproduction:
//!
//! * [`TimeSeries`] and [`Dataset`] — the basic labeled time series types
//!   (Definition 2.1 of the paper).
//! * [`paa`] — Piecewise Aggregate Approximation (equation 1), the
//!   dimensionality-reduction primitive used to build multiscale
//!   representations (Definition 2.2).
//! * [`multiscale`] — the multiscale approximation cascade of Definition 3.1
//!   and the full multiscale representation of Definition 3.2.
//! * [`distance`] — Euclidean and Dynamic Time Warping distances, including a
//!   Sakoe–Chiba band, the `LB_Keogh` lower bound and early abandoning, used
//!   by the 1NN baselines.
//! * [`sax`] — Symbolic Aggregate approXimation, required by the SAX-VSM,
//!   Bag-of-Patterns and Fast Shapelets baselines.
//! * [`generators`] — seeded synthetic series generators (noise, chaotic
//!   logistic maps, random walks, pulse trains, …) used to build the
//!   synthetic stand-in for the UCR archive.
//! * [`io`] — reading and writing the UCR archive text format.
//! * [`preprocess`] — z-normalisation, min-max scaling, detrending.

pub mod distance;
pub mod error;
pub mod generators;
pub mod io;
pub mod multiscale;
pub mod paa;
pub mod preprocess;
pub mod sax;
pub mod series;
pub mod stats;

pub use distance::{dtw, dtw_windowed, euclidean, lb_keogh, DtwOptions};
pub use error::TsError;
pub use multiscale::{multiscale_approximations, MultiscaleOptions, MultiscaleRepresentation};
pub use paa::paa;
pub use series::{Dataset, DatasetSummary, TimeSeries};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TsError>;
