//! Seeded synthetic time series generators.
//!
//! The reproduction cannot redistribute the UCR archive, so the dataset
//! substrate synthesises series whose *structural* properties (periodicity,
//! roughness, local patterns, regime switches) differ between classes. These
//! are exactly the properties visibility-graph features are sensitive to,
//! while the added nuisance variation (phase shifts, warping, noise) keeps
//! the distance- and shapelet-based baselines honest.
//!
//! All generators are deterministic given an RNG, which the dataset layer
//! seeds per dataset and per instance.

use rand::Rng;

/// White Gaussian noise of length `n` with the given standard deviation.
pub fn gaussian_noise<R: Rng + ?Sized>(rng: &mut R, n: usize, std: f64) -> Vec<f64> {
    (0..n).map(|_| std * standard_normal(rng)).collect()
}

/// Draws one standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sine wave with the given period (in samples), amplitude, phase and
/// additive Gaussian noise.
pub fn sine_wave<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    period: f64,
    amplitude: f64,
    phase: f64,
    noise_std: f64,
) -> Vec<f64> {
    (0..n)
        .map(|i| {
            amplitude * ((2.0 * std::f64::consts::PI * i as f64 / period) + phase).sin()
                + noise_std * standard_normal(rng)
        })
        .collect()
}

/// Sum of several harmonics — a smooth quasi-periodic signal whose spectral
/// content is controlled by `periods` and `amplitudes`.
pub fn harmonic_mixture<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    components: &[(f64, f64)],
    noise_std: f64,
) -> Vec<f64> {
    let phases: Vec<f64> = components
        .iter()
        .map(|_| rng.gen_range(0.0..(2.0 * std::f64::consts::PI)))
        .collect();
    (0..n)
        .map(|i| {
            let mut v = 0.0;
            for ((period, amp), phase) in components.iter().zip(phases.iter()) {
                v += amp * ((2.0 * std::f64::consts::PI * i as f64 / period) + phase).sin();
            }
            v + noise_std * standard_normal(rng)
        })
        .collect()
}

/// Gaussian random walk (Brownian-motion-like, Hurst ≈ 0.5).
pub fn random_walk<R: Rng + ?Sized>(rng: &mut R, n: usize, step_std: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0.0;
    for _ in 0..n {
        x += step_std * standard_normal(rng);
        out.push(x);
    }
    out
}

/// First-order autoregressive process `x[t] = phi * x[t-1] + eps`.
pub fn ar1<R: Rng + ?Sized>(rng: &mut R, n: usize, phi: f64, noise_std: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0.0;
    for _ in 0..n {
        x = phi * x + noise_std * standard_normal(rng);
        out.push(x);
    }
    out
}

/// Fully chaotic logistic map (`r = 4`) optionally corrupted with observation
/// noise — the canonical example in the HVG motif literature.
pub fn logistic_map<R: Rng + ?Sized>(rng: &mut R, n: usize, r: f64, noise_std: f64) -> Vec<f64> {
    let mut x: f64 = rng.gen_range(0.05..0.95);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        x = r * x * (1.0 - x);
        // keep the orbit inside (0,1) even for r slightly above 4
        x = x.clamp(1e-9, 1.0 - 1e-9);
        out.push(x + noise_std * standard_normal(rng));
    }
    out
}

/// Square-wave-like on/off appliance load profile: random duty cycles at a
/// base level with occasional high-power bursts.
pub fn appliance_profile<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    burst_level: f64,
    mean_on: usize,
    mean_off: usize,
    noise_std: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut on = false;
    let mut remaining = 1 + rng.gen_range(0..mean_off.max(1));
    for _ in 0..n {
        if remaining == 0 {
            on = !on;
            let mean = if on { mean_on } else { mean_off };
            remaining = 1 + rng.gen_range(0..(2 * mean.max(1)));
        }
        remaining -= 1;
        let level = if on { burst_level } else { 0.0 };
        out.push(level + noise_std * standard_normal(rng));
    }
    out
}

/// ECG-like pulse train: a periodic sharp QRS-style spike plus smaller P/T
/// waves, with period jitter. `anomaly` injects an irregular beat pattern.
pub fn ecg_like<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    period: usize,
    qrs_amplitude: f64,
    anomaly: bool,
    noise_std: f64,
) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    let mut t = rng.gen_range(0..period.max(1));
    while t < n {
        let jitter = rng.gen_range(0..=(period / 8).max(1)) as i64 - (period as i64 / 16).max(1);
        // P wave
        add_gaussian_bump(
            &mut out,
            t as i64 - (period as i64) / 5,
            period as f64 / 16.0,
            0.15,
        );
        // QRS complex: sharp up-down
        add_gaussian_bump(&mut out, t as i64, period as f64 / 40.0, qrs_amplitude);
        add_gaussian_bump(
            &mut out,
            t as i64 + (period as i64) / 20,
            period as f64 / 40.0,
            -0.3 * qrs_amplitude,
        );
        // T wave
        add_gaussian_bump(
            &mut out,
            t as i64 + (period as i64) / 4,
            period as f64 / 10.0,
            0.3,
        );
        let step = if anomaly && rng.gen_bool(0.3) {
            // skipped / premature beat
            (period as f64 * rng.gen_range(0.5..1.6)) as i64
        } else {
            period as i64
        };
        let next = t as i64 + step + jitter;
        if next <= t as i64 {
            break;
        }
        t = next as usize;
    }
    for v in &mut out {
        *v += noise_std * standard_normal(rng);
    }
    out
}

/// Smooth closed-outline-like signal: the radial profile of a star-shaped
/// contour with `lobes` lobes — a stand-in for image-outline datasets
/// (ArrowHead, ShapesAll, phalanx outlines, …).
pub fn outline_profile<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    lobes: usize,
    lobe_depth: f64,
    irregularity: f64,
    noise_std: f64,
) -> Vec<f64> {
    let phase = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
    let wobble: Vec<f64> = (0..4)
        .map(|_| irregularity * standard_normal(rng))
        .collect();
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let mut r = 1.0 + lobe_depth * ((lobes as f64) * theta + phase).cos();
            for (k, w) in wobble.iter().enumerate() {
                r += w * (((k + 1) as f64) * theta + 0.3 * phase).sin();
            }
            r + noise_std * standard_normal(rng)
        })
        .collect()
}

/// Piecewise-constant regime-switching signal (levels drawn per regime) —
/// useful for device / screen-type style datasets.
pub fn regime_switching<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    n_regimes: usize,
    levels: &[f64],
    noise_std: f64,
) -> Vec<f64> {
    assert!(!levels.is_empty());
    let mut boundaries: Vec<usize> = (0..n_regimes.saturating_sub(1))
        .map(|_| rng.gen_range(0..n))
        .collect();
    boundaries.push(n);
    boundaries.sort_unstable();
    let mut out = Vec::with_capacity(n);
    let mut level = levels[rng.gen_range(0..levels.len())];
    let mut b = 0usize;
    for i in 0..n {
        if b < boundaries.len() && i >= boundaries[b] {
            level = levels[rng.gen_range(0..levels.len())];
            b += 1;
        }
        out.push(level + noise_std * standard_normal(rng));
    }
    out
}

/// Injects a distinctive pattern (shapelet) at a random location of a noisy
/// background. The pattern is a scaled copy of `pattern`; returns the series.
pub fn inject_pattern<R: Rng + ?Sized>(
    rng: &mut R,
    background: Vec<f64>,
    pattern: &[f64],
    amplitude: f64,
) -> Vec<f64> {
    let mut out = background;
    if pattern.is_empty() || pattern.len() >= out.len() {
        return out;
    }
    let start = rng.gen_range(0..=(out.len() - pattern.len()));
    for (i, &p) in pattern.iter().enumerate() {
        out[start + i] += amplitude * p;
    }
    out
}

/// A smooth bump pattern usable as an injected shapelet.
pub fn bump_pattern(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = (i as f64 + 0.5) / len as f64;
            (std::f64::consts::PI * x).sin().powi(2)
        })
        .collect()
}

/// A sharp sawtooth pattern usable as an injected shapelet: three linear
/// ramps with instantaneous drops, structurally distinct from the smooth
/// [`bump_pattern`] both for shapelet distances and for visibility graphs
/// (the discontinuities create long-range visibility hubs).
pub fn sawtooth_pattern(len: usize) -> Vec<f64> {
    let teeth = 3.0;
    (0..len)
        .map(|i| {
            let x = (i as f64) / len as f64;
            (x * teeth).fract()
        })
        .collect()
}

/// Fractional-Brownian-motion-like series with tunable roughness.
///
/// Uses spectral synthesis: sums sinusoids with power-law amplitudes
/// `f^{-(2H+1)/2}`; larger Hurst exponent `h` gives smoother series.
pub fn fractional_noise<R: Rng + ?Sized>(rng: &mut R, n: usize, h: f64) -> Vec<f64> {
    let n_comp = 48.min(n / 2).max(1);
    let beta = 2.0 * h + 1.0;
    let comps: Vec<(f64, f64, f64)> = (1..=n_comp)
        .map(|k| {
            let freq = k as f64 / n as f64;
            let amp = freq.powf(-beta / 2.0);
            let phase = rng.gen_range(0.0..(2.0 * std::f64::consts::PI));
            (freq, amp, phase)
        })
        .collect();
    let norm: f64 = comps.iter().map(|(_, a, _)| a * a).sum::<f64>().sqrt();
    (0..n)
        .map(|i| {
            comps
                .iter()
                .map(|(f, a, p)| a * (2.0 * std::f64::consts::PI * f * i as f64 + p).sin())
                .sum::<f64>()
                / norm
        })
        .collect()
}

fn add_gaussian_bump(out: &mut [f64], center: i64, width: f64, amplitude: f64) {
    if width <= 0.0 {
        return;
    }
    let lo = (center as f64 - 4.0 * width).floor() as i64;
    let hi = (center as f64 + 4.0 * width).ceil() as i64;
    for i in lo..=hi {
        if i < 0 || i as usize >= out.len() {
            continue;
        }
        let d = (i - center) as f64 / width;
        out[i as usize] += amplitude * (-0.5 * d * d).exp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn lengths_are_respected() {
        let mut r = rng();
        assert_eq!(gaussian_noise(&mut r, 100, 1.0).len(), 100);
        assert_eq!(sine_wave(&mut r, 64, 16.0, 1.0, 0.0, 0.0).len(), 64);
        assert_eq!(random_walk(&mut r, 50, 1.0).len(), 50);
        assert_eq!(ar1(&mut r, 30, 0.9, 1.0).len(), 30);
        assert_eq!(logistic_map(&mut r, 80, 4.0, 0.0).len(), 80);
        assert_eq!(ecg_like(&mut r, 200, 50, 1.0, false, 0.01).len(), 200);
        assert_eq!(outline_profile(&mut r, 120, 3, 0.4, 0.05, 0.01).len(), 120);
        assert_eq!(fractional_noise(&mut r, 90, 0.7).len(), 90);
        assert_eq!(appliance_profile(&mut r, 150, 5.0, 20, 40, 0.1).len(), 150);
        assert_eq!(
            regime_switching(&mut r, 100, 4, &[0.0, 1.0, 2.0], 0.1).len(),
            100
        );
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let a = sine_wave(&mut rng(), 32, 8.0, 1.0, 0.0, 0.2);
        let b = sine_wave(&mut rng(), 32, 8.0, 1.0, 0.0, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20000).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn logistic_map_stays_near_unit_interval() {
        let mut r = rng();
        let xs = logistic_map(&mut r, 1000, 4.0, 0.0);
        assert!(xs.iter().all(|x| *x > 0.0 && *x < 1.0));
        // the chaotic orbit should fill the interval rather than settle
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.9 && min < 0.1);
    }

    #[test]
    fn sine_wave_is_periodic() {
        let mut r = rng();
        let period = 32.0;
        let xs = sine_wave(&mut r, 256, period, 1.0, 0.3, 0.0);
        for i in 0..(256 - 32) {
            assert!((xs[i] - xs[i + 32]).abs() < 1e-9);
        }
    }

    #[test]
    fn ecg_like_has_dominant_spikes() {
        let mut r = rng();
        let xs = ecg_like(&mut r, 512, 64, 2.0, false, 0.0);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 1.0, "expected QRS spikes, max {max}");
    }

    #[test]
    fn fractional_noise_smoothness_orders_by_hurst() {
        // higher H -> smoother -> smaller mean absolute first difference
        let rough = fractional_noise(&mut rng(), 512, 0.2);
        let smooth = fractional_noise(&mut rng(), 512, 0.9);
        let tv = |xs: &[f64]| {
            xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64
        };
        assert!(tv(&rough) > tv(&smooth));
    }

    #[test]
    fn inject_pattern_changes_series_locally() {
        let mut r = rng();
        let background = vec![0.0; 100];
        let pat = bump_pattern(20);
        let with = inject_pattern(&mut r, background.clone(), &pat, 3.0);
        let n_changed = with
            .iter()
            .zip(background.iter())
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(n_changed > 0 && n_changed <= 20);
    }

    #[test]
    fn patterns_have_expected_shapes() {
        let bump = bump_pattern(11);
        assert!(bump[5] > bump[0]);
        assert!(bump.iter().all(|v| *v >= 0.0 && *v <= 1.0));
        let saw = sawtooth_pattern(10);
        assert_eq!(saw.len(), 10);
    }

    #[test]
    fn appliance_profile_has_two_levels() {
        let mut r = rng();
        let xs = appliance_profile(&mut r, 2000, 10.0, 30, 60, 0.01);
        let high = xs.iter().filter(|v| **v > 5.0).count();
        let low = xs.iter().filter(|v| **v < 5.0).count();
        assert!(high > 0 && low > 0);
    }
}
