//! Multiscale approximation and representation (Definitions 3.1 and 3.2).
//!
//! Given a series `T0` of length `n`, its approximated multiscale
//! representation is the set `{T1, …, Tm}` where `|Ti| = n / 2^i`, stopping
//! once the next approximation would fall below a minimum length `τ`. The
//! full multiscale representation additionally includes `T0` itself.

use crate::paa::paa;
use crate::series::TimeSeries;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Options controlling the multiscale cascade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiscaleOptions {
    /// Minimum length of the smallest approximation, `τ` in the paper.
    ///
    /// The paper suggests a small integer such as 15 as an optimisation trick
    /// and notes that a value of 0 is always safe; we default to 15.
    pub tau: usize,
    /// Hard cap on the number of downscaled approximations (safety valve for
    /// extremely long series). `usize::MAX` means "no cap".
    pub max_scales: usize,
}

impl Default for MultiscaleOptions {
    fn default() -> Self {
        MultiscaleOptions {
            tau: 15,
            max_scales: usize::MAX,
        }
    }
}

impl MultiscaleOptions {
    /// Convenience constructor for a custom `τ`.
    pub fn with_tau(tau: usize) -> Self {
        MultiscaleOptions {
            tau,
            ..Default::default()
        }
    }
}

/// The multiscale representation of one series: the original plus its
/// downscaled approximations (Definition 3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiscaleRepresentation {
    /// `T0`, the original series.
    pub original: TimeSeries,
    /// `T1..Tm`, successive PAA halvings of `T0`.
    pub approximations: Vec<TimeSeries>,
}

impl MultiscaleRepresentation {
    /// Builds the multiscale representation of `series`.
    pub fn build(series: &TimeSeries, options: MultiscaleOptions) -> Result<Self> {
        let approximations = multiscale_approximations(series, options)?;
        Ok(MultiscaleRepresentation {
            original: series.clone(),
            approximations,
        })
    }

    /// All scales including the original, ordered `T0, T1, …, Tm`.
    pub fn all_scales(&self) -> Vec<&TimeSeries> {
        std::iter::once(&self.original)
            .chain(self.approximations.iter())
            .collect()
    }

    /// Only the approximations `T1..Tm` (the AMVG inputs).
    pub fn approximations_only(&self) -> &[TimeSeries] {
        &self.approximations
    }

    /// Number of scales including the original.
    pub fn n_scales(&self) -> usize {
        1 + self.approximations.len()
    }

    /// Total number of points across all scales. The paper observes this is
    /// bounded by `2n` (it is at most `n + n/2 + n/4 + … < 2n`).
    pub fn total_points(&self) -> usize {
        self.original.len() + self.approximations.iter().map(|t| t.len()).sum::<usize>()
    }
}

/// Computes the approximated multiscale representation `{T1, …, Tm}` of
/// Definition 3.1: successive halvings by PAA until the next scale would be
/// `≤ τ` points long.
pub fn multiscale_approximations(
    series: &TimeSeries,
    options: MultiscaleOptions,
) -> Result<Vec<TimeSeries>> {
    let mut out = Vec::new();
    let mut current = series.values().to_vec();
    let label = series.label();
    let mut scale = 0usize;
    while current.len() / 2 > options.tau && current.len() >= 2 && scale < options.max_scales {
        let target = current.len() / 2;
        let reduced = paa(&current, target)?;
        current = reduced.clone();
        let mut t = TimeSeries::new(reduced);
        if let Some(l) = label {
            t.set_label(l);
        }
        out.push(t);
        scale += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        TimeSeries::with_label((0..n).map(|i| i as f64).collect(), 2)
    }

    #[test]
    fn lengths_halve_each_scale() {
        let t = ramp(256);
        let opts = MultiscaleOptions::with_tau(15);
        let approx = multiscale_approximations(&t, opts).unwrap();
        let lens: Vec<usize> = approx.iter().map(|t| t.len()).collect();
        assert_eq!(lens, vec![128, 64, 32, 16]);
        // next would be 8 <= tau, so stop
    }

    #[test]
    fn labels_propagate() {
        let t = ramp(64);
        let approx = multiscale_approximations(&t, MultiscaleOptions::with_tau(4)).unwrap();
        assert!(!approx.is_empty());
        assert!(approx.iter().all(|a| a.label() == Some(2)));
    }

    #[test]
    fn tau_zero_goes_down_to_two_points() {
        let t = ramp(64);
        let approx = multiscale_approximations(&t, MultiscaleOptions::with_tau(0)).unwrap();
        let last = approx.last().unwrap();
        assert!(
            last.len() <= 2,
            "smallest scale should be tiny, got {}",
            last.len()
        );
    }

    #[test]
    fn short_series_produce_no_scales() {
        let t = ramp(16);
        let approx = multiscale_approximations(&t, MultiscaleOptions::with_tau(15)).unwrap();
        assert!(approx.is_empty());
    }

    #[test]
    fn representation_total_points_bounded_by_2n() {
        let t = ramp(500);
        let rep = MultiscaleRepresentation::build(&t, MultiscaleOptions::with_tau(0)).unwrap();
        assert!(rep.total_points() < 2 * t.len());
        assert_eq!(rep.all_scales().len(), rep.n_scales());
        assert_eq!(rep.all_scales()[0].len(), 500);
    }

    #[test]
    fn max_scales_caps_cascade() {
        let t = ramp(1024);
        let opts = MultiscaleOptions {
            tau: 0,
            max_scales: 2,
        };
        let approx = multiscale_approximations(&t, opts).unwrap();
        assert_eq!(approx.len(), 2);
    }

    #[test]
    fn approximation_preserves_mean() {
        let t = ramp(128);
        let rep = MultiscaleRepresentation::build(&t, MultiscaleOptions::default()).unwrap();
        let orig_mean = t.mean();
        for scale in rep.approximations_only() {
            assert!((scale.mean() - orig_mean).abs() < 1e-9);
        }
    }
}
