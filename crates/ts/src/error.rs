//! Error type for the time series substrate.

use std::fmt;

/// Errors produced by the time series substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// A series was empty where a non-empty series is required.
    EmptySeries,
    /// Two series were expected to have the same length but did not.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human readable description of the violation.
        message: String,
    },
    /// A dataset file could not be parsed.
    Parse {
        /// 1-based line number of the offending record, when known.
        line: usize,
        /// Description of the parse failure.
        message: String,
    },
    /// An I/O failure while reading or writing dataset files.
    Io(String),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::EmptySeries => write!(f, "time series must not be empty"),
            TsError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
            TsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            TsError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TsError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e.to_string())
    }
}

impl TsError {
    /// Convenience constructor for [`TsError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        TsError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TsError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));

        let e = TsError::invalid("window", "must be positive");
        assert!(e.to_string().contains("window"));
        assert!(e.to_string().contains("positive"));

        let e = TsError::Parse {
            line: 7,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: TsError = io.into();
        assert!(matches!(e, TsError::Io(_)));
    }
}
