//! Symbolic Aggregate approXimation (SAX).
//!
//! SAX converts a real-valued series into a short word over a small alphabet:
//! the series is z-normalised, reduced with PAA, and each segment mean is
//! mapped to a symbol via breakpoints that equi-partition the standard normal
//! distribution. The SAX-VSM, Bag-of-Patterns and Fast Shapelets baselines
//! all build on this transform.

use crate::error::TsError;
use crate::paa::paa;
use crate::preprocess::znormalize;
use crate::Result;
use serde::{Deserialize, Serialize};

/// SAX parameters: alphabet cardinality and PAA word length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaxParams {
    /// Alphabet size (2 ..= 20).
    pub alphabet_size: usize,
    /// Number of PAA segments per word.
    pub word_length: usize,
}

impl SaxParams {
    /// Creates parameters, validating the supported ranges.
    pub fn new(alphabet_size: usize, word_length: usize) -> Result<Self> {
        if !(2..=20).contains(&alphabet_size) {
            return Err(TsError::invalid(
                "alphabet_size",
                format!("must be in [2, 20], got {alphabet_size}"),
            ));
        }
        if word_length == 0 {
            return Err(TsError::invalid("word_length", "must be positive"));
        }
        Ok(SaxParams {
            alphabet_size,
            word_length,
        })
    }
}

impl Default for SaxParams {
    fn default() -> Self {
        SaxParams {
            alphabet_size: 4,
            word_length: 8,
        }
    }
}

/// Gaussian breakpoints that divide N(0,1) into `a` equiprobable regions.
///
/// Returns `a - 1` ordered breakpoints. Values are precomputed for small
/// cardinalities (as is standard in the SAX literature) and computed by an
/// inverse-normal approximation otherwise.
pub fn gaussian_breakpoints(a: usize) -> Vec<f64> {
    match a {
        0 | 1 => Vec::new(),
        2 => vec![0.0],
        3 => vec![-0.43, 0.43],
        4 => vec![-0.67, 0.0, 0.67],
        5 => vec![-0.84, -0.25, 0.25, 0.84],
        6 => vec![-0.97, -0.43, 0.0, 0.43, 0.97],
        7 => vec![-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
        8 => vec![-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
        9 => vec![-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
        10 => vec![-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        _ => (1..a)
            .map(|i| inverse_normal_cdf(i as f64 / a as f64))
            .collect(),
    }
}

/// Acklam-style rational approximation of the standard normal quantile
/// function, accurate to roughly 1e-9 over (0, 1).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
    // Coefficients from Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Converts a raw series into a SAX word of `params.word_length` symbols
/// drawn from the alphabet `a, b, c, …`.
///
/// The series is z-normalised first (the standard SAX pipeline). Series
/// shorter than the word length are rejected.
pub fn sax_word(values: &[f64], params: SaxParams) -> Result<String> {
    if values.is_empty() {
        return Err(TsError::EmptySeries);
    }
    if values.len() < params.word_length {
        return Err(TsError::invalid(
            "word_length",
            format!(
                "series of length {} cannot produce a {}-symbol word",
                values.len(),
                params.word_length
            ),
        ));
    }
    let z = znormalize(values);
    let segments = paa(&z, params.word_length)?;
    let breakpoints = gaussian_breakpoints(params.alphabet_size);
    let word: String = segments
        .iter()
        .map(|&v| symbol_for(v, &breakpoints))
        .collect();
    Ok(word)
}

/// Maps a value to its SAX symbol given ordered breakpoints.
fn symbol_for(value: f64, breakpoints: &[f64]) -> char {
    let mut idx = 0usize;
    for &bp in breakpoints {
        if value > bp {
            idx += 1;
        } else {
            break;
        }
    }
    (b'a' + idx as u8) as char
}

/// Slides a window of `window` points across the series (step 1) and emits
/// the SAX word for every window, applying the standard numerosity reduction
/// (consecutive identical words are collapsed into one).
pub fn sax_words_sliding(values: &[f64], window: usize, params: SaxParams) -> Result<Vec<String>> {
    if window == 0 || window > values.len() {
        return Err(TsError::invalid(
            "window",
            format!(
                "window {window} invalid for series of length {}",
                values.len()
            ),
        ));
    }
    let mut out: Vec<String> = Vec::new();
    for start in 0..=(values.len() - window) {
        let word = sax_word(&values[start..start + window], params)?;
        if out.last().map(|w| w != &word).unwrap_or(true) {
            out.push(word);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakpoints_are_ordered_and_symmetric() {
        for a in 2..=12 {
            let bp = gaussian_breakpoints(a);
            assert_eq!(bp.len(), a - 1);
            for w in bp.windows(2) {
                assert!(w[0] < w[1]);
            }
            // symmetry of the normal quantiles
            for i in 0..bp.len() {
                assert!((bp[i] + bp[bp.len() - 1 - i]).abs() < 0.02);
            }
        }
    }

    #[test]
    fn inverse_normal_cdf_matches_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn sax_word_maps_low_to_a_high_to_last() {
        let mut v = vec![-2.0; 8];
        v.extend(vec![2.0; 8]);
        let params = SaxParams::new(4, 4).unwrap();
        let w = sax_word(&v, params).unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.starts_with("aa"));
        assert!(w.ends_with("dd"));
    }

    #[test]
    fn sax_word_invariant_to_scaling_and_offset() {
        let v: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.37).sin()).collect();
        let shifted: Vec<f64> = v.iter().map(|x| 100.0 + 5.0 * x).collect();
        let params = SaxParams::default();
        assert_eq!(
            sax_word(&v, params).unwrap(),
            sax_word(&shifted, params).unwrap()
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(SaxParams::new(1, 4).is_err());
        assert!(SaxParams::new(25, 4).is_err());
        assert!(SaxParams::new(4, 0).is_err());
        let params = SaxParams::default();
        assert!(sax_word(&[1.0, 2.0], params).is_err());
        assert!(sax_word(&[], params).is_err());
    }

    #[test]
    fn sliding_words_collapse_repeats() {
        let v = vec![0.0; 40];
        let params = SaxParams::new(3, 4).unwrap();
        let words = sax_words_sliding(&v, 8, params).unwrap();
        // constant series: every window yields the same word, collapsed to one
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn sliding_words_window_validation() {
        let v = vec![0.0; 10];
        let params = SaxParams::new(3, 4).unwrap();
        assert!(sax_words_sliding(&v, 0, params).is_err());
        assert!(sax_words_sliding(&v, 11, params).is_err());
    }
}
