//! Property-based round-trip suite for the UCR text format.
//!
//! The ingestion layer must be *bit-exact*: a write→read cycle may never
//! perturb a single mantissa bit, because downstream feature extraction is
//! pinned bit-for-bit by the conformance and determinism suites. These
//! properties drive arbitrary lengths, labels and adversarial `f64` values
//! (negative zero, subnormals, extreme magnitudes) through
//! [`to_ucr_string`] / [`parse_ucr`] and the file-level wrappers, and check
//! that malformed inputs come back as `Err` instead of panicking.

use proptest::prelude::*;
use tsg_ts::io::{
    parse_ucr, read_ucr_file, to_ucr_string, to_ucr_string_with, write_ucr_file,
    write_ucr_file_with, UcrSeparator,
};
use tsg_ts::{Dataset, TimeSeries};

/// Finite `f64` values biased toward the representations that break naive
/// serialisers: negative zero, subnormals, tiny and near-overflow magnitudes.
fn tricky_value() -> impl Strategy<Value = f64> {
    (0u8..6, -1e3..1e3f64, 0u64..u64::MAX).prop_map(|(kind, v, bits)| match kind {
        0 => v,
        1 => v * 1e297,                            // extreme magnitude (≤ 1e300)
        2 => f64::from_bits(bits % (1u64 << 52)),  // subnormal or zero
        3 => -f64::from_bits(bits % (1u64 << 52)), // negative subnormal
        4 => -0.0,
        _ => v * 1e-300, // tiny normal
    })
}

/// Arbitrary labeled datasets with variable series lengths (which exercises
/// the trailing-NaN padding on write) and arbitrary integer labels.
fn arbitrary_dataset() -> impl Strategy<Value = Vec<(usize, Vec<f64>)>> {
    prop::collection::vec(
        (0usize..1000, prop::collection::vec(tricky_value(), 1..16)),
        1..6,
    )
}

fn build(records: &[(usize, Vec<f64>)]) -> Dataset {
    let mut d = Dataset::new("prop");
    for (label, values) in records {
        d.push(TimeSeries::with_label(values.clone(), *label));
    }
    d
}

fn value_bits(d: &Dataset) -> Vec<Vec<u64>> {
    d.series()
        .iter()
        .map(|s| s.values().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Checks that parsed labels are a consistent relabelling of the originals:
/// same partition into classes, remapped to `0..k` in order of first
/// appearance (the documented reader contract).
fn assert_labels_consistent(original: &Dataset, parsed: &Dataset) -> Result<(), TestCaseError> {
    prop_assert_eq!(original.len(), parsed.len());
    let mut seen: Vec<usize> = Vec::new(); // original label of class index i
    for (o, p) in original.series().iter().zip(parsed.series()) {
        let (o, p) = (o.label().unwrap(), p.label().unwrap());
        match seen.iter().position(|l| *l == o) {
            // same class ⇒ same remapped index; new class ⇒ next index
            Some(idx) => prop_assert_eq!(p, idx),
            None => {
                prop_assert_eq!(p, seen.len());
                seen.push(o);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn string_roundtrip_is_bit_exact(records in arbitrary_dataset()) {
        let d = build(&records);
        let parsed = parse_ucr(&to_ucr_string(&d).unwrap(), "prop").unwrap();
        prop_assert_eq!(value_bits(&d), value_bits(&parsed));
        assert_labels_consistent(&d, &parsed)?;
    }

    #[test]
    fn tab_flavour_parses_identically(records in arbitrary_dataset()) {
        let d = build(&records);
        let comma = parse_ucr(&to_ucr_string(&d).unwrap(), "prop").unwrap();
        let tab = parse_ucr(&to_ucr_string_with(&d, UcrSeparator::Tab).unwrap(), "prop").unwrap();
        prop_assert_eq!(comma, tab);
    }

    #[test]
    fn file_roundtrip_is_bit_exact(records in arbitrary_dataset(), tab in 0u8..2) {
        let d = build(&records);
        let dir = std::env::temp_dir().join(format!("tsg_ucr_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("prop_{tab}_TRAIN.txt"));
        if tab == 1 {
            write_ucr_file_with(&d, &path, UcrSeparator::Tab).unwrap();
        } else {
            write_ucr_file(&d, &path).unwrap();
        }
        let parsed = read_ucr_file(&path).unwrap();
        prop_assert_eq!(value_bits(&d), value_bits(&parsed));
        assert_labels_consistent(&d, &parsed)?;
    }

    #[test]
    fn corrupting_one_token_is_an_error_not_a_panic(
        records in arbitrary_dataset(),
        pick in 0usize..1000,
    ) {
        let d = build(&records);
        let good = to_ucr_string(&d).unwrap();
        // replace one value token with garbage
        let mut tokens: Vec<String> = good.lines().next().unwrap()
            .split(',').map(str::to_string).collect();
        let slot = 1 + pick % (tokens.len() - 1);
        tokens[slot] = "x42x".into();
        let mut corrupted: Vec<String> = good.lines().map(str::to_string).collect();
        corrupted[0] = tokens.join(",");
        prop_assert!(parse_ucr(&corrupted.join("\n"), "bad").is_err());
    }

    #[test]
    fn ragged_extension_is_an_error(records in arbitrary_dataset()) {
        let good = to_ucr_string(&build(&records)).unwrap();
        // append a record with one extra field: ragged, must not parse
        let first = good.lines().next().unwrap();
        let ragged = format!("{good}{first},1.5\n");
        prop_assert!(parse_ucr(&ragged, "bad").is_err());
    }
}

#[test]
fn empty_and_whitespace_only_files_are_errors() {
    assert!(parse_ucr("", "bad").is_err());
    assert!(parse_ucr("  \n\t\n", "bad").is_err());
}

#[test]
fn reading_a_missing_file_is_an_error() {
    assert!(read_ucr_file("/nonexistent/lone_TRAIN.txt").is_err());
}
