//! Property-based tests for the time series substrate.

use proptest::prelude::*;
use tsg_ts::distance::{dtw, dtw_windowed, euclidean, lb_keogh};
use tsg_ts::multiscale::{multiscale_approximations, MultiscaleOptions};
use tsg_ts::paa::{halve, paa};
use tsg_ts::preprocess::{detrend, minmax_scale, znormalize};
use tsg_ts::sax::{sax_word, SaxParams};
use tsg_ts::series::TimeSeries;

fn finite_series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paa_preserves_global_mean(values in finite_series(128), frac in 2usize..10) {
        let segments = (values.len() / frac).max(1);
        let reduced = paa(&values, segments).unwrap();
        let mean_full: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let mean_red: f64 = reduced.iter().sum::<f64>() / reduced.len() as f64;
        prop_assert!((mean_full - mean_red).abs() < 1e-6);
        prop_assert_eq!(reduced.len(), segments);
    }

    #[test]
    fn paa_of_constant_series_is_constant(value in -100.0..100.0f64, n in 4usize..64, s in 1usize..4) {
        let values = vec![value; n];
        let reduced = paa(&values, s.min(n)).unwrap();
        for v in reduced {
            prop_assert!((v - value).abs() < 1e-9);
        }
    }

    #[test]
    fn halve_produces_half_length(values in finite_series(200)) {
        let h = halve(&values).unwrap();
        prop_assert_eq!(h.len(), values.len().div_ceil(2));
    }

    #[test]
    fn znormalize_bounds(values in finite_series(128)) {
        let z = znormalize(&values);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        prop_assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn minmax_is_bounded(values in finite_series(128)) {
        let m = minmax_scale(&values);
        prop_assert!(m.iter().all(|v| (-1e-9..=1.0 + 1e-9).contains(v)));
    }

    #[test]
    fn detrend_keeps_length(values in finite_series(128)) {
        prop_assert_eq!(detrend(&values).len(), values.len());
    }

    #[test]
    fn dtw_is_symmetric_and_nonnegative(a in finite_series(48), b in finite_series(48)) {
        let d1 = dtw(&a, &b).unwrap();
        let d2 = dtw(&b, &a).unwrap();
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn dtw_identity_is_zero(a in finite_series(48)) {
        prop_assert!(dtw(&a, &a).unwrap().abs() < 1e-9);
    }

    #[test]
    fn dtw_bounded_by_euclidean(a in prop::collection::vec(-100.0..100.0f64, 16), b in prop::collection::vec(-100.0..100.0f64, 16)) {
        let d = dtw(&a, &b).unwrap();
        let e = euclidean(&a, &b).unwrap();
        prop_assert!(d <= e + 1e-9);
    }

    #[test]
    fn windowed_dtw_monotone_in_window(a in prop::collection::vec(-10.0..10.0f64, 24), b in prop::collection::vec(-10.0..10.0f64, 24)) {
        let narrow = dtw_windowed(&a, &b, 0.1).unwrap();
        let wide = dtw_windowed(&a, &b, 0.5).unwrap();
        let full = dtw(&a, &b).unwrap();
        prop_assert!(wide <= narrow + 1e-9);
        prop_assert!(full <= wide + 1e-9);
    }

    #[test]
    fn lb_keogh_lower_bounds_windowed_dtw(a in prop::collection::vec(-10.0..10.0f64, 32), b in prop::collection::vec(-10.0..10.0f64, 32)) {
        let band = 4usize;
        let lb = lb_keogh(&a, &b, band).unwrap();
        let d = dtw_windowed(&a, &b, band as f64 / 32.0).unwrap();
        prop_assert!(lb <= d + 1e-6, "lb {} > dtw {}", lb, d);
    }

    #[test]
    fn multiscale_lengths_strictly_decrease(values in finite_series(512)) {
        let t = TimeSeries::new(values);
        let scales = multiscale_approximations(&t, MultiscaleOptions::with_tau(4)).unwrap();
        let mut prev = t.len();
        for s in &scales {
            prop_assert!(s.len() < prev);
            prop_assert!(s.len() >= 2);
            prev = s.len();
        }
    }

    #[test]
    fn sax_word_has_requested_length(values in finite_series(128), word_len in 2usize..8, alpha in 2usize..10) {
        prop_assume!(values.len() >= word_len);
        let params = SaxParams::new(alpha, word_len).unwrap();
        let w = sax_word(&values, params).unwrap();
        prop_assert_eq!(w.len(), word_len);
        let max_char = (b'a' + (alpha as u8) - 1) as char;
        prop_assert!(w.chars().all(|c| c >= 'a' && c <= max_char));
    }

    #[test]
    fn sax_word_affine_invariant(values in finite_series(64), scale in 0.1..10.0f64, offset in -100.0..100.0f64) {
        prop_assume!(values.len() >= 8);
        let std: f64 = {
            let m = values.iter().sum::<f64>() / values.len() as f64;
            (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
        };
        prop_assume!(std > 1e-6);
        let params = SaxParams::default();
        let transformed: Vec<f64> = values.iter().map(|v| offset + scale * v).collect();
        prop_assert_eq!(sax_word(&values, params).unwrap(), sax_word(&transformed, params).unwrap());
    }
}
