//! Algorithm 1: building MVGs and extracting statistical features.
//!
//! A [`FeatureConfig`] pins down one point in the paper's design space —
//! which graph kinds (VG / HVG / both), which scales (UVG / AMVG / MVG),
//! whether the scalar statistics accompany the motif probability
//! distributions, and (beyond the paper) whether the per-series statistical
//! layer of the [catalogue](crate::catalogue) is appended and whether an
//! importance-chosen [`FeatureSelection`] prunes the wide vector down to a
//! compact subset. [`extract_series_features`] turns one series into a flat
//! feature vector under that configuration and
//! [`extract_dataset_features`] maps a whole dataset into a
//! [`FeatureMatrix`] (in parallel), producing the input of the generic
//! classifiers.
//!
//! With a selection attached the extractor computes **only what the subset
//! needs**: graphs whose features were all pruned away are never built,
//! motif censuses run only where a motif probability survived, and the
//! statistical families are computed family-by-family on demand. Pruned
//! extraction is exactly a column selection of wide extraction, bit-for-bit
//! (pinned by `tests/determinism.rs`).

use crate::catalogue::{
    compute_stat_family, stat_family_names, FeatureSelection, StatFamily, StatisticalConfig,
};
use crate::graph_features::{block_len, graph_feature_names};
use crate::motif_groups::motif_probability_distribution;
use crate::parallel::parallel_map;
use crate::representation::{scale_values_with_sink, ScaleMode};
use crate::trace::{ExtractStage, NoopTraceSink, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use tsg_graph::motifs::{count_motifs, count_motifs_with, MotifWorkspace};
use tsg_graph::stats::GraphStatistics;
use tsg_graph::visibility::VisibilityKind;
use tsg_graph::{Graph, MotifCounts};
use tsg_ml::data::FeatureMatrix;
use tsg_ts::multiscale::MultiscaleOptions;
use tsg_ts::preprocess::detrend;
use tsg_ts::{Dataset, TimeSeries};

/// Configuration of the feature extraction stage.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Which visibility criteria to build graphs with.
    pub kinds: Vec<VisibilityKind>,
    /// Which scales to include (UVG / AMVG / MVG).
    pub scale_mode: ScaleMode,
    /// Whether density/coreness/assortativity/degree statistics are appended
    /// to the motif probability distributions.
    pub include_other_stats: bool,
    /// Multiscale cascade options (`τ`).
    pub multiscale: MultiscaleOptions,
    /// Remove the least-squares linear trend before graph construction
    /// (visibility graphs do not handle monotone trends well, §2.1).
    pub detrend: bool,
    /// The per-series statistical layer of the catalogue (disabled by
    /// default: the paper's configurations are pure graph features).
    pub statistical: StatisticalConfig,
    /// Optional importance-chosen subset of the wide catalogue. When set,
    /// extraction produces exactly `selection.len()` features in selection
    /// order and skips every computation the subset does not need.
    pub selection: Option<FeatureSelection>,
}

// The `Debug` rendering feeds `MvgClassifier::config_fingerprint`, which is
// persisted in model snapshots. The two catalogue fields are appended only
// when they deviate from their defaults so every pre-catalogue
// configuration keeps its historical fingerprint and old snapshots still
// load.
impl fmt::Debug for FeatureConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("FeatureConfig");
        s.field("kinds", &self.kinds)
            .field("scale_mode", &self.scale_mode)
            .field("include_other_stats", &self.include_other_stats)
            .field("multiscale", &self.multiscale)
            .field("detrend", &self.detrend);
        if self.statistical != StatisticalConfig::default() {
            s.field("statistical", &self.statistical);
        }
        if let Some(selection) = &self.selection {
            s.field("selection", selection);
        }
        s.finish()
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig::mvg()
    }
}

impl FeatureConfig {
    /// The paper's full configuration (column G of Table 2): VG + HVG, all
    /// scales, all features.
    pub fn mvg() -> Self {
        FeatureConfig {
            kinds: vec![VisibilityKind::Natural, VisibilityKind::Horizontal],
            scale_mode: ScaleMode::FullMultiscale,
            include_other_stats: true,
            multiscale: MultiscaleOptions::default(),
            detrend: false,
            statistical: StatisticalConfig::default(),
            selection: None,
        }
    }

    /// The wide catalogue: the paper's full MVG graph features plus the
    /// per-series statistical layer — the fit-wide-then-prune starting
    /// point.
    pub fn wide() -> Self {
        FeatureConfig {
            statistical: StatisticalConfig::standard(),
            ..FeatureConfig::mvg()
        }
    }

    /// Column E of Table 2: VG + HVG on the original scale only.
    pub fn uvg() -> Self {
        FeatureConfig {
            scale_mode: ScaleMode::Uniscale,
            ..FeatureConfig::mvg()
        }
    }

    /// Column F of Table 2: VG + HVG on the approximated scales only.
    pub fn amvg() -> Self {
        FeatureConfig {
            scale_mode: ScaleMode::ApproximatedMultiscale,
            ..FeatureConfig::mvg()
        }
    }

    /// A single-kind uniscale configuration (columns A–D of Table 2).
    pub fn uniscale_single(kind: VisibilityKind, include_other_stats: bool) -> Self {
        FeatureConfig {
            kinds: vec![kind],
            scale_mode: ScaleMode::Uniscale,
            include_other_stats,
            multiscale: MultiscaleOptions::default(),
            detrend: false,
            statistical: StatisticalConfig::default(),
            selection: None,
        }
    }

    /// Short label used in experiment tables (e.g. `"MVG VG+HVG All"`).
    pub fn label(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| k.short_name())
            .collect::<Vec<_>>()
            .join("+");
        let features = if self.include_other_stats {
            "All"
        } else {
            "MPDs"
        };
        format!("{} {} {}", self.scale_mode.short_name(), kinds, features)
    }

    /// Number of PAA halvings a series of length `len` admits — the single
    /// source of truth shared by scale counting, feature naming and the
    /// multiscale cascade itself.
    fn halvings_for_length(&self, len: usize) -> usize {
        let mut halvings = 0usize;
        let mut current = len;
        while current / 2 > self.multiscale.tau
            && current >= 2
            && halvings < self.multiscale.max_scales
        {
            current /= 2;
            halvings += 1;
        }
        halvings
    }

    /// The scale indices the configuration produces for a series of length
    /// `len`, in wide-vector order (`0` = the original series; AMVG falls
    /// back to `[0]` when the series is too short to downscale).
    pub fn scale_indices_for_length(&self, len: usize) -> Vec<usize> {
        let halvings = self.halvings_for_length(len);
        match self.scale_mode {
            ScaleMode::Uniscale => vec![0],
            ScaleMode::ApproximatedMultiscale => {
                if halvings == 0 {
                    vec![0]
                } else {
                    (1..=halvings).collect()
                }
            }
            ScaleMode::FullMultiscale => (0..=halvings).collect(),
        }
    }

    /// Number of scales the configuration produces for a series of length
    /// `len`.
    pub fn n_scales_for_length(&self, len: usize) -> usize {
        self.scale_indices_for_length(len).len()
    }

    /// Number of features produced for a series of length `len`.
    pub fn n_features_for_length(&self, len: usize) -> usize {
        if let Some(selection) = &self.selection {
            return selection.len();
        }
        self.n_scales_for_length(len) * self.kinds.len() * block_len(self.include_other_stats)
            + self.statistical.n_features()
    }

    /// Feature names for a series of length `len`, e.g. `T0 HVG P(M44)` or
    /// `T2 VG assortativity` (the naming used in Figure 10), followed by
    /// the `stat …` names of the statistical layer when enabled. With a
    /// selection attached the names are the selection itself,
    /// length-independent.
    pub fn feature_names_for_length(&self, len: usize) -> Vec<String> {
        if let Some(selection) = &self.selection {
            return selection.names().to_vec();
        }
        let block_names = graph_feature_names(self.include_other_stats);
        let mut out = Vec::with_capacity(self.n_features_for_length(len));
        for scale in self.scale_indices_for_length(len) {
            for kind in &self.kinds {
                for name in &block_names {
                    out.push(format!("T{} {} {}", scale, kind.short_name(), name));
                }
            }
        }
        out.extend(self.statistical.feature_names());
        out
    }

    /// Whether `name` denotes a feature this configuration's catalogue can
    /// produce for *some* series length — the membership test behind
    /// [`FeatureSelection::validate`].
    pub fn is_known_feature_name(&self, name: &str) -> bool {
        if self.statistical.enabled && self.statistical.feature_names().iter().any(|n| n == name) {
            return true;
        }
        let Some(rest) = name.strip_prefix('T') else {
            return false;
        };
        let Some((scale_str, rest)) = rest.split_once(' ') else {
            return false;
        };
        let Ok(scale) = scale_str.parse::<usize>() else {
            return false;
        };
        let Some((kind_str, block_name)) = rest.split_once(' ') else {
            return false;
        };
        if !self.kinds.iter().any(|k| k.short_name() == kind_str) {
            return false;
        }
        if !graph_feature_names(self.include_other_stats)
            .iter()
            .any(|n| n == block_name)
        {
            return false;
        }
        // a series of length L admits at most log2(L) halvings, and T0 is
        // reachable under every mode (AMVG falls back to it)
        scale < 64
            && scale <= self.multiscale.max_scales
            && (self.scale_mode != ScaleMode::Uniscale || scale == 0)
    }
}

/// Extracts the feature vector of one series under `config` (Algorithm 1),
/// reusing the calling thread's motif workspace (the thread-local inside
/// [`tsg_graph::motifs::count_motifs`]).
pub fn extract_series_features(series: &TimeSeries, config: &FeatureConfig) -> Vec<f64> {
    extract_features_impl(series, config, &mut NoopTraceSink, |graph, _| {
        count_motifs(graph)
    })
}

/// [`extract_series_features`] with a caller-held motif workspace (the
/// scratch memory of the hottest kernel; see
/// [`tsg_graph::motifs::MotifWorkspace`]).
pub fn extract_series_features_with(
    series: &TimeSeries,
    config: &FeatureConfig,
    workspace: &mut MotifWorkspace,
) -> Vec<f64> {
    extract_features_impl(series, config, &mut NoopTraceSink, |graph, _| {
        count_motifs_with(graph, workspace)
    })
}

/// [`extract_series_features_with`] with a [`TraceSink`] observing the
/// `Scale`/`GraphBuild`/`MotifCount`/`Statistical` sub-stages — the seam
/// the serving layer uses for per-request latency attribution. The sink
/// only receives callbacks (this crate stays clock-free); the returned
/// features are bit-identical to the untraced entry points.
pub fn extract_series_features_traced<S: TraceSink>(
    series: &TimeSeries,
    config: &FeatureConfig,
    workspace: &mut MotifWorkspace,
    sink: &mut S,
) -> Vec<f64> {
    extract_features_impl(series, config, sink, |graph, sink| {
        sink.enter(ExtractStage::MotifCount);
        let counts = count_motifs_with(graph, workspace);
        sink.exit(ExtractStage::MotifCount);
        counts
    })
}

fn extract_features_impl<S: TraceSink>(
    series: &TimeSeries,
    config: &FeatureConfig,
    sink: &mut S,
    census: impl FnMut(&Graph, &mut S) -> MotifCounts,
) -> Vec<f64> {
    let prepared;
    let series = if config.detrend {
        prepared = TimeSeries::new(detrend(series.values()));
        &prepared
    } else {
        series
    };
    match &config.selection {
        None => extract_wide(series, config, sink, census),
        Some(selection) => extract_selected(series, config, selection, sink, census),
    }
}

/// The full catalogue: every graph block in scale-then-kind order, then the
/// statistical layer.
fn extract_wide<S: TraceSink>(
    series: &TimeSeries,
    config: &FeatureConfig,
    sink: &mut S,
    mut census: impl FnMut(&Graph, &mut S) -> MotifCounts,
) -> Vec<f64> {
    let scale_values = scale_values_with_sink(series, config.scale_mode, config.multiscale, sink);
    let mut features = Vec::with_capacity(
        scale_values.len() * config.kinds.len() * block_len(config.include_other_stats)
            + config.statistical.n_features(),
    );
    for (_, values) in &scale_values {
        for &kind in &config.kinds {
            sink.enter(ExtractStage::GraphBuild);
            let graph = kind.build(values);
            sink.exit(ExtractStage::GraphBuild);
            let counts = census(&graph, sink);
            features.extend(motif_probability_distribution(&counts));
            if config.include_other_stats {
                features.extend(GraphStatistics::compute(&graph).to_features());
            }
        }
    }
    if config.statistical.enabled {
        sink.enter(ExtractStage::Statistical);
        features.extend(config.statistical.compute(series.values()));
        sink.exit(ExtractStage::Statistical);
    }
    features
}

/// Where one selected column's value comes from.
#[derive(Clone, Copy)]
enum ColumnSpec {
    /// Motif probability `idx` of the graph at `slot` (scale-major, then
    /// kind).
    Motif { slot: usize, idx: usize },
    /// Scalar graph statistic `idx` of the graph at `slot`.
    GraphStat { slot: usize, idx: usize },
    /// Feature `idx` of one per-series statistical family.
    Stat { family: StatFamily, idx: usize },
}

/// Pruned extraction: compute only the graphs, censuses and statistical
/// families the selection needs, then emit columns in selection order.
/// Selected names that do not exist at this series length (e.g. a scale the
/// series is too short to produce) yield `0.0`, mirroring the zero-padding
/// of the wide path.
fn extract_selected<S: TraceSink>(
    series: &TimeSeries,
    config: &FeatureConfig,
    selection: &FeatureSelection,
    sink: &mut S,
    mut census: impl FnMut(&Graph, &mut S) -> MotifCounts,
) -> Vec<f64> {
    let scales = config.scale_indices_for_length(series.len());
    let n_kinds = config.kinds.len();
    let block_names = graph_feature_names(config.include_other_stats);

    // the wide layout of this series length, as name -> column source
    let mut spec_of: BTreeMap<String, ColumnSpec> = BTreeMap::new();
    for (si, &scale) in scales.iter().enumerate() {
        for (ki, kind) in config.kinds.iter().enumerate() {
            let slot = si * n_kinds + ki;
            for (bi, block_name) in block_names.iter().enumerate() {
                let name = format!("T{} {} {}", scale, kind.short_name(), block_name);
                let spec = if bi < block_len(false) {
                    ColumnSpec::Motif { slot, idx: bi }
                } else {
                    ColumnSpec::GraphStat {
                        slot,
                        idx: bi - block_len(false),
                    }
                };
                spec_of.insert(name, spec);
            }
        }
    }
    if config.statistical.enabled {
        for family in StatFamily::ALL {
            for (idx, name) in stat_family_names(family, &config.statistical)
                .into_iter()
                .enumerate()
            {
                spec_of.insert(name, ColumnSpec::Stat { family, idx });
            }
        }
    }
    let columns: Vec<Option<ColumnSpec>> = selection
        .names()
        .iter()
        .map(|name| spec_of.get(name).copied())
        .collect();

    // which graphs (and which halves of their blocks) the columns touch
    let n_slots = scales.len() * n_kinds;
    let mut need_motifs = vec![false; n_slots];
    let mut need_stats = vec![false; n_slots];
    let mut needed_families: Vec<StatFamily> = Vec::new();
    for spec in columns.iter().flatten() {
        match spec {
            ColumnSpec::Motif { slot, .. } => need_motifs[*slot] = true,
            ColumnSpec::GraphStat { slot, .. } => need_stats[*slot] = true,
            ColumnSpec::Stat { family, .. } => {
                if !needed_families.contains(family) {
                    needed_families.push(*family);
                }
            }
        }
    }

    let scale_values = scale_values_with_sink(series, config.scale_mode, config.multiscale, sink);
    debug_assert_eq!(
        scale_values.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        scales,
        "scale layout must match the cascade"
    );
    let mut motif_probs: Vec<Option<Vec<f64>>> = vec![None; n_slots];
    let mut graph_stats: Vec<Option<Vec<f64>>> = vec![None; n_slots];
    for (si, (_, values)) in scale_values.iter().enumerate() {
        for (ki, &kind) in config.kinds.iter().enumerate() {
            let slot = si * n_kinds + ki;
            if slot >= n_slots || (!need_motifs[slot] && !need_stats[slot]) {
                continue;
            }
            sink.enter(ExtractStage::GraphBuild);
            let graph = kind.build(values);
            sink.exit(ExtractStage::GraphBuild);
            if need_motifs[slot] {
                let counts = census(&graph, sink);
                motif_probs[slot] = Some(motif_probability_distribution(&counts));
            }
            if need_stats[slot] {
                graph_stats[slot] = Some(GraphStatistics::compute(&graph).to_features());
            }
        }
    }

    let mut family_values: BTreeMap<StatFamily, Vec<f64>> = BTreeMap::new();
    if !needed_families.is_empty() {
        sink.enter(ExtractStage::Statistical);
        for family in StatFamily::ALL {
            if needed_families.contains(&family) {
                family_values.insert(
                    family,
                    compute_stat_family(family, &config.statistical, series.values()),
                );
            }
        }
        sink.exit(ExtractStage::Statistical);
    }

    let lookup = |stored: &[Option<Vec<f64>>], slot: usize, idx: usize| {
        stored
            .get(slot)
            .and_then(|s| s.as_ref())
            .and_then(|v| v.get(idx))
            .copied()
            .unwrap_or(0.0)
    };
    columns
        .iter()
        .map(|spec| match spec {
            None => 0.0,
            Some(ColumnSpec::Motif { slot, idx }) => lookup(&motif_probs, *slot, *idx),
            Some(ColumnSpec::GraphStat { slot, idx }) => lookup(&graph_stats, *slot, *idx),
            Some(ColumnSpec::Stat { family, idx }) => family_values
                .get(family)
                .and_then(|v| v.get(*idx))
                .copied()
                .unwrap_or(0.0),
        })
        .collect()
}

/// Extracts features for every series of a dataset, in parallel, and returns
/// the feature matrix together with the matching feature names.
///
/// Rows are padded with zeros (or truncated) to the width implied by the
/// longest series in the dataset, so datasets with slightly varying lengths
/// still produce a rectangular matrix. Each pool worker reuses one
/// thread-local [`MotifWorkspace`] across every series it claims; the
/// workspace never influences results (`tests/determinism.rs` pins
/// reused == fresh bit-for-bit), only allocation traffic.
pub fn extract_dataset_features(
    dataset: &Dataset,
    config: &FeatureConfig,
    n_threads: usize,
) -> (FeatureMatrix, Vec<String>) {
    let max_len = dataset.max_length();
    let names = config.feature_names_for_length(max_len);
    let width = names.len();
    let rows: Vec<Vec<f64>> = parallel_map(dataset.series(), n_threads, |series| {
        let mut f = extract_series_features(series, config);
        f.resize(width, 0.0);
        f
    });
    let matrix = FeatureMatrix::from_rows(&rows).expect("uniform feature rows");
    (matrix, names)
}

/// Output of [`extract_features_streaming`]: the feature matrix, the
/// matching feature names, and the label carried by each consumed series
/// (in input order, `None` for unlabeled instances).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedFeatures {
    /// One feature row per consumed series.
    pub features: FeatureMatrix,
    /// Column names (width implied by `max_length`).
    pub names: Vec<String>,
    /// Per-series labels in input order.
    pub labels: Vec<Option<usize>>,
}

impl StreamedFeatures {
    /// The labels, erroring if any consumed series was unlabeled.
    pub fn labels_required(&self) -> crate::Result<Vec<usize>> {
        self.labels
            .iter()
            .map(|l| {
                l.ok_or_else(|| {
                    tsg_ml::MlError::InvalidData("stream contains unlabeled series".into())
                })
            })
            .collect()
    }
}

/// Extracts features from a *stream* of series, chunk-wise on the shared
/// worker pool, without ever materialising the full split.
///
/// This is the streaming counterpart of [`extract_dataset_features`]: the
/// iterator (typically a `tsg_datasets` `SplitStream`) is drained in bounded
/// chunks; each chunk is extracted in parallel, flattened into the row-major
/// output buffer, and dropped before the next chunk is pulled — so peak
/// memory is `O(chunk)` series plus the growing feature matrix, never the
/// whole `Vec<TimeSeries>`. `max_length` is the maximum series length of the
/// split (streams know it up front) and determines the row width, exactly as
/// `dataset.max_length()` does on the eager path; shorter feature rows are
/// zero-padded identically, so **streaming and eager extraction are
/// bit-identical** for the same input series (pinned by
/// `tests/determinism.rs` and the conformance suite).
///
/// The first `Err` yielded by the stream aborts extraction and is returned.
pub fn extract_features_streaming<E>(
    series: impl IntoIterator<Item = std::result::Result<TimeSeries, E>>,
    max_length: usize,
    config: &FeatureConfig,
    n_threads: usize,
) -> std::result::Result<StreamedFeatures, E> {
    let names = config.feature_names_for_length(max_length);
    let width = names.len();
    // chunks sized a few multiples of the worker count keep every worker
    // busy (the pool sub-chunks dynamically) while bounding residency
    let chunk_capacity = tsg_parallel::resolve_threads(n_threads).max(1) * 16;
    let mut labels: Vec<Option<usize>> = Vec::new();
    let mut flat: Vec<f64> = Vec::new();
    let mut buffer: Vec<TimeSeries> = Vec::with_capacity(chunk_capacity);
    let flush = |buffer: &mut Vec<TimeSeries>, flat: &mut Vec<f64>| {
        let rows: Vec<Vec<f64>> = parallel_map(buffer, n_threads, |series| {
            let mut f = extract_series_features(series, config);
            f.resize(width, 0.0);
            f
        });
        for row in rows {
            flat.extend_from_slice(&row);
        }
        buffer.clear();
    };
    for item in series {
        let s = item?;
        labels.push(s.label());
        buffer.push(s);
        if buffer.len() == chunk_capacity {
            flush(&mut buffer, &mut flat);
        }
    }
    flush(&mut buffer, &mut flat);
    let features =
        FeatureMatrix::from_flat(flat, labels.len(), width).expect("chunk rows share one width");
    Ok(StreamedFeatures {
        features,
        names,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn toy_dataset(n_per_class: usize, len: usize) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut d = Dataset::new("toy");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let values = if label == 0 {
                generators::sine_wave(&mut rng, len, 16.0, 1.0, 0.0, 0.1)
            } else {
                generators::gaussian_noise(&mut rng, len, 1.0)
            };
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn feature_vector_matches_names_for_all_configs() {
        let series = TimeSeries::new((0..256).map(|i| ((i as f64) * 0.17).sin()).collect());
        let configs = [
            FeatureConfig::mvg(),
            FeatureConfig::uvg(),
            FeatureConfig::amvg(),
            FeatureConfig::wide(),
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false),
            FeatureConfig::uniscale_single(VisibilityKind::Natural, true),
        ];
        for config in configs {
            let features = extract_series_features(&series, &config);
            let names = config.feature_names_for_length(series.len());
            assert_eq!(
                features.len(),
                names.len(),
                "mismatch for config {}",
                config.label()
            );
            assert_eq!(features.len(), config.n_features_for_length(series.len()));
            assert!(features.iter().all(|v| v.is_finite()));
        }
    }

    // The satellite property: the two name/count sources can never drift
    // again, for every scale mode, statistical layer and length 1..=512.
    #[test]
    fn names_and_counts_agree_for_all_lengths_and_modes() {
        let mut configs = vec![
            FeatureConfig::mvg(),
            FeatureConfig::uvg(),
            FeatureConfig::amvg(),
            FeatureConfig::wide(),
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false),
        ];
        configs.push(FeatureConfig {
            statistical: StatisticalConfig::standard(),
            ..FeatureConfig::amvg()
        });
        for config in &configs {
            for len in 1..=512usize {
                let names = config.feature_names_for_length(len);
                assert_eq!(
                    names.len(),
                    config.n_features_for_length(len),
                    "config {} length {len}",
                    config.label()
                );
                assert_eq!(
                    config.n_scales_for_length(len),
                    config.scale_indices_for_length(len).len()
                );
            }
        }
        // and extraction itself matches the predicted width on a sample
        for config in &configs {
            for len in [1usize, 2, 5, 16, 31, 32, 33, 100, 128] {
                let series = TimeSeries::new((0..len).map(|i| ((i as f64) * 0.3).sin()).collect());
                let features = extract_series_features(&series, config);
                assert_eq!(
                    features.len(),
                    config.n_features_for_length(len),
                    "config {} length {len}",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn wide_config_appends_statistical_layer_after_graph_block() {
        let series = TimeSeries::new((0..256).map(|i| ((i as f64) * 0.17).sin()).collect());
        let graph_only = extract_series_features(&series, &FeatureConfig::mvg());
        let wide = extract_series_features(&series, &FeatureConfig::wide());
        assert_eq!(
            wide.len(),
            graph_only.len() + StatisticalConfig::standard().n_features()
        );
        // the graph prefix is bit-identical: the layer only appends
        assert_eq!(&wide[..graph_only.len()], &graph_only[..]);
        let names = FeatureConfig::wide().feature_names_for_length(256);
        assert!(names[graph_only.len()..]
            .iter()
            .all(|n| n.starts_with("stat ")));
    }

    #[test]
    fn selection_extracts_exactly_the_chosen_wide_columns() {
        let series = TimeSeries::new(
            (0..200)
                .map(|i| ((i as f64) * 0.21).sin() + 0.2 * ((i as f64) * 0.037).cos())
                .collect(),
        );
        let wide_config = FeatureConfig::wide();
        let wide = extract_series_features(&series, &wide_config);
        let wide_names = wide_config.feature_names_for_length(series.len());
        // every 7th column, covering motifs, graph stats and stat families
        let chosen: Vec<String> = wide_names.iter().step_by(7).cloned().collect();
        let pruned_config = FeatureConfig {
            selection: Some(FeatureSelection::new(chosen.clone())),
            ..FeatureConfig::wide()
        };
        let pruned = extract_series_features(&series, &pruned_config);
        assert_eq!(pruned.len(), chosen.len());
        for (i, name) in chosen.iter().enumerate() {
            let wide_idx = wide_names.iter().position(|n| n == name).unwrap();
            assert_eq!(
                pruned[i].to_bits(),
                wide[wide_idx].to_bits(),
                "column {name} differs"
            );
        }
        assert_eq!(pruned_config.feature_names_for_length(series.len()), chosen);
        assert_eq!(
            pruned_config.n_features_for_length(series.len()),
            chosen.len()
        );
    }

    #[test]
    fn selection_of_missing_scale_yields_zero_not_panic() {
        // scale T5 requires a long series; a short one must produce 0.0
        let selection =
            FeatureSelection::new(vec!["T0 VG P(M44)".to_string(), "T5 VG P(M44)".to_string()]);
        let config = FeatureConfig {
            selection: Some(selection),
            ..FeatureConfig::mvg()
        };
        let short = TimeSeries::new((0..40).map(|i| (i as f64 * 0.4).sin()).collect());
        let features = extract_series_features(&short, &config);
        assert_eq!(features.len(), 2);
        assert!(features[0] > 0.0);
        assert_eq!(features[1], 0.0);
    }

    #[test]
    fn known_feature_names_follow_the_catalogue() {
        let wide = FeatureConfig::wide();
        assert!(wide.is_known_feature_name("T0 VG P(M44)"));
        assert!(wide.is_known_feature_name("T7 HVG assortativity"));
        assert!(wide.is_known_feature_name("stat mean"));
        assert!(wide.is_known_feature_name("stat fft_mag_8"));
        assert!(!wide.is_known_feature_name("stat fft_mag_9"));
        assert!(!wide.is_known_feature_name("T0 VG bogus_feature"));
        assert!(!wide.is_known_feature_name("bogus"));
        assert!(!wide.is_known_feature_name("T999999999999999999999 VG P(M44)"));

        let mvg = FeatureConfig::mvg();
        assert!(!mvg.is_known_feature_name("stat mean"), "layer disabled");
        let uvg = FeatureConfig::uvg();
        assert!(uvg.is_known_feature_name("T0 VG P(M44)"));
        assert!(!uvg.is_known_feature_name("T1 VG P(M44)"), "uniscale");
        let mpds = FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false);
        assert!(!mpds.is_known_feature_name("T0 HVG assortativity"));
        assert!(
            !mpds.is_known_feature_name("T0 VG P(M44)"),
            "kind not built"
        );
    }

    #[test]
    fn selection_validation_rejects_unknown_duplicate_and_empty() {
        let wide = FeatureConfig::wide();
        let ok = FeatureSelection::new(vec!["T0 VG P(M44)".into(), "stat mean".into()]);
        assert!(ok.validate(&wide).is_ok());
        let unknown = FeatureSelection::new(vec!["T0 VG nope".into()]);
        assert!(unknown
            .validate(&wide)
            .unwrap_err()
            .contains("not in the running catalogue"));
        let dup = FeatureSelection::new(vec!["stat mean".into(), "stat mean".into()]);
        assert!(dup.validate(&wide).unwrap_err().contains("duplicate"));
        let empty = FeatureSelection::new(vec![]);
        assert!(empty.validate(&wide).is_err());
    }

    #[test]
    fn legacy_debug_rendering_is_unchanged_for_pre_catalogue_configs() {
        // the fingerprint (and therefore snapshot compatibility) of every
        // pre-catalogue configuration depends on this exact rendering
        let rendered = format!("{:?}", FeatureConfig::uvg());
        assert!(!rendered.contains("statistical"), "{rendered}");
        assert!(!rendered.contains("selection"), "{rendered}");
        assert!(rendered.starts_with("FeatureConfig { kinds: [Natural, Horizontal]"));
        let wide = format!("{:?}", FeatureConfig::wide());
        assert!(wide.contains("statistical"), "{wide}");
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(FeatureConfig::mvg().label(), "MVG VG+HVG All");
        assert_eq!(FeatureConfig::uvg().label(), "UVG VG+HVG All");
        assert_eq!(
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false).label(),
            "UVG HVG MPDs"
        );
    }

    #[test]
    fn mvg_has_more_features_than_uvg() {
        let len = 512;
        assert!(
            FeatureConfig::mvg().n_features_for_length(len)
                > FeatureConfig::uvg().n_features_for_length(len)
        );
        assert_eq!(
            FeatureConfig::mvg().n_features_for_length(len),
            FeatureConfig::uvg().n_features_for_length(len)
                + FeatureConfig::amvg().n_features_for_length(len)
        );
    }

    #[test]
    fn dataset_extraction_shapes() {
        let d = toy_dataset(5, 128);
        let config = FeatureConfig::mvg();
        let (x, names) = extract_dataset_features(&d, &config, 2);
        assert_eq!(x.n_rows(), d.len());
        assert_eq!(x.n_cols(), names.len());
        assert!(x.rows().all(|r| r.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn streaming_extraction_matches_eager_bitwise() {
        let d = toy_dataset(9, 96); // 18 series: exercises a partial chunk
        for config in [
            FeatureConfig::mvg(),
            FeatureConfig::uvg(),
            FeatureConfig::wide(),
        ] {
            let (eager, names) = extract_dataset_features(&d, &config, 2);
            let streamed = extract_features_streaming(
                d.series().iter().cloned().map(Ok::<_, String>),
                d.max_length(),
                &config,
                2,
            )
            .unwrap();
            assert_eq!(streamed.names, names);
            assert_eq!(streamed.features, eager);
            assert_eq!(streamed.labels, d.labels());
            assert_eq!(
                streamed.labels_required().unwrap(),
                d.labels_required().unwrap()
            );
        }
    }

    #[test]
    fn streaming_extraction_propagates_stream_errors() {
        let d = toy_dataset(3, 64);
        let items: Vec<Result<TimeSeries, String>> = d
            .series()
            .iter()
            .cloned()
            .map(Ok)
            .chain(std::iter::once(Err("stream broke".to_string())))
            .collect();
        let err = extract_features_streaming(items, d.max_length(), &FeatureConfig::uvg(), 2)
            .unwrap_err();
        assert_eq!(err, "stream broke");
    }

    #[test]
    fn streaming_extraction_of_empty_stream_is_empty() {
        let streamed = extract_features_streaming(
            std::iter::empty::<Result<TimeSeries, String>>(),
            128,
            &FeatureConfig::uvg(),
            2,
        )
        .unwrap();
        assert_eq!(streamed.features.n_rows(), 0);
        assert!(streamed.labels.is_empty());
        assert!(!streamed.names.is_empty());
    }

    #[test]
    fn extraction_is_deterministic_and_thread_count_invariant() {
        let d = toy_dataset(4, 128);
        let config = FeatureConfig::mvg();
        let (x1, _) = extract_dataset_features(&d, &config, 1);
        let (x4, _) = extract_dataset_features(&d, &config, 4);
        assert_eq!(x1, x4);
    }

    #[test]
    fn features_distinguish_structured_from_noise() {
        // mean absolute difference of class-wise feature means should be
        // clearly positive: the whole premise of the method
        let d = toy_dataset(8, 128);
        let (x, _) = extract_dataset_features(&d, &FeatureConfig::uvg(), 2);
        let labels = d.labels_required().unwrap();
        let n_cols = x.n_cols();
        let mut mean0 = vec![0.0; n_cols];
        let mut mean1 = vec![0.0; n_cols];
        let (mut c0, mut c1) = (0.0, 0.0);
        for (i, &l) in labels.iter().enumerate() {
            let target = if l == 0 {
                (&mut mean0, &mut c0)
            } else {
                (&mut mean1, &mut c1)
            };
            for (j, v) in x.row(i).iter().enumerate() {
                target.0[j] += v;
            }
            *target.1 += 1.0;
        }
        let diff: f64 = mean0
            .iter()
            .zip(mean1.iter())
            .map(|(a, b)| (a / c0 - b / c1).abs())
            .sum();
        assert!(diff > 0.1, "feature means barely differ: {diff}");
    }

    #[test]
    fn detrend_option_changes_features_of_trending_series() {
        let trending = TimeSeries::new(
            (0..256)
                .map(|i| 0.05 * i as f64 + ((i as f64) * 0.3).sin())
                .collect(),
        );
        let plain = FeatureConfig::uvg();
        let detrended = FeatureConfig {
            detrend: true,
            ..FeatureConfig::uvg()
        };
        let f_plain = extract_series_features(&trending, &plain);
        let f_detr = extract_series_features(&trending, &detrended);
        assert_ne!(f_plain, f_detr);
    }
}
