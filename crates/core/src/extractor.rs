//! Algorithm 1: building MVGs and extracting statistical features.
//!
//! A [`FeatureConfig`] pins down one point in the paper's design space —
//! which graph kinds (VG / HVG / both), which scales (UVG / AMVG / MVG) and
//! whether the scalar statistics accompany the motif probability
//! distributions. [`extract_series_features`] turns one series into a flat
//! feature vector under that configuration and
//! [`extract_dataset_features`] maps a whole dataset into a
//! [`FeatureMatrix`] (in parallel), producing the input of the generic
//! classifiers.

use crate::graph_features::{
    block_len, graph_feature_block, graph_feature_block_traced, graph_feature_block_with,
    graph_feature_names,
};
use crate::parallel::parallel_map;
use crate::representation::{ScaleMode, SeriesGraphs};
use crate::trace::{NoopTraceSink, TraceSink};
use serde::{Deserialize, Serialize};
use tsg_graph::motifs::MotifWorkspace;
use tsg_graph::visibility::VisibilityKind;
use tsg_graph::Graph;
use tsg_ml::data::FeatureMatrix;
use tsg_ts::multiscale::MultiscaleOptions;
use tsg_ts::preprocess::detrend;
use tsg_ts::{Dataset, TimeSeries};

/// Configuration of the feature extraction stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Which visibility criteria to build graphs with.
    pub kinds: Vec<VisibilityKind>,
    /// Which scales to include (UVG / AMVG / MVG).
    pub scale_mode: ScaleMode,
    /// Whether density/coreness/assortativity/degree statistics are appended
    /// to the motif probability distributions.
    pub include_other_stats: bool,
    /// Multiscale cascade options (`τ`).
    pub multiscale: MultiscaleOptions,
    /// Remove the least-squares linear trend before graph construction
    /// (visibility graphs do not handle monotone trends well, §2.1).
    pub detrend: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig::mvg()
    }
}

impl FeatureConfig {
    /// The paper's full configuration (column G of Table 2): VG + HVG, all
    /// scales, all features.
    pub fn mvg() -> Self {
        FeatureConfig {
            kinds: vec![VisibilityKind::Natural, VisibilityKind::Horizontal],
            scale_mode: ScaleMode::FullMultiscale,
            include_other_stats: true,
            multiscale: MultiscaleOptions::default(),
            detrend: false,
        }
    }

    /// Column E of Table 2: VG + HVG on the original scale only.
    pub fn uvg() -> Self {
        FeatureConfig {
            scale_mode: ScaleMode::Uniscale,
            ..FeatureConfig::mvg()
        }
    }

    /// Column F of Table 2: VG + HVG on the approximated scales only.
    pub fn amvg() -> Self {
        FeatureConfig {
            scale_mode: ScaleMode::ApproximatedMultiscale,
            ..FeatureConfig::mvg()
        }
    }

    /// A single-kind uniscale configuration (columns A–D of Table 2).
    pub fn uniscale_single(kind: VisibilityKind, include_other_stats: bool) -> Self {
        FeatureConfig {
            kinds: vec![kind],
            scale_mode: ScaleMode::Uniscale,
            include_other_stats,
            multiscale: MultiscaleOptions::default(),
            detrend: false,
        }
    }

    /// Short label used in experiment tables (e.g. `"MVG VG+HVG All"`).
    pub fn label(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| k.short_name())
            .collect::<Vec<_>>()
            .join("+");
        let features = if self.include_other_stats {
            "All"
        } else {
            "MPDs"
        };
        format!("{} {} {}", self.scale_mode.short_name(), kinds, features)
    }

    /// Number of scales the configuration produces for a series of length
    /// `len`.
    pub fn n_scales_for_length(&self, len: usize) -> usize {
        let mut halvings = 0usize;
        let mut current = len;
        while current / 2 > self.multiscale.tau
            && current >= 2
            && halvings < self.multiscale.max_scales
        {
            current /= 2;
            halvings += 1;
        }
        match self.scale_mode {
            ScaleMode::Uniscale => 1,
            ScaleMode::ApproximatedMultiscale => halvings.max(1),
            ScaleMode::FullMultiscale => 1 + halvings,
        }
    }

    /// Number of features produced for a series of length `len`.
    pub fn n_features_for_length(&self, len: usize) -> usize {
        self.n_scales_for_length(len) * self.kinds.len() * block_len(self.include_other_stats)
    }

    /// Feature names for a series of length `len`, e.g. `T0 HVG P(M44)` or
    /// `T2 VG assortativity` — the naming used in Figure 10.
    pub fn feature_names_for_length(&self, len: usize) -> Vec<String> {
        let scales: Vec<usize> = match self.scale_mode {
            ScaleMode::Uniscale => vec![0],
            ScaleMode::ApproximatedMultiscale => {
                let n = self.n_scales_for_length(len);
                // when the series is too short to downscale we fall back to T0
                let halvings_possible = {
                    let mut h = 0usize;
                    let mut cur = len;
                    while cur / 2 > self.multiscale.tau
                        && cur >= 2
                        && h < self.multiscale.max_scales
                    {
                        cur /= 2;
                        h += 1;
                    }
                    h
                };
                if halvings_possible == 0 {
                    vec![0]
                } else {
                    (1..=n).collect()
                }
            }
            ScaleMode::FullMultiscale => (0..self.n_scales_for_length(len)).collect(),
        };
        let block_names = graph_feature_names(self.include_other_stats);
        let mut out = Vec::new();
        for scale in scales {
            for kind in &self.kinds {
                for name in &block_names {
                    out.push(format!("T{} {} {}", scale, kind.short_name(), name));
                }
            }
        }
        out
    }
}

/// Extracts the feature vector of one series under `config` (Algorithm 1),
/// reusing the calling thread's motif workspace (the thread-local inside
/// [`tsg_graph::motifs::count_motifs`]).
pub fn extract_series_features(series: &TimeSeries, config: &FeatureConfig) -> Vec<f64> {
    extract_features_impl(series, config, &mut NoopTraceSink, |graph, include, _| {
        graph_feature_block(graph, include)
    })
}

/// [`extract_series_features`] with a caller-held motif workspace (the
/// scratch memory of the hottest kernel; see
/// [`tsg_graph::motifs::MotifWorkspace`]).
pub fn extract_series_features_with(
    series: &TimeSeries,
    config: &FeatureConfig,
    workspace: &mut MotifWorkspace,
) -> Vec<f64> {
    extract_features_impl(series, config, &mut NoopTraceSink, |graph, include, _| {
        graph_feature_block_with(graph, include, workspace)
    })
}

/// [`extract_series_features_with`] with a [`TraceSink`] observing the
/// `Scale`/`GraphBuild`/`MotifCount` sub-stages — the seam the serving
/// layer uses for per-request latency attribution. The sink only receives
/// callbacks (this crate stays clock-free); the returned features are
/// bit-identical to the untraced entry points.
pub fn extract_series_features_traced<S: TraceSink>(
    series: &TimeSeries,
    config: &FeatureConfig,
    workspace: &mut MotifWorkspace,
    sink: &mut S,
) -> Vec<f64> {
    extract_features_impl(series, config, sink, |graph, include, sink| {
        graph_feature_block_traced(graph, include, workspace, sink)
    })
}

fn extract_features_impl<S: TraceSink>(
    series: &TimeSeries,
    config: &FeatureConfig,
    sink: &mut S,
    mut feature_block: impl FnMut(&Graph, bool, &mut S) -> Vec<f64>,
) -> Vec<f64> {
    let prepared;
    let series = if config.detrend {
        prepared = TimeSeries::new(detrend(series.values()));
        &prepared
    } else {
        series
    };
    let graphs = SeriesGraphs::build_with_sink(
        series,
        &config.kinds,
        config.scale_mode,
        config.multiscale,
        sink,
    );
    let mut features = Vec::with_capacity(graphs.len() * block_len(config.include_other_stats));
    for sg in &graphs.graphs {
        features.extend(feature_block(&sg.graph, config.include_other_stats, sink));
    }
    features
}

/// Extracts features for every series of a dataset, in parallel, and returns
/// the feature matrix together with the matching feature names.
///
/// Rows are padded with zeros (or truncated) to the width implied by the
/// longest series in the dataset, so datasets with slightly varying lengths
/// still produce a rectangular matrix. Each pool worker reuses one
/// thread-local [`MotifWorkspace`] across every series it claims; the
/// workspace never influences results (`tests/determinism.rs` pins
/// reused == fresh bit-for-bit), only allocation traffic.
pub fn extract_dataset_features(
    dataset: &Dataset,
    config: &FeatureConfig,
    n_threads: usize,
) -> (FeatureMatrix, Vec<String>) {
    let max_len = dataset.max_length();
    let names = config.feature_names_for_length(max_len);
    let width = names.len();
    let rows: Vec<Vec<f64>> = parallel_map(dataset.series(), n_threads, |series| {
        let mut f = extract_series_features(series, config);
        f.resize(width, 0.0);
        f
    });
    let matrix = FeatureMatrix::from_rows(&rows).expect("uniform feature rows");
    (matrix, names)
}

/// Output of [`extract_features_streaming`]: the feature matrix, the
/// matching feature names, and the label carried by each consumed series
/// (in input order, `None` for unlabeled instances).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedFeatures {
    /// One feature row per consumed series.
    pub features: FeatureMatrix,
    /// Column names (width implied by `max_length`).
    pub names: Vec<String>,
    /// Per-series labels in input order.
    pub labels: Vec<Option<usize>>,
}

impl StreamedFeatures {
    /// The labels, erroring if any consumed series was unlabeled.
    pub fn labels_required(&self) -> crate::Result<Vec<usize>> {
        self.labels
            .iter()
            .map(|l| {
                l.ok_or_else(|| {
                    tsg_ml::MlError::InvalidData("stream contains unlabeled series".into())
                })
            })
            .collect()
    }
}

/// Extracts features from a *stream* of series, chunk-wise on the shared
/// worker pool, without ever materialising the full split.
///
/// This is the streaming counterpart of [`extract_dataset_features`]: the
/// iterator (typically a `tsg_datasets` `SplitStream`) is drained in bounded
/// chunks; each chunk is extracted in parallel, flattened into the row-major
/// output buffer, and dropped before the next chunk is pulled — so peak
/// memory is `O(chunk)` series plus the growing feature matrix, never the
/// whole `Vec<TimeSeries>`. `max_length` is the maximum series length of the
/// split (streams know it up front) and determines the row width, exactly as
/// `dataset.max_length()` does on the eager path; shorter feature rows are
/// zero-padded identically, so **streaming and eager extraction are
/// bit-identical** for the same input series (pinned by
/// `tests/determinism.rs` and the conformance suite).
///
/// The first `Err` yielded by the stream aborts extraction and is returned.
pub fn extract_features_streaming<E>(
    series: impl IntoIterator<Item = std::result::Result<TimeSeries, E>>,
    max_length: usize,
    config: &FeatureConfig,
    n_threads: usize,
) -> std::result::Result<StreamedFeatures, E> {
    let names = config.feature_names_for_length(max_length);
    let width = names.len();
    // chunks sized a few multiples of the worker count keep every worker
    // busy (the pool sub-chunks dynamically) while bounding residency
    let chunk_capacity = tsg_parallel::resolve_threads(n_threads).max(1) * 16;
    let mut labels: Vec<Option<usize>> = Vec::new();
    let mut flat: Vec<f64> = Vec::new();
    let mut buffer: Vec<TimeSeries> = Vec::with_capacity(chunk_capacity);
    let flush = |buffer: &mut Vec<TimeSeries>, flat: &mut Vec<f64>| {
        let rows: Vec<Vec<f64>> = parallel_map(buffer, n_threads, |series| {
            let mut f = extract_series_features(series, config);
            f.resize(width, 0.0);
            f
        });
        for row in rows {
            flat.extend_from_slice(&row);
        }
        buffer.clear();
    };
    for item in series {
        let s = item?;
        labels.push(s.label());
        buffer.push(s);
        if buffer.len() == chunk_capacity {
            flush(&mut buffer, &mut flat);
        }
    }
    flush(&mut buffer, &mut flat);
    let features =
        FeatureMatrix::from_flat(flat, labels.len(), width).expect("chunk rows share one width");
    Ok(StreamedFeatures {
        features,
        names,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn toy_dataset(n_per_class: usize, len: usize) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut d = Dataset::new("toy");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let values = if label == 0 {
                generators::sine_wave(&mut rng, len, 16.0, 1.0, 0.0, 0.1)
            } else {
                generators::gaussian_noise(&mut rng, len, 1.0)
            };
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn feature_vector_matches_names_for_all_configs() {
        let series = TimeSeries::new((0..256).map(|i| ((i as f64) * 0.17).sin()).collect());
        let configs = [
            FeatureConfig::mvg(),
            FeatureConfig::uvg(),
            FeatureConfig::amvg(),
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false),
            FeatureConfig::uniscale_single(VisibilityKind::Natural, true),
        ];
        for config in configs {
            let features = extract_series_features(&series, &config);
            let names = config.feature_names_for_length(series.len());
            assert_eq!(
                features.len(),
                names.len(),
                "mismatch for config {}",
                config.label()
            );
            assert_eq!(features.len(), config.n_features_for_length(series.len()));
            assert!(features.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(FeatureConfig::mvg().label(), "MVG VG+HVG All");
        assert_eq!(FeatureConfig::uvg().label(), "UVG VG+HVG All");
        assert_eq!(
            FeatureConfig::uniscale_single(VisibilityKind::Horizontal, false).label(),
            "UVG HVG MPDs"
        );
    }

    #[test]
    fn mvg_has_more_features_than_uvg() {
        let len = 512;
        assert!(
            FeatureConfig::mvg().n_features_for_length(len)
                > FeatureConfig::uvg().n_features_for_length(len)
        );
        assert_eq!(
            FeatureConfig::mvg().n_features_for_length(len),
            FeatureConfig::uvg().n_features_for_length(len)
                + FeatureConfig::amvg().n_features_for_length(len)
        );
    }

    #[test]
    fn dataset_extraction_shapes() {
        let d = toy_dataset(5, 128);
        let config = FeatureConfig::mvg();
        let (x, names) = extract_dataset_features(&d, &config, 2);
        assert_eq!(x.n_rows(), d.len());
        assert_eq!(x.n_cols(), names.len());
        assert!(x.rows().all(|r| r.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn streaming_extraction_matches_eager_bitwise() {
        let d = toy_dataset(9, 96); // 18 series: exercises a partial chunk
        for config in [FeatureConfig::mvg(), FeatureConfig::uvg()] {
            let (eager, names) = extract_dataset_features(&d, &config, 2);
            let streamed = extract_features_streaming(
                d.series().iter().cloned().map(Ok::<_, String>),
                d.max_length(),
                &config,
                2,
            )
            .unwrap();
            assert_eq!(streamed.names, names);
            assert_eq!(streamed.features, eager);
            assert_eq!(streamed.labels, d.labels());
            assert_eq!(
                streamed.labels_required().unwrap(),
                d.labels_required().unwrap()
            );
        }
    }

    #[test]
    fn streaming_extraction_propagates_stream_errors() {
        let d = toy_dataset(3, 64);
        let items: Vec<Result<TimeSeries, String>> = d
            .series()
            .iter()
            .cloned()
            .map(Ok)
            .chain(std::iter::once(Err("stream broke".to_string())))
            .collect();
        let err = extract_features_streaming(items, d.max_length(), &FeatureConfig::uvg(), 2)
            .unwrap_err();
        assert_eq!(err, "stream broke");
    }

    #[test]
    fn streaming_extraction_of_empty_stream_is_empty() {
        let streamed = extract_features_streaming(
            std::iter::empty::<Result<TimeSeries, String>>(),
            128,
            &FeatureConfig::uvg(),
            2,
        )
        .unwrap();
        assert_eq!(streamed.features.n_rows(), 0);
        assert!(streamed.labels.is_empty());
        assert!(!streamed.names.is_empty());
    }

    #[test]
    fn extraction_is_deterministic_and_thread_count_invariant() {
        let d = toy_dataset(4, 128);
        let config = FeatureConfig::mvg();
        let (x1, _) = extract_dataset_features(&d, &config, 1);
        let (x4, _) = extract_dataset_features(&d, &config, 4);
        assert_eq!(x1, x4);
    }

    #[test]
    fn features_distinguish_structured_from_noise() {
        // mean absolute difference of class-wise feature means should be
        // clearly positive: the whole premise of the method
        let d = toy_dataset(8, 128);
        let (x, _) = extract_dataset_features(&d, &FeatureConfig::uvg(), 2);
        let labels = d.labels_required().unwrap();
        let n_cols = x.n_cols();
        let mut mean0 = vec![0.0; n_cols];
        let mut mean1 = vec![0.0; n_cols];
        let (mut c0, mut c1) = (0.0, 0.0);
        for (i, &l) in labels.iter().enumerate() {
            let target = if l == 0 {
                (&mut mean0, &mut c0)
            } else {
                (&mut mean1, &mut c1)
            };
            for (j, v) in x.row(i).iter().enumerate() {
                target.0[j] += v;
            }
            *target.1 += 1.0;
        }
        let diff: f64 = mean0
            .iter()
            .zip(mean1.iter())
            .map(|(a, b)| (a / c0 - b / c1).abs())
            .sum();
        assert!(diff > 0.1, "feature means barely differ: {diff}");
    }

    #[test]
    fn detrend_option_changes_features_of_trending_series() {
        let trending = TimeSeries::new(
            (0..256)
                .map(|i| 0.05 * i as f64 + ((i as f64) * 0.3).sin())
                .collect(),
        );
        let plain = FeatureConfig::uvg();
        let detrended = FeatureConfig {
            detrend: true,
            ..FeatureConfig::uvg()
        };
        let f_plain = extract_series_features(&trending, &plain);
        let f_detr = extract_series_features(&trending, &detrended);
        assert_ne!(f_plain, f_detr);
    }
}
