//! Feature importance reporting (the basis of Figure 10).

use serde::{Deserialize, Serialize};

/// One named feature with its importance weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature name, e.g. `T0 HVG P(M44)`.
    pub name: String,
    /// Importance weight (normalised gain for boosting, mean impurity
    /// decrease for forests).
    pub importance: f64,
}

/// Pairs names with importances and sorts descending by importance.
///
/// When the two slices have different lengths (e.g. no importances are
/// available for the chosen classifier) the shorter length wins; an empty
/// importance vector therefore yields an empty ranking.
pub fn rank_features(names: &[String], importances: &[f64]) -> Vec<FeatureImportance> {
    let mut out: Vec<FeatureImportance> = names
        .iter()
        .zip(importances.iter())
        .map(|(name, &importance)| FeatureImportance {
            name: name.clone(),
            importance,
        })
        .collect();
    out.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// The `k` most important features.
pub fn top_k(ranked: &[FeatureImportance], k: usize) -> Vec<FeatureImportance> {
    ranked.iter().take(k).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_sorts_descending() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let ranked = rank_features(&names, &[0.1, 0.7, 0.2]);
        assert_eq!(ranked[0].name, "b");
        assert_eq!(ranked[1].name, "c");
        assert_eq!(ranked[2].name, "a");
    }

    #[test]
    fn mismatched_lengths_truncate() {
        let names: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(rank_features(&names, &[]).len(), 0);
        assert_eq!(rank_features(&names, &[1.0]).len(), 1);
    }

    #[test]
    fn top_k_takes_prefix() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let ranked = rank_features(&names, &[0.3, 0.5, 0.2]);
        let top = top_k(&ranked, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "b");
        assert_eq!(top_k(&ranked, 10).len(), 3);
    }
}
