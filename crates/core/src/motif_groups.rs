//! Motif probability distributions (Definition 3.4).
//!
//! Raw motif counts vary over many orders of magnitude with graph size, so
//! the paper normalises them into probabilities *within groups of equal size
//! and connectivity* — five groups in total:
//!
//! | group | motifs |
//! |-------|--------|
//! | size-2 | `M2_1, M2_2` |
//! | size-3 connected | `M3_1, M3_2` |
//! | size-3 disconnected | `M3_3, M3_4` |
//! | size-4 connected | `M4_1 … M4_6` |
//! | size-4 disconnected | `M4_7 … M4_11` |
//!
//! Each group's counts are divided by the group total, giving per-group
//! probability distributions that are comparable across graphs of different
//! sizes.

use tsg_graph::motifs::{Motif, MotifCounts};

/// One normalisation group: motifs of equal size and connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotifGroup {
    /// Group label used in feature names.
    pub name: &'static str,
    /// Members of the group, in Table 1 order.
    pub motifs: &'static [Motif],
}

/// The five normalisation groups of section 3.1.
pub const MOTIF_GROUPS: [MotifGroup; 5] = [
    MotifGroup {
        name: "size2",
        motifs: &[Motif::Edge2, Motif::Independent2],
    },
    MotifGroup {
        name: "size3_connected",
        motifs: &[Motif::Triangle3, Motif::Path3],
    },
    MotifGroup {
        name: "size3_disconnected",
        motifs: &[Motif::OneEdge3, Motif::Independent3],
    },
    MotifGroup {
        name: "size4_connected",
        motifs: &[
            Motif::Clique4,
            Motif::ChordalCycle4,
            Motif::TailedTriangle4,
            Motif::Cycle4,
            Motif::Star4,
            Motif::Path4,
        ],
    },
    MotifGroup {
        name: "size4_disconnected",
        motifs: &[
            Motif::NodeTriangle4,
            Motif::NodeStar4,
            Motif::TwoEdges4,
            Motif::OneEdge4,
            Motif::Independent4,
        ],
    },
];

/// Total number of motif probability features (17: all motifs of Table 1).
pub const N_MOTIF_FEATURES: usize = 17;

/// Computes the motif probability distribution of a graph's motif counts:
/// every motif count divided by its group total (0 when the group is empty).
///
/// The output order follows [`MOTIF_GROUPS`] (size-2 pair, size-3 connected
/// pair, size-3 disconnected pair, size-4 connected six, size-4 disconnected
/// five) and is stable across the code base.
pub fn motif_probability_distribution(counts: &MotifCounts) -> Vec<f64> {
    let mut out = Vec::with_capacity(N_MOTIF_FEATURES);
    for group in MOTIF_GROUPS.iter() {
        let total: u64 = group.motifs.iter().map(|&m| counts.get(m)).sum();
        for &motif in group.motifs {
            let p = if total == 0 {
                0.0
            } else {
                counts.get(motif) as f64 / total as f64
            };
            out.push(p);
        }
    }
    out
}

/// Names matching [`motif_probability_distribution`], e.g. `P(M41)`.
pub fn motif_feature_names() -> Vec<String> {
    MOTIF_GROUPS
        .iter()
        .flat_map(|group| group.motifs.iter().map(|m| format!("P({})", m.paper_id())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::motifs::count_motifs;
    use tsg_graph::visibility::visibility_graph;
    use tsg_graph::Graph;

    #[test]
    fn groups_cover_all_motifs_exactly_once() {
        let mut seen = std::collections::HashSet::new();
        for group in MOTIF_GROUPS.iter() {
            for &m in group.motifs {
                assert!(seen.insert(m.paper_id()), "duplicate motif {:?}", m);
            }
        }
        assert_eq!(seen.len(), Motif::ALL.len());
        assert_eq!(
            MOTIF_GROUPS.iter().map(|g| g.motifs.len()).sum::<usize>(),
            N_MOTIF_FEATURES
        );
    }

    #[test]
    fn group_members_share_size_and_connectivity() {
        for group in MOTIF_GROUPS.iter() {
            let size = group.motifs[0].size();
            let connected = group.motifs[0].is_connected();
            for &m in group.motifs {
                assert_eq!(m.size(), size, "group {} mixes sizes", group.name);
                // the paper keeps both size-2 motifs in a single group; only
                // the size-3 and size-4 groups split by connectivity
                if size > 2 {
                    assert_eq!(
                        m.is_connected(),
                        connected,
                        "group {} mixes connectivity",
                        group.name
                    );
                }
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one_per_group() {
        let v: Vec<f64> = (0..100)
            .map(|i| ((i as f64) * 0.37).sin() + 0.01 * i as f64 % 3.0)
            .collect();
        let g = visibility_graph(&v);
        let counts = count_motifs(&g);
        let mpd = motif_probability_distribution(&counts);
        assert_eq!(mpd.len(), N_MOTIF_FEATURES);
        let mut offset = 0usize;
        for group in MOTIF_GROUPS.iter() {
            let sum: f64 = mpd[offset..offset + group.motifs.len()].iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "group {} sums to {sum}",
                group.name
            );
            offset += group.motifs.len();
        }
        assert!(mpd.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn empty_groups_give_zero_probabilities() {
        // 3 vertices, no edges: size-4 groups are empty (n < 4)
        let g = Graph::new(3);
        let counts = count_motifs(&g);
        let mpd = motif_probability_distribution(&counts);
        // size-2 group: all mass on the non-edge motif
        assert_eq!(mpd[0], 0.0);
        assert_eq!(mpd[1], 1.0);
        // size-4 groups (indices 6..17) are all zero
        assert!(mpd[6..17].iter().all(|&p| p == 0.0));
    }

    #[test]
    fn names_align_with_values() {
        let names = motif_feature_names();
        assert_eq!(names.len(), N_MOTIF_FEATURES);
        assert_eq!(names[0], "P(M21)");
        assert_eq!(names[6], "P(M41)");
        assert_eq!(names[16], "P(M411)");
    }
}
