//! The end-to-end MVG classifier.
//!
//! [`MvgClassifier`] bundles feature extraction (section 3.1) with a generic
//! classifier (section 3.2): gradient boosting by default, optionally Random
//! Forest, SVM, a small cross-validated grid of boosting configurations, or a
//! stacked ensemble of the three families (section 4.3). Minority classes can
//! be randomly oversampled before training, as the paper does for imbalanced
//! datasets.

use crate::extractor::{extract_dataset_features, FeatureConfig};
use crate::importance::{rank_features, FeatureImportance};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsg_ml::data::{random_oversample, FeatureMatrix};
use tsg_ml::forest::{RandomForest, RandomForestParams};
use tsg_ml::gbt::{GradientBoosting, GradientBoostingParams};
use tsg_ml::metrics::accuracy;
use tsg_ml::scaling::MinMaxScaler;
use tsg_ml::stacking::{StackingEnsemble, StackingParams};
use tsg_ml::svm::{SvmClassifier, SvmKernel, SvmParams};
use tsg_ml::traits::Classifier;
use tsg_ml::{GridSearch, MlError};
use tsg_ts::Dataset;

/// Which classifier family consumes the extracted features.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierChoice {
    /// Gradient boosting with fixed hyper-parameters.
    GradientBoosting(GradientBoostingParams),
    /// Gradient boosting tuned by a small stratified-CV grid search over
    /// learning rate, number of estimators and depth (the paper's setup,
    /// scaled down).
    GradientBoostingGrid,
    /// Random Forest with fixed hyper-parameters.
    RandomForest(RandomForestParams),
    /// RBF-kernel SVM (features are min-max scaled automatically).
    Svm(SvmParams),
    /// Stacked generalization over the top configurations of each family
    /// (Algorithm 2 / Figure 7).
    Stacked {
        /// How many configurations per family are offered to the selector.
        top_k: usize,
    },
}

/// Full configuration of an [`MvgClassifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct MvgConfig {
    /// Feature extraction configuration.
    pub features: FeatureConfig,
    /// Classifier family and hyper-parameters.
    pub classifier: ClassifierChoice,
    /// Randomly oversample minority classes before training.
    pub oversample: bool,
    /// Worker threads shared by feature extraction, grid search and the
    /// stacking ensemble (`0` = process default, see
    /// [`tsg_parallel::default_threads`]). Outputs are identical for every
    /// thread count.
    pub n_threads: usize,
    /// Random seed (oversampling, subsampling, folds).
    pub seed: u64,
}

impl Default for MvgConfig {
    fn default() -> Self {
        MvgConfig::paper()
    }
}

impl MvgConfig {
    /// The paper's configuration: full MVG features, grid-searched boosting,
    /// oversampling enabled.
    pub fn paper() -> Self {
        MvgConfig {
            features: FeatureConfig::mvg(),
            classifier: ClassifierChoice::GradientBoostingGrid,
            oversample: true,
            n_threads: crate::parallel::default_threads(),
            seed: 7,
        }
    }

    /// A fast configuration for tests and examples: full MVG features with a
    /// small fixed boosting model.
    pub fn fast() -> Self {
        MvgConfig {
            features: FeatureConfig::mvg(),
            classifier: ClassifierChoice::GradientBoosting(GradientBoostingParams {
                n_estimators: 25,
                max_depth: 3,
                learning_rate: 0.2,
                subsample: 0.8,
                colsample_bytree: 0.8,
                ..Default::default()
            }),
            oversample: true,
            n_threads: crate::parallel::default_threads(),
            seed: 7,
        }
    }

    /// Replaces the feature configuration.
    pub fn with_features(mut self, features: FeatureConfig) -> Self {
        self.features = features;
        self
    }

    /// Replaces the classifier choice.
    pub fn with_classifier(mut self, classifier: ClassifierChoice) -> Self {
        self.classifier = classifier;
        self
    }

    /// Replaces the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The end-to-end MVG pipeline: feature extraction + generic classification.
pub struct MvgClassifier {
    config: MvgConfig,
    model: Option<Box<dyn Classifier>>,
    scaler: Option<MinMaxScaler>,
    feature_names: Vec<String>,
    gbt_importance: Vec<f64>,
    n_classes: usize,
}

impl MvgClassifier {
    /// Creates an unfitted classifier.
    pub fn new(config: MvgConfig) -> Self {
        MvgClassifier {
            config,
            model: None,
            scaler: None,
            feature_names: Vec::new(),
            gbt_importance: Vec::new(),
            n_classes: 0,
        }
    }

    /// The configuration this classifier was built with.
    pub fn config(&self) -> &MvgConfig {
        &self.config
    }

    /// Names of the extracted features (available after fitting).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of classes seen during fitting.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Extracts the feature matrix of a dataset under this classifier's
    /// feature configuration (exposed for experiments that reuse features
    /// across classifier families).
    pub fn extract_features(&self, dataset: &Dataset) -> (FeatureMatrix, Vec<String>) {
        extract_dataset_features(dataset, &self.config.features, self.config.n_threads)
    }

    fn build_grid(&self) -> GridSearch {
        let mut grid = GridSearch::new(self.config.seed);
        grid.n_threads = self.config.n_threads;
        for &learning_rate in &[0.1, 0.3] {
            for &n_estimators in &[30usize, 60] {
                for &max_depth in &[4usize, 8] {
                    let params = GradientBoostingParams {
                        n_estimators,
                        learning_rate,
                        max_depth,
                        subsample: 0.5,
                        colsample_bytree: 0.5,
                        seed: self.config.seed,
                        ..Default::default()
                    };
                    grid.add(
                        format!("xgb(lr={learning_rate},n={n_estimators},d={max_depth})"),
                        Box::new(move || {
                            Box::new(GradientBoosting::new(params)) as Box<dyn Classifier>
                        }),
                    );
                }
            }
        }
        grid
    }

    fn build_stacking(&self, top_k: usize) -> StackingEnsemble {
        let seed = self.config.seed;
        let mut ens = StackingEnsemble::new(StackingParams {
            top_k,
            cv_folds: 3,
            seed,
            n_threads: self.config.n_threads,
        });
        for &(lr, n, d) in &[(0.1, 30usize, 4usize), (0.1, 60, 8), (0.3, 60, 4)] {
            let params = GradientBoostingParams {
                n_estimators: n,
                learning_rate: lr,
                max_depth: d,
                subsample: 0.5,
                colsample_bytree: 0.5,
                seed,
                ..Default::default()
            };
            ens.add_candidate(
                format!("xgb(lr={lr},n={n},d={d})"),
                Box::new(move || Box::new(GradientBoosting::new(params)) as Box<dyn Classifier>),
            );
        }
        for &(n, d) in &[(50usize, 8usize), (100, 12)] {
            let params = RandomForestParams {
                n_estimators: n,
                max_depth: d,
                seed,
                // the ensemble already parallelises across candidates; serial
                // trees avoid oversubscribing the pool
                n_threads: 1,
                ..Default::default()
            };
            ens.add_candidate(
                format!("rf(n={n},d={d})"),
                Box::new(move || Box::new(RandomForest::new(params)) as Box<dyn Classifier>),
            );
        }
        for &(c, gamma) in &[(1.0, 1.0), (10.0, 0.5)] {
            let params = SvmParams {
                c,
                kernel: SvmKernel::Rbf { gamma },
                seed,
                ..Default::default()
            };
            ens.add_candidate(
                format!("svm(C={c},gamma={gamma})"),
                Box::new(move || Box::new(SvmClassifier::new(params)) as Box<dyn Classifier>),
            );
        }
        ens
    }

    /// Fits the pipeline on a labeled training dataset.
    pub fn fit(&mut self, train: &Dataset) -> crate::Result<()> {
        if train.is_empty() {
            return Err(MlError::InvalidData("training dataset is empty".into()));
        }
        if let Some(selection) = &self.config.features.selection {
            selection
                .validate(&self.config.features)
                .map_err(|e| MlError::InvalidData(format!("invalid feature selection: {e}")))?;
        }
        let labels = train
            .labels_required()
            .map_err(|e| MlError::InvalidData(e.to_string()))?;
        let (features, names) = self.extract_features(train);
        self.feature_names = names;
        // min-max scale: harmless for trees, required for SVM
        let (scaler, mut x) = MinMaxScaler::fit_transform(&features)?;
        self.scaler = Some(scaler);
        let mut y = labels;
        if self.config.oversample {
            let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
            let indices = random_oversample(&y, &mut rng);
            x = x.select_rows(&indices);
            y = indices.iter().map(|&i| y[i]).collect();
        }
        self.n_classes = y.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let model: Box<dyn Classifier> = match &self.config.classifier {
            ClassifierChoice::GradientBoosting(params) => {
                let mut gbt = GradientBoosting::new(*params);
                gbt.fit(&x, &y)?;
                self.gbt_importance = gbt.feature_importance();
                Box::new(gbt)
            }
            ClassifierChoice::GradientBoostingGrid => {
                let grid = self.build_grid();
                let (results_model, _results) = grid.fit_best(&x, &y)?;
                // re-fit a matching booster to recover feature importances
                // (the grid returns a type-erased model)
                self.gbt_importance = Vec::new();
                results_model
            }
            ClassifierChoice::RandomForest(params) => {
                let mut rf = RandomForest::new(*params);
                rf.fit(&x, &y)?;
                self.gbt_importance = rf.feature_importance();
                Box::new(rf)
            }
            ClassifierChoice::Svm(params) => {
                let mut svm = SvmClassifier::new(*params);
                svm.fit(&x, &y)?;
                Box::new(svm)
            }
            ClassifierChoice::Stacked { top_k } => {
                let mut ens = self.build_stacking(*top_k);
                ens.fit(&x, &y)?;
                Box::new(ens)
            }
        };
        self.model = Some(model);
        Ok(())
    }

    fn transform(&self, dataset: &Dataset) -> crate::Result<FeatureMatrix> {
        let (features, _) = self.extract_features(dataset);
        let rows: Vec<Vec<f64>> = features.rows().map(|r| r.to_vec()).collect();
        self.transform_rows(rows)
    }

    /// Pads/truncates raw (unscaled) feature rows to the training width and
    /// applies the fitted scaler. Rows must come from this classifier's
    /// [`FeatureConfig`](crate::FeatureConfig) (e.g. via
    /// [`crate::extract_series_features_with`]).
    fn transform_rows(&self, mut rows: Vec<Vec<f64>>) -> crate::Result<FeatureMatrix> {
        let scaler = self.scaler.as_ref().ok_or(MlError::NotFitted)?;
        // pad/truncate to the training width (different-length test series)
        let width = self.feature_names.len();
        for row in &mut rows {
            row.resize(width, 0.0);
        }
        let matrix = FeatureMatrix::from_rows(&rows)?;
        scaler.transform(&matrix)
    }

    /// Predicts labels from pre-extracted raw feature rows (one per series,
    /// as produced by [`crate::extract_series_features`] under this
    /// classifier's feature configuration).
    ///
    /// This is the serving batch path: a caller that extracts features on its
    /// own worker pool — reusing per-worker motif workspaces — gets
    /// bit-identical predictions to [`MvgClassifier::predict`], because both
    /// paths pad to the training width, scale with the fitted scaler and run
    /// the same model.
    pub fn predict_from_feature_rows(&self, rows: Vec<Vec<f64>>) -> crate::Result<Vec<usize>> {
        let model = self.model.as_ref().ok_or(MlError::NotFitted)?;
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let x = self.transform_rows(rows)?;
        model.predict(&x)
    }

    /// Predicts class probabilities from pre-extracted raw feature rows; the
    /// probability counterpart of [`MvgClassifier::predict_from_feature_rows`].
    pub fn predict_proba_from_feature_rows(
        &self,
        rows: Vec<Vec<f64>>,
    ) -> crate::Result<Vec<Vec<f64>>> {
        let model = self.model.as_ref().ok_or(MlError::NotFitted)?;
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let x = self.transform_rows(rows)?;
        model.predict_proba(&x)
    }

    /// Labels *and* probabilities from pre-extracted raw feature rows,
    /// padding and scaling the rows only once — the serving batch path when
    /// a batch contains probability requests. Results are identical to
    /// calling the two single-output methods separately.
    pub fn predict_with_proba_from_feature_rows(
        &self,
        rows: Vec<Vec<f64>>,
    ) -> crate::Result<(Vec<usize>, Vec<Vec<f64>>)> {
        let model = self.model.as_ref().ok_or(MlError::NotFitted)?;
        if rows.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        let x = self.transform_rows(rows)?;
        Ok((model.predict(&x)?, model.predict_proba(&x)?))
    }

    /// Predicts labels for a dataset.
    pub fn predict(&self, dataset: &Dataset) -> crate::Result<Vec<usize>> {
        let model = self.model.as_ref().ok_or(MlError::NotFitted)?;
        let x = self.transform(dataset)?;
        model.predict(&x)
    }

    /// Predicts class probabilities for a dataset.
    pub fn predict_proba(&self, dataset: &Dataset) -> crate::Result<Vec<Vec<f64>>> {
        let model = self.model.as_ref().ok_or(MlError::NotFitted)?;
        let x = self.transform(dataset)?;
        model.predict_proba(&x)
    }

    /// Accuracy on a labeled dataset.
    pub fn score(&self, dataset: &Dataset) -> crate::Result<f64> {
        let truth = dataset
            .labels_required()
            .map_err(|e| MlError::InvalidData(e.to_string()))?;
        let pred = self.predict(dataset)?;
        Ok(accuracy(&truth, &pred))
    }

    /// Error rate (`1 - accuracy`) on a labeled dataset — the quantity the
    /// paper's tables report.
    pub fn error_rate(&self, dataset: &Dataset) -> crate::Result<f64> {
        Ok(1.0 - self.score(dataset)?)
    }

    /// Ranked feature importances (available for tree-based classifiers with
    /// fixed parameters; empty otherwise).
    pub fn feature_importances(&self) -> Vec<FeatureImportance> {
        rank_features(&self.feature_names, &self.gbt_importance)
    }

    /// The pruning half of the wide-then-prune workflow: a copy of this
    /// classifier's configuration whose feature extraction is restricted to
    /// the `k` most important features of *this* (fitted, wide) classifier.
    ///
    /// The returned configuration is what a caller refits to obtain the
    /// compact per-dataset model the serving registry deploys. Requires a
    /// fitted classifier of a family that exposes importances (fixed-
    /// parameter boosting or forest); errors otherwise, and when `k == 0`.
    pub fn pruned_config(&self, k: usize) -> crate::Result<MvgConfig> {
        if self.model.is_none() {
            return Err(MlError::NotFitted);
        }
        if self.config.features.selection.is_some() {
            return Err(MlError::InvalidData(
                "configuration is already pruned; prune from the wide fit instead".into(),
            ));
        }
        let ranked = self.feature_importances();
        let selection =
            crate::catalogue::FeatureSelection::from_importances(&ranked, &self.feature_names, k)
                .map_err(MlError::InvalidData)?;
        let mut config = self.config.clone();
        config.features.selection = Some(selection);
        Ok(config)
    }

    /// FNV-1a fingerprint of the behaviour-relevant configuration fields:
    /// features, classifier choice, oversampling and seed. `n_threads` is
    /// deliberately excluded — outputs are identical for every thread count
    /// (pinned by the parallel-consistency tests), so a snapshot written on
    /// an 8-core box must restore on a 2-core one.
    pub fn config_fingerprint(config: &MvgConfig) -> u64 {
        let canonical = format!(
            "{:?}|{:?}|{}|{}",
            config.features, config.classifier, config.oversample, config.seed
        );
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in canonical.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Serialises the fitted state — feature names, scaler, model, class
    /// count, importances — prefixed by [`MvgClassifier::config_fingerprint`]
    /// so a restore under a different configuration is rejected instead of
    /// silently mispredicting. Errors when unfitted or when the classifier
    /// family does not support snapshots (grid/stacked/forest/SVM models fall
    /// back to refitting).
    pub fn snapshot_bytes(&self) -> crate::Result<Vec<u8>> {
        use tsg_ml::snapshot as snap;
        let model = self.model.as_ref().ok_or(MlError::NotFitted)?;
        let scaler = self.scaler.as_ref().ok_or(MlError::NotFitted)?;
        let mut model_blob = Vec::new();
        if !model.snapshot_state(&mut model_blob) {
            return Err(MlError::InvalidData(format!(
                "classifier family does not support snapshots: {}",
                model.describe()
            )));
        }
        let mut out = Vec::new();
        snap::put_u64(&mut out, Self::config_fingerprint(&self.config));
        snap::put_u64(&mut out, self.n_classes as u64);
        snap::put_u32(&mut out, self.feature_names.len() as u32);
        for name in &self.feature_names {
            snap::put_str(&mut out, name);
        }
        snap::put_f64s(&mut out, &self.gbt_importance);
        let mut scaler_blob = Vec::new();
        scaler.snapshot_bytes(&mut scaler_blob);
        snap::put_blob(&mut out, &scaler_blob);
        snap::put_blob(&mut out, &model_blob);
        Ok(out)
    }

    /// Rebuilds a fitted classifier from [`MvgClassifier::snapshot_bytes`]
    /// output. The caller supplies the configuration (snapshots carry only
    /// its fingerprint); a mismatch, truncation or any corruption fails
    /// closed with an error — a restored classifier either predicts
    /// bit-identically to the one that was snapshotted or does not exist.
    pub fn from_snapshot(config: MvgConfig, bytes: &[u8]) -> crate::Result<Self> {
        use tsg_ml::snapshot as snap;
        let corrupt = || MlError::InvalidData("corrupt or truncated model snapshot".into());
        let mut r = snap::SnapReader::new(bytes);
        let stored = r.u64().ok_or_else(corrupt)?;
        if stored != Self::config_fingerprint(&config) {
            return Err(MlError::InvalidData(
                "snapshot was written under a different configuration".into(),
            ));
        }
        let n_classes = r.u64().ok_or_else(corrupt)? as usize;
        let n_names = r.u32().ok_or_else(corrupt)? as usize;
        let mut feature_names = Vec::with_capacity(n_names.min(1 << 16));
        for _ in 0..n_names {
            feature_names.push(r.str().ok_or_else(corrupt)?);
        }
        let gbt_importance = r.f64s().ok_or_else(corrupt)?;
        let mut scaler_reader = snap::SnapReader::new(r.blob().ok_or_else(corrupt)?);
        let scaler = MinMaxScaler::from_snapshot(&mut scaler_reader).ok_or_else(corrupt)?;
        if !scaler_reader.is_empty() {
            return Err(corrupt());
        }
        let model =
            tsg_ml::restore_classifier(r.blob().ok_or_else(corrupt)?).ok_or_else(corrupt)?;
        if !r.is_empty() || model.n_classes() != n_classes {
            return Err(corrupt());
        }
        Ok(MvgClassifier {
            config,
            model: Some(model),
            scaler: Some(scaler),
            feature_names,
            gbt_importance,
            n_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;
    use tsg_ts::TimeSeries;

    fn structured_dataset(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new("synthetic");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let values = if label == 0 {
                generators::sine_wave(&mut rng, len, 20.0, 1.0, 0.3, 0.2)
            } else {
                generators::ar1(&mut rng, len, 0.7, 1.0)
            };
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn fast_config_learns_structured_vs_autoregressive() {
        let train = structured_dataset(12, 128, 1);
        let test = structured_dataset(10, 128, 2);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        let acc = clf.score(&test).unwrap();
        assert!(acc >= 0.8, "accuracy {acc}");
        assert_eq!(clf.n_classes(), 2);
        assert!(!clf.feature_names().is_empty());
        let err = clf.error_rate(&test).unwrap();
        assert!((err - (1.0 - acc)).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_valid() {
        let train = structured_dataset(8, 128, 3);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        for p in clf.predict_proba(&train).unwrap() {
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_importances_are_ranked() {
        let train = structured_dataset(10, 128, 4);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        let imp = clf.feature_importances();
        assert!(!imp.is_empty());
        for w in imp.windows(2) {
            assert!(w[0].importance >= w[1].importance);
        }
    }

    #[test]
    fn random_forest_and_svm_choices_work() {
        let train = structured_dataset(8, 128, 5);
        let test = structured_dataset(6, 128, 6);
        for choice in [
            ClassifierChoice::RandomForest(RandomForestParams {
                n_estimators: 20,
                max_depth: 8,
                ..Default::default()
            }),
            ClassifierChoice::Svm(SvmParams {
                c: 5.0,
                kernel: SvmKernel::Rbf { gamma: 2.0 },
                ..Default::default()
            }),
        ] {
            let config = MvgConfig::fast().with_classifier(choice);
            let mut clf = MvgClassifier::new(config);
            clf.fit(&train).unwrap();
            let acc = clf.score(&test).unwrap();
            assert!(
                acc >= 0.6,
                "accuracy {acc} for {:?}",
                clf.config().classifier
            );
        }
    }

    #[test]
    fn fitted_classifier_is_shareable_across_threads() {
        // the boxed model carries the trait's Send + Sync bound, so a fitted
        // pipeline can be shared by serving workers
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MvgClassifier>();

        let train = structured_dataset(6, 96, 8);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        let reference = clf.predict(&train).unwrap();
        let clf = std::sync::Arc::new(clf);
        let predictions: Vec<Vec<usize>> = std::thread::scope(|scope| {
            (0..3)
                .map(|_| {
                    let clf = std::sync::Arc::clone(&clf);
                    let train = &train;
                    scope.spawn(move || clf.predict(train).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for pred in predictions {
            assert_eq!(pred, reference);
        }
    }

    #[test]
    fn feature_row_predictions_match_dataset_predictions() {
        use crate::extractor::extract_series_features;
        let train = structured_dataset(6, 96, 10);
        let test = structured_dataset(5, 96, 11);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        let expected = clf.predict(&test).unwrap();
        let expected_proba = clf.predict_proba(&test).unwrap();
        let rows: Vec<Vec<f64>> = test
            .series()
            .iter()
            .map(|s| extract_series_features(s, &clf.config().features))
            .collect();
        assert_eq!(
            clf.predict_from_feature_rows(rows.clone()).unwrap(),
            expected
        );
        assert_eq!(
            clf.predict_proba_from_feature_rows(rows.clone()).unwrap(),
            expected_proba
        );
        let (combined_pred, combined_proba) =
            clf.predict_with_proba_from_feature_rows(rows).unwrap();
        assert_eq!(combined_pred, expected);
        assert_eq!(combined_proba, expected_proba);
        assert!(clf
            .predict_from_feature_rows(Vec::new())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn snapshot_restores_bit_identical_predictions() {
        let train = structured_dataset(8, 96, 21);
        let test = structured_dataset(6, 96, 22);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        let bytes = clf.snapshot_bytes().unwrap();
        let restored = MvgClassifier::from_snapshot(MvgConfig::fast(), &bytes).unwrap();
        assert_eq!(restored.n_classes(), clf.n_classes());
        assert_eq!(restored.feature_names(), clf.feature_names());
        assert_eq!(
            restored.predict(&test).unwrap(),
            clf.predict(&test).unwrap()
        );
        for (a, b) in clf
            .predict_proba(&test)
            .unwrap()
            .iter()
            .zip(restored.predict_proba(&test).unwrap().iter())
        {
            for (va, vb) in a.iter().zip(b.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "restored pipeline drifted");
            }
        }
        // n_threads must NOT be part of the fingerprint (a snapshot written
        // on one machine restores on another with a different core count)
        let mut other_threads = MvgConfig::fast();
        other_threads.n_threads = (other_threads.n_threads % 4) + 1;
        assert!(MvgClassifier::from_snapshot(other_threads, &bytes).is_ok());
        // but any behaviour-relevant change is rejected outright
        assert!(MvgClassifier::from_snapshot(MvgConfig::fast().with_seed(99), &bytes).is_err());
        // corruption fails closed: every truncation and a one-bit flip
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                MvgClassifier::from_snapshot(MvgConfig::fast(), &bytes[..cut]).is_err(),
                "truncation at {cut} restored a classifier"
            );
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        if let Ok(model) = MvgClassifier::from_snapshot(MvgConfig::fast(), &flipped) {
            // a flip in leaf-weight payload bits can still parse; it must at
            // least still be a structurally valid, usable model
            model.predict(&test).unwrap();
        }
    }

    #[test]
    fn snapshot_unsupported_family_and_unfitted_error_cleanly() {
        let unfitted = MvgClassifier::new(MvgConfig::fast());
        assert!(unfitted.snapshot_bytes().is_err());
        let train = structured_dataset(6, 96, 23);
        let config =
            MvgConfig::fast().with_classifier(ClassifierChoice::RandomForest(RandomForestParams {
                n_estimators: 5,
                max_depth: 4,
                ..Default::default()
            }));
        let mut clf = MvgClassifier::new(config);
        clf.fit(&train).unwrap();
        // forests don't snapshot (yet): callers must fall back to refitting
        assert!(clf.snapshot_bytes().is_err());
    }

    #[test]
    fn pruned_config_selects_top_k_and_refits() {
        let train = structured_dataset(10, 128, 31);
        let test = structured_dataset(8, 128, 32);
        let wide_config = MvgConfig::fast().with_features(FeatureConfig::wide());
        let mut wide = MvgClassifier::new(wide_config);
        wide.fit(&train).unwrap();

        let pruned_config = wide.pruned_config(24).unwrap();
        let selection = pruned_config.features.selection.as_ref().unwrap();
        assert_eq!(selection.len(), 24);
        // selection is in wide order and drawn from the wide names
        let wide_names = wide.feature_names();
        let positions: Vec<usize> = selection
            .names()
            .iter()
            .map(|n| wide_names.iter().position(|w| w == n).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        // the top-k by importance are exactly the selected set
        let ranked = wide.feature_importances();
        let mut expected: Vec<&str> = ranked[..24].iter().map(|f| f.name.as_str()).collect();
        expected.sort_unstable();
        let mut got: Vec<&str> = selection.names().iter().map(|s| s.as_str()).collect();
        got.sort_unstable();
        assert_eq!(got, expected);

        let mut pruned = MvgClassifier::new(pruned_config);
        pruned.fit(&train).unwrap();
        assert_eq!(pruned.feature_names().len(), 24);
        let acc_wide = wide.score(&test).unwrap();
        let acc_pruned = pruned.score(&test).unwrap();
        assert!(
            acc_pruned >= acc_wide - 0.15,
            "pruned accuracy {acc_pruned} collapsed vs wide {acc_wide}"
        );
    }

    #[test]
    fn pruned_config_error_paths() {
        let unfitted = MvgClassifier::new(MvgConfig::fast());
        assert!(unfitted.pruned_config(8).is_err());

        let train = structured_dataset(6, 96, 33);
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        clf.fit(&train).unwrap();
        assert!(clf.pruned_config(0).is_err());
        // pruning an already-pruned configuration is rejected
        let pruned_config = clf.pruned_config(8).unwrap();
        let mut pruned = MvgClassifier::new(pruned_config);
        pruned.fit(&train).unwrap();
        assert!(pruned.pruned_config(4).is_err());
        // a family without importances cannot drive pruning
        let config = MvgConfig::fast().with_classifier(ClassifierChoice::Svm(SvmParams {
            c: 1.0,
            kernel: SvmKernel::Rbf { gamma: 1.0 },
            ..Default::default()
        }));
        let mut svm = MvgClassifier::new(config);
        svm.fit(&train).unwrap();
        assert!(svm.pruned_config(8).is_err());
    }

    #[test]
    fn fit_rejects_selection_not_in_catalogue() {
        let train = structured_dataset(4, 96, 34);
        let mut config = MvgConfig::fast();
        config.features.selection = Some(crate::catalogue::FeatureSelection::new(vec![
            "T0 VG bogus_feature".to_string(),
        ]));
        let mut clf = MvgClassifier::new(config);
        let err = clf.fit(&train).unwrap_err();
        assert!(
            err.to_string().contains("not in the running catalogue"),
            "{err}"
        );
    }

    #[test]
    fn pruned_snapshot_round_trips_with_selection_fingerprint() {
        let train = structured_dataset(8, 96, 35);
        let test = structured_dataset(6, 96, 36);
        let wide_config = MvgConfig::fast().with_features(FeatureConfig::wide());
        let mut wide = MvgClassifier::new(wide_config);
        wide.fit(&train).unwrap();
        let pruned_config = wide.pruned_config(16).unwrap();
        let mut pruned = MvgClassifier::new(pruned_config.clone());
        pruned.fit(&train).unwrap();
        let bytes = pruned.snapshot_bytes().unwrap();
        let restored = MvgClassifier::from_snapshot(pruned_config.clone(), &bytes).unwrap();
        assert_eq!(restored.feature_names(), pruned.feature_names());
        assert_eq!(
            restored.predict(&test).unwrap(),
            pruned.predict(&test).unwrap()
        );
        // a different selection is a different fingerprint
        let other = wide.pruned_config(8).unwrap();
        assert!(MvgClassifier::from_snapshot(other, &bytes).is_err());
        // and the wide config cannot claim the pruned snapshot
        assert!(MvgClassifier::from_snapshot(
            MvgConfig::fast().with_features(FeatureConfig::wide()),
            &bytes
        )
        .is_err());
    }

    #[test]
    fn unfitted_prediction_errors() {
        let clf = MvgClassifier::new(MvgConfig::fast());
        let d = structured_dataset(2, 64, 9);
        assert!(clf.predict(&d).is_err());
        assert!(clf.score(&d).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut clf = MvgClassifier::new(MvgConfig::fast());
        assert!(clf.fit(&Dataset::new("empty")).is_err());
    }
}
