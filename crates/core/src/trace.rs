//! The clock-free tracing seam of the extraction pipeline.
//!
//! `tsg_core` is a deterministic crate: the analyzer's `det-time` and
//! `clock-discipline` rules forbid it from reading any clock. Yet the
//! serving layer needs to know where extraction time goes (scale build vs
//! graph build vs motif census). The seam is a [`TraceSink`] trait the
//! extraction entry points thread through their stages: the *callbacks*
//! live here, the *clocks* live in the caller (`tsg_serve`, via
//! `tsg_trace`). The default methods are `#[inline(always)]` no-ops, so
//! the untraced entry points compile to exactly the code they were before
//! the seam existed — tracing observes, never perturbs, and a build
//! without a sink pays nothing.

/// The extraction sub-stages a sink can observe, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractStage {
    /// Multiscale representation build (PAA halvings).
    Scale,
    /// Visibility-graph construction (all scales × kinds).
    GraphBuild,
    /// Motif census over one built graph.
    MotifCount,
    /// The per-series statistical layer of the catalogue (quantiles,
    /// trend, peaks, autocorrelation, DFT magnitudes).
    Statistical,
}

/// Observer of extraction sub-stages. `enter`/`exit` bracket each stage;
/// stages never nest, and a stage may be entered repeatedly for one
/// series (one `GraphBuild`/`MotifCount` pair per graph).
pub trait TraceSink {
    /// Called when a stage begins.
    #[inline(always)]
    fn enter(&mut self, _stage: ExtractStage) {}

    /// Called when the same stage ends.
    #[inline(always)]
    fn exit(&mut self, _stage: ExtractStage) {}
}

/// The do-nothing sink: what every untraced entry point uses.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingSink {
        events: Vec<(ExtractStage, bool)>,
    }

    impl TraceSink for CountingSink {
        fn enter(&mut self, stage: ExtractStage) {
            self.events.push((stage, true));
        }
        fn exit(&mut self, stage: ExtractStage) {
            self.events.push((stage, false));
        }
    }

    #[test]
    fn sinks_observe_balanced_stage_brackets() {
        use crate::{extract_series_features, extract_series_features_traced, FeatureConfig};
        use tsg_graph::motifs::MotifWorkspace;
        use tsg_ts::TimeSeries;

        let series = TimeSeries::new(
            (0..128)
                .map(|i| ((i as f64) * 0.21).sin() + ((i as f64) * 0.037).cos())
                .collect(),
        );
        let config = FeatureConfig::mvg();
        let mut workspace = MotifWorkspace::default();
        let mut sink = CountingSink::default();
        let traced = extract_series_features_traced(&series, &config, &mut workspace, &mut sink);

        // bit-identity: the traced path computes exactly the untraced result
        assert_eq!(traced, extract_series_features(&series, &config));

        // every enter has a matching exit, in order, with no nesting
        let mut open: Option<ExtractStage> = None;
        for &(stage, entered) in &sink.events {
            if entered {
                assert!(open.is_none(), "nested stage {stage:?}");
                open = Some(stage);
            } else {
                assert_eq!(open, Some(stage), "unbalanced exit {stage:?}");
                open = None;
            }
        }
        assert!(open.is_none());

        // MVG on 128 points: one scale build, one graph build + motif
        // census per (scale × kind) graph
        let enters = |s: ExtractStage| {
            sink.events
                .iter()
                .filter(|&&(e, entered)| e == s && entered)
                .count()
        };
        assert_eq!(enters(ExtractStage::Scale), 1);
        let n_graphs = config.n_scales_for_length(128) * config.kinds.len();
        assert_eq!(enters(ExtractStage::GraphBuild), n_graphs);
        assert_eq!(enters(ExtractStage::MotifCount), n_graphs);
        // the statistical layer is disabled in the paper's configuration
        assert_eq!(enters(ExtractStage::Statistical), 0);
    }

    #[test]
    fn statistical_stage_brackets_the_catalogue_layer_once() {
        use crate::{extract_series_features_traced, FeatureConfig};
        use tsg_graph::motifs::MotifWorkspace;
        use tsg_ts::TimeSeries;

        let series = TimeSeries::new((0..128).map(|i| ((i as f64) * 0.21).sin()).collect());
        let mut workspace = MotifWorkspace::default();
        let mut sink = CountingSink::default();
        extract_series_features_traced(&series, &FeatureConfig::wide(), &mut workspace, &mut sink);
        let statistical = sink
            .events
            .iter()
            .filter(|&&(e, entered)| e == ExtractStage::Statistical && entered)
            .count();
        assert_eq!(statistical, 1);
    }
}
