//! Parallel execution — re-exported from [`tsg_parallel`].
//!
//! The scoped-thread `parallel_map` that used to live here was promoted into
//! the workspace-wide [`tsg_parallel`] crate so the same worker pool drives
//! feature extraction (this crate), grid search, random-forest tree fitting
//! and the stacking ensemble (`tsg_ml`). This module keeps the historical
//! `tsg_core::parallel::*` paths working.
//!
//! See [`tsg_parallel::ThreadPool`] for the pool itself,
//! [`tsg_parallel::default_threads`] for the `TSC_MVG_THREADS` override and
//! the 8-thread memory-bandwidth cap, and `tests/determinism.rs` at the
//! workspace root for the parallel-equals-serial guarantee.

pub use tsg_parallel::{
    default_threads, parallel_map, parallel_try_map, resolve_threads, ThreadPool,
    MAX_DEFAULT_THREADS, THREADS_ENV_VAR,
};
