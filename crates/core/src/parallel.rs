//! Minimal data-parallel map over items using scoped threads.
//!
//! Feature extraction is embarrassingly parallel across time series (the
//! paper stresses this as a selling point of the pipeline); this helper
//! spreads a slice over `n_threads` `std::thread::scope` threads and collects
//! the results in input order without any unsafe code or external thread
//! pools.

/// Applies `f` to every element of `items` using up to `n_threads` scoped
/// threads, preserving order. `n_threads = 1` (or a single item) runs inline.
pub fn parallel_map<T, R, F>(items: &[T], n_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = n_threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk_size = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<R>] = &mut results;
        let mut start = 0usize;
        for _ in 0..threads {
            if start >= n {
                break;
            }
            let len = chunk_size.min(n - start);
            let (chunk_out, rest) = remaining.split_at_mut(len);
            remaining = rest;
            let chunk_in = &items[start..start + len];
            let f = &f;
            scope.spawn(move || {
                for (out, item) in chunk_out.iter_mut().zip(chunk_in.iter()) {
                    *out = Some(f(item));
                }
            });
            start += len;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("parallel_map produced a gap"))
        .collect()
}

/// A reasonable default thread count: the machine's available parallelism,
/// capped at 8 (feature extraction saturates memory bandwidth beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..103).collect();
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(&items, threads, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 16, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn default_thread_count_positive() {
        assert!(default_threads() >= 1);
    }
}
