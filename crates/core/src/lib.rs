//! # tsg-core — Multiscale Visibility Graph features for time series classification
//!
//! The paper's contribution, assembled from the substrates:
//!
//! 1. a time series is expanded into its multiscale representation
//!    (`T0, T1, …, Tm`, PAA halvings down to a minimum length `τ`);
//! 2. every scale is transformed into a natural visibility graph and/or a
//!    horizontal visibility graph;
//! 3. every graph yields a block of purely statistical features: normalised
//!    motif probability distributions ([`motif_groups`]) plus density,
//!    maximum coreness, assortativity and degree statistics
//!    ([`graph_features`]);
//! 4. the concatenated feature vector is fed to a generic classifier
//!    (gradient boosting by default, optionally Random Forest, SVM, or a
//!    stacked ensemble of all three families).
//!
//! The high-level entry point is [`MvgClassifier`]; the individual stages are
//! exposed in [`extractor`] and [`representation`] so experiments can study
//! them separately (UVG vs AMVG vs MVG, HVG vs VG, MPDs vs all features —
//! exactly the ablations of the paper's Table 2).

pub mod catalogue;
pub mod classifier;
pub mod extractor;
pub mod graph_features;
pub mod importance;
pub mod motif_groups;
pub mod parallel;
pub mod representation;
pub mod trace;

pub use catalogue::{
    CostTier, FamilyScope, FamilySpec, FeatureSelection, StatFamily, StatisticalConfig, FAMILIES,
};
pub use classifier::{ClassifierChoice, MvgClassifier, MvgConfig};
pub use extractor::{
    extract_dataset_features, extract_features_streaming, extract_series_features,
    extract_series_features_traced, extract_series_features_with, FeatureConfig, StreamedFeatures,
};
pub use graph_features::{graph_feature_block, graph_feature_names};
pub use importance::{rank_features, FeatureImportance};
pub use motif_groups::{motif_probability_distribution, MotifGroup, MOTIF_GROUPS};
pub use representation::{ScaleMode, SeriesGraphs};
pub use trace::{ExtractStage, NoopTraceSink, TraceSink};

/// Crate-wide error type (re-used from the ML substrate, whose stages
/// dominate the fallible surface).
pub type Error = tsg_ml::MlError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
