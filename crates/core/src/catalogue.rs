//! The tiered feature catalogue: named feature families with cost metadata.
//!
//! The extractor used to compute one fixed MVG block. This module grows it
//! into an hcga-style *catalogue*: every feature belongs to a named family,
//! every family carries a [`CostTier`] (how expensive it is per series) and
//! a [`FamilyScope`] (computed once per series, or once per visibility
//! graph). Two family groups exist:
//!
//! * **per-graph** families — the paper's motif probability distributions
//!   and scalar graph statistics, repeated for every `(scale × kind)` graph;
//! * **per-series** families — a tsfresh-style statistical layer computed
//!   directly on the (detrended) series: distribution moments and
//!   quantiles, linear trend, peak counts, autocorrelation lags and DFT
//!   magnitudes from a small hand-rolled real-input DFT.
//!
//! The cost tiers drive the per-family timing table in `tsg_bench` and the
//! pruning workflow: [`FeatureSelection`] names an importance-chosen subset
//! of the wide catalogue, and the extractor then computes only the graphs,
//! censuses and families that subset actually needs.
//!
//! Every statistical feature is total: for finite input it produces a
//! finite number (degenerate cases — zero variance, lags or coefficients
//! beyond the series length — yield `0.0`). This matters because the
//! scalers downstream reject non-finite features at `fit`.

use crate::importance::FeatureImportance;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tsg_ts::stats;

/// How expensive a feature family is to compute, per series.
///
/// The tiers mirror the hcga convention: `Fast` families are linear scans,
/// `Medium` families are a few linear passes (or an `O(n·k)` transform with
/// small `k`), `Slow` families dominate extraction time (the motif census).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CostTier {
    /// One linear pass over the series.
    Fast,
    /// A few passes / small super-linear transforms.
    Medium,
    /// Dominates extraction time.
    Slow,
}

impl CostTier {
    /// Lower-case label used in tables and JSON artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            CostTier::Fast => "fast",
            CostTier::Medium => "medium",
            CostTier::Slow => "slow",
        }
    }
}

/// Whether a family is computed once per series or once per visibility graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FamilyScope {
    /// Computed directly on the series values.
    PerSeries,
    /// Computed on every `(scale × kind)` graph of the representation.
    PerGraph,
}

impl FamilyScope {
    /// Lower-case label used in tables and JSON artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            FamilyScope::PerSeries => "per-series",
            FamilyScope::PerGraph => "per-graph",
        }
    }
}

/// One named feature family of the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilySpec {
    /// Stable family identifier (used in timing tables and docs).
    pub name: &'static str,
    /// Runtime cost tier.
    pub tier: CostTier,
    /// Per-series or per-graph.
    pub scope: FamilyScope,
    /// One-line description.
    pub description: &'static str,
}

/// The full catalogue, per-graph families first, then the statistical layer
/// in its wide-vector order.
pub const FAMILIES: &[FamilySpec] = &[
    FamilySpec {
        name: "motifs",
        tier: CostTier::Slow,
        scope: FamilyScope::PerGraph,
        description: "normalised motif probability distribution (17 per graph)",
    },
    FamilySpec {
        name: "graph-stats",
        tier: CostTier::Medium,
        scope: FamilyScope::PerGraph,
        description: "density, max coreness, assortativity, degree statistics (7 per graph)",
    },
    FamilySpec {
        name: "dist",
        tier: CostTier::Fast,
        scope: FamilyScope::PerSeries,
        description: "moments, quantiles, energy and counts around the mean (16)",
    },
    FamilySpec {
        name: "trend",
        tier: CostTier::Fast,
        scope: FamilyScope::PerSeries,
        description: "least-squares linear trend slope and intercept (2)",
    },
    FamilySpec {
        name: "peaks",
        tier: CostTier::Fast,
        scope: FamilyScope::PerSeries,
        description: "strict local maxima / minima counts (2)",
    },
    FamilySpec {
        name: "acf",
        tier: CostTier::Medium,
        scope: FamilyScope::PerSeries,
        description: "autocorrelation at lags 1..L",
    },
    FamilySpec {
        name: "fft",
        tier: CostTier::Medium,
        scope: FamilyScope::PerSeries,
        description: "DFT magnitudes of coefficients 1..K (hand-rolled real DFT)",
    },
];

/// Looks up a family by name.
pub fn family(name: &str) -> Option<&'static FamilySpec> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// The per-series statistical families, in wide-vector order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StatFamily {
    /// Distribution moments, quantiles, energy, mean-crossing counts.
    Dist,
    /// Linear trend slope and intercept.
    Trend,
    /// Strict local maxima / minima counts.
    Peaks,
    /// Autocorrelation lags.
    Acf,
    /// DFT coefficient magnitudes.
    Fft,
}

impl StatFamily {
    /// All per-series families, in wide-vector order.
    pub const ALL: [StatFamily; 5] = [
        StatFamily::Dist,
        StatFamily::Trend,
        StatFamily::Peaks,
        StatFamily::Acf,
        StatFamily::Fft,
    ];

    /// The catalogue family name this statistical family belongs to.
    pub fn family_name(self) -> &'static str {
        match self {
            StatFamily::Dist => "dist",
            StatFamily::Trend => "trend",
            StatFamily::Peaks => "peaks",
            StatFamily::Acf => "acf",
            StatFamily::Fft => "fft",
        }
    }
}

/// Configuration of the per-series statistical layer.
///
/// `Default` is **disabled** so legacy configurations (and their snapshot
/// fingerprints) are unchanged; [`StatisticalConfig::standard`] is the wide
/// catalogue's default shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatisticalConfig {
    /// Whether the statistical layer is appended to the feature vector.
    pub enabled: bool,
    /// Number of autocorrelation lags (`1..=acf_lags`).
    pub acf_lags: usize,
    /// Number of DFT coefficients (`1..=fft_coefficients`, DC skipped).
    pub fft_coefficients: usize,
}

impl Default for StatisticalConfig {
    fn default() -> Self {
        StatisticalConfig {
            enabled: false,
            acf_lags: 8,
            fft_coefficients: 8,
        }
    }
}

impl StatisticalConfig {
    /// The wide catalogue's statistical layer: 8 lags, 8 DFT coefficients.
    pub fn standard() -> Self {
        StatisticalConfig {
            enabled: true,
            ..StatisticalConfig::default()
        }
    }

    /// Number of statistical features (0 when disabled).
    pub fn n_features(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        StatFamily::ALL
            .iter()
            .map(|&f| stat_family_len(f, self))
            .sum()
    }

    /// Names of the statistical features, in extraction order.
    pub fn feature_names(&self) -> Vec<String> {
        if !self.enabled {
            return Vec::new();
        }
        StatFamily::ALL
            .iter()
            .flat_map(|&f| stat_family_names(f, self))
            .collect()
    }

    /// Computes the full statistical layer for one series.
    pub fn compute(&self, values: &[f64]) -> Vec<f64> {
        if !self.enabled {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.n_features());
        for f in StatFamily::ALL {
            out.extend(compute_stat_family(f, self, values));
        }
        out
    }
}

/// Number of features a statistical family contributes under `config`.
pub fn stat_family_len(family: StatFamily, config: &StatisticalConfig) -> usize {
    match family {
        StatFamily::Dist => 16,
        StatFamily::Trend => 2,
        StatFamily::Peaks => 2,
        StatFamily::Acf => config.acf_lags,
        StatFamily::Fft => config.fft_coefficients,
    }
}

/// Names a statistical family contributes under `config`, in order.
pub fn stat_family_names(family: StatFamily, config: &StatisticalConfig) -> Vec<String> {
    match family {
        StatFamily::Dist => [
            "mean",
            "std",
            "min",
            "max",
            "median",
            "iqr",
            "q05",
            "q25",
            "q75",
            "q95",
            "skewness",
            "kurtosis",
            "energy",
            "abs_mean",
            "above_mean",
            "below_mean",
        ]
        .iter()
        .map(|n| format!("stat {n}"))
        .collect(),
        StatFamily::Trend => vec![
            "stat trend_slope".to_string(),
            "stat trend_intercept".to_string(),
        ],
        StatFamily::Peaks => vec![
            "stat peak_count".to_string(),
            "stat valley_count".to_string(),
        ],
        StatFamily::Acf => (1..=config.acf_lags)
            .map(|lag| format!("stat acf_{lag}"))
            .collect(),
        StatFamily::Fft => (1..=config.fft_coefficients)
            .map(|k| format!("stat fft_mag_{k}"))
            .collect(),
    }
}

/// Computes one statistical family for one series.
pub fn compute_stat_family(
    family: StatFamily,
    config: &StatisticalConfig,
    values: &[f64],
) -> Vec<f64> {
    match family {
        StatFamily::Dist => distribution_features(values),
        StatFamily::Trend => trend_features(values),
        StatFamily::Peaks => peak_features(values),
        StatFamily::Acf => autocorrelation_features(values, config.acf_lags),
        StatFamily::Fft => fft_magnitude_features(values, config.fft_coefficients),
    }
}

/// Variance floor below which moment ratios (skewness, kurtosis,
/// autocorrelation) are defined as `0.0` instead of dividing by ~zero.
const VAR_FLOOR: f64 = 1e-24;

/// The 16 distribution features: mean, std, min, max, median, IQR, the
/// 5/25/75/95 % quantiles, skewness, excess kurtosis, energy, mean absolute
/// value and the counts of samples strictly above / below the mean.
pub fn distribution_features(values: &[f64]) -> Vec<f64> {
    let n = values.len() as f64;
    let mean = stats::mean(values);
    let var = stats::variance(values);
    let q25 = stats::quantile(values, 0.25);
    let q75 = stats::quantile(values, 0.75);
    let (skewness, kurtosis) = if var <= VAR_FLOOR || values.is_empty() {
        (0.0, 0.0)
    } else {
        let m3 = values.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n;
        let m4 = values.iter().map(|v| (v - mean).powi(4)).sum::<f64>() / n;
        (m3 / var.powf(1.5), m4 / (var * var) - 3.0)
    };
    vec![
        mean,
        var.sqrt(),
        stats::min(values).unwrap_or(0.0),
        stats::max(values).unwrap_or(0.0),
        stats::median(values),
        q75 - q25,
        stats::quantile(values, 0.05),
        q25,
        q75,
        stats::quantile(values, 0.95),
        skewness,
        kurtosis,
        values.iter().map(|v| v * v).sum::<f64>(),
        values.iter().map(|v| v.abs()).sum::<f64>() / n.max(1.0),
        values.iter().filter(|&&v| v > mean).count() as f64,
        values.iter().filter(|&&v| v < mean).count() as f64,
    ]
}

/// Least-squares linear trend over `t = 0..n-1`: `[slope, intercept]`.
pub fn trend_features(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n < 2 {
        return vec![0.0, values.first().copied().unwrap_or(0.0)];
    }
    let t_mean = (n as f64 - 1.0) / 2.0;
    let v_mean = stats::mean(values);
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, v) in values.iter().enumerate() {
        let dt = t as f64 - t_mean;
        num += dt * (v - v_mean);
        den += dt * dt;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    vec![slope, v_mean - slope * t_mean]
}

/// Counts of strict local maxima and minima: `[peak_count, valley_count]`.
pub fn peak_features(values: &[f64]) -> Vec<f64> {
    let mut peaks = 0usize;
    let mut valleys = 0usize;
    for w in values.windows(3) {
        if w[1] > w[0] && w[1] > w[2] {
            peaks += 1;
        }
        if w[1] < w[0] && w[1] < w[2] {
            valleys += 1;
        }
    }
    vec![peaks as f64, valleys as f64]
}

/// Autocorrelation at lags `1..=n_lags` (standard estimator: lag-covariance
/// over `n - lag` terms, normalised by the population variance). Lags at or
/// beyond the series length — and any lag of a constant series — are `0.0`.
pub fn autocorrelation_features(values: &[f64], n_lags: usize) -> Vec<f64> {
    let n = values.len();
    let mean = stats::mean(values);
    let var = stats::variance(values);
    let mut out = Vec::with_capacity(n_lags);
    for lag in 1..=n_lags {
        if lag >= n || var <= VAR_FLOOR {
            out.push(0.0);
            continue;
        }
        let mut acc = 0.0;
        for t in 0..n - lag {
            acc += (values[t] - mean) * (values[t + lag] - mean);
        }
        out.push(acc / ((n - lag) as f64 * var));
    }
    out
}

/// Magnitudes of DFT coefficients `1..=n_coefficients` (DC skipped),
/// normalised by the series length, via a hand-rolled `O(n·k)` real-input
/// DFT — no external FFT dependency, and `k` is small by construction.
/// Coefficients at or beyond the series length are `0.0`.
pub fn fft_magnitude_features(values: &[f64], n_coefficients: usize) -> Vec<f64> {
    let n = values.len();
    let mut out = Vec::with_capacity(n_coefficients);
    for k in 1..=n_coefficients {
        if k >= n {
            out.push(0.0);
            continue;
        }
        let step = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (t, v) in values.iter().enumerate() {
            let angle = step * t as f64;
            re += v * angle.cos();
            im += v * angle.sin();
        }
        out.push((re * re + im * im).sqrt() / n as f64);
    }
    out
}

/// An importance-chosen subset of the wide catalogue.
///
/// The names are a subset of the wide feature names of some
/// [`FeatureConfig`](crate::FeatureConfig), kept in **wide-vector order** so
/// pruned extraction is exactly a column selection of wide extraction
/// (pinned bit-for-bit by the determinism suite). Attached to a
/// `FeatureConfig` via its `selection` field, it makes the extractor compute
/// only the graphs, censuses and statistical families the subset needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelection {
    names: Vec<String>,
}

impl FeatureSelection {
    /// Wraps an explicit list of wide-catalogue feature names.
    pub fn new(names: Vec<String>) -> Self {
        FeatureSelection { names }
    }

    /// Picks the `k` most important features and returns them re-ordered to
    /// the wide-vector order given by `wide_names`.
    ///
    /// `ranked` must be sorted by descending importance (the output of
    /// [`rank_features`](crate::rank_features)); names not present in
    /// `wide_names` are ignored.
    pub fn from_importances(
        ranked: &[FeatureImportance],
        wide_names: &[String],
        k: usize,
    ) -> Result<Self, String> {
        if k == 0 {
            return Err("selection size must be at least 1".to_string());
        }
        if ranked.is_empty() {
            return Err(
                "no feature importances available (classifier family exposes none)".to_string(),
            );
        }
        let chosen: BTreeSet<&str> = ranked.iter().take(k).map(|f| f.name.as_str()).collect();
        let names: Vec<String> = wide_names
            .iter()
            .filter(|n| chosen.contains(n.as_str()))
            .cloned()
            .collect();
        if names.is_empty() {
            return Err("none of the ranked feature names exist in the wide catalogue".to_string());
        }
        Ok(FeatureSelection { names })
    }

    /// Checks the selection against the catalogue of `config`: it must be
    /// non-empty, free of duplicates, and every name must be one `config`
    /// can produce ([`FeatureConfig::is_known_feature_name`]). A snapshot
    /// claiming features absent from the running catalogue fails here and
    /// is skipped-and-refit by the serving registry.
    ///
    /// [`FeatureConfig::is_known_feature_name`]: crate::FeatureConfig::is_known_feature_name
    pub fn validate(&self, config: &crate::FeatureConfig) -> Result<(), String> {
        if self.names.is_empty() {
            return Err("feature selection is empty".to_string());
        }
        let mut seen = BTreeSet::new();
        for name in &self.names {
            if !seen.insert(name.as_str()) {
                return Err(format!("duplicate feature {name:?} in selection"));
            }
            if !config.is_known_feature_name(name) {
                return Err(format!("feature {name:?} is not in the running catalogue"));
            }
        }
        Ok(())
    }

    /// The selected feature names, in wide-vector order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of selected features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the selection is empty (never valid for extraction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64) * 0.21).sin() + 0.3 * ((i as f64) * 0.037).cos())
            .collect()
    }

    #[test]
    fn catalogue_names_are_unique_and_resolvable() {
        let mut seen = BTreeSet::new();
        for f in FAMILIES {
            assert!(seen.insert(f.name), "duplicate family {}", f.name);
            assert_eq!(family(f.name).unwrap().name, f.name);
        }
        assert!(family("no-such-family").is_none());
        for f in StatFamily::ALL {
            assert!(family(f.family_name()).is_some());
        }
    }

    #[test]
    fn statistical_layer_names_match_values() {
        let cfg = StatisticalConfig::standard();
        let values = wave(128);
        let feats = cfg.compute(&values);
        let names = cfg.feature_names();
        assert_eq!(feats.len(), names.len());
        assert_eq!(feats.len(), cfg.n_features());
        assert_eq!(feats.len(), 16 + 2 + 2 + 8 + 8);
        assert!(feats.iter().all(|v| v.is_finite()), "{feats:?}");
    }

    #[test]
    fn disabled_layer_is_empty() {
        let cfg = StatisticalConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.n_features(), 0);
        assert!(cfg.feature_names().is_empty());
        assert!(cfg.compute(&wave(64)).is_empty());
    }

    #[test]
    fn distribution_features_known_values() {
        let f = distribution_features(&[1.0, 2.0, 3.0, 4.0]);
        let names = stat_family_names(StatFamily::Dist, &StatisticalConfig::standard());
        let get = |n: &str| {
            f[names
                .iter()
                .position(|x| x == &format!("stat {n}"))
                .unwrap()]
        };
        assert!((get("mean") - 2.5).abs() < 1e-12);
        assert!((get("std") - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(get("min"), 1.0);
        assert_eq!(get("max"), 4.0);
        assert_eq!(get("median"), 2.5);
        assert!((get("energy") - 30.0).abs() < 1e-12);
        assert_eq!(get("above_mean"), 2.0);
        assert_eq!(get("below_mean"), 2.0);
        assert!((get("skewness")).abs() < 1e-12); // symmetric
    }

    #[test]
    fn constant_series_is_all_finite_with_zero_moment_ratios() {
        let f = distribution_features(&[3.0; 32]);
        assert!(f.iter().all(|v| v.is_finite()));
        let names = stat_family_names(StatFamily::Dist, &StatisticalConfig::standard());
        let get = |n: &str| {
            f[names
                .iter()
                .position(|x| x == &format!("stat {n}"))
                .unwrap()]
        };
        assert_eq!(get("skewness"), 0.0);
        assert_eq!(get("kurtosis"), 0.0);
        assert_eq!(get("std"), 0.0);
        let acf = autocorrelation_features(&[3.0; 32], 4);
        assert_eq!(acf, vec![0.0; 4]);
    }

    #[test]
    fn trend_of_linear_series_recovers_slope_and_intercept() {
        let values: Vec<f64> = (0..64).map(|t| 0.5 * t as f64 + 2.0).collect();
        let f = trend_features(&values);
        assert!((f[0] - 0.5).abs() < 1e-9);
        assert!((f[1] - 2.0).abs() < 1e-9);
        assert_eq!(trend_features(&[7.0]), vec![0.0, 7.0]);
        assert_eq!(trend_features(&[]), vec![0.0, 0.0]);
    }

    #[test]
    fn peak_counts_of_zigzag() {
        let f = peak_features(&[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(f, vec![3.0, 2.0]);
        assert_eq!(peak_features(&[1.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative_at_lag_one() {
        let values: Vec<f64> = (0..64)
            .map(|t| if t % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let acf = autocorrelation_features(&values, 2);
        assert!(acf[0] < -0.9, "{acf:?}");
        assert!(acf[1] > 0.9, "{acf:?}");
    }

    #[test]
    fn short_series_lags_and_coefficients_are_zero() {
        let acf = autocorrelation_features(&[1.0, 2.0], 4);
        assert_eq!(&acf[1..], &[0.0, 0.0, 0.0]);
        let fft = fft_magnitude_features(&[1.0, 2.0], 4);
        assert_eq!(&fft[1..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn dft_of_pure_tone_peaks_at_its_coefficient() {
        let n = 64;
        let values: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64).sin())
            .collect();
        let mags = fft_magnitude_features(&values, 8);
        let (argmax, _) = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(argmax + 1, 3, "{mags:?}");
        assert!((mags[2] - 0.5).abs() < 1e-9, "{mags:?}"); // amplitude/2
    }

    #[test]
    fn selection_from_importances_reorders_to_wide_order() {
        let wide: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let ranked = vec![
            FeatureImportance {
                name: "d".to_string(),
                importance: 0.9,
            },
            FeatureImportance {
                name: "b".to_string(),
                importance: 0.5,
            },
            FeatureImportance {
                name: "ghost".to_string(),
                importance: 0.4,
            },
            FeatureImportance {
                name: "a".to_string(),
                importance: 0.1,
            },
        ];
        let sel = FeatureSelection::from_importances(&ranked, &wide, 2).unwrap();
        assert_eq!(sel.names(), &["b".to_string(), "d".to_string()]);
        assert!(FeatureSelection::from_importances(&ranked, &wide, 0).is_err());
        assert!(FeatureSelection::from_importances(&[], &wide, 2).is_err());
        // ranked names entirely outside the catalogue
        let err = FeatureSelection::from_importances(&ranked[2..3], &wide, 1);
        assert!(err.is_err());
    }

    #[test]
    fn tier_and_scope_labels() {
        assert_eq!(CostTier::Fast.as_str(), "fast");
        assert_eq!(CostTier::Medium.as_str(), "medium");
        assert_eq!(CostTier::Slow.as_str(), "slow");
        assert_eq!(FamilyScope::PerSeries.as_str(), "per-series");
        assert_eq!(FamilyScope::PerGraph.as_str(), "per-graph");
    }
}
