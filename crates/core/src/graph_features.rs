//! Per-graph feature blocks.
//!
//! For a single visibility graph the extractor produces either the motif
//! probability distribution alone ("MPDs") or the MPDs followed by the other
//! statistical features (density, maximum coreness, assortativity, degree
//! statistics) — the two configurations compared in columns A/C vs B/D of
//! Table 2.

use crate::motif_groups::{motif_feature_names, motif_probability_distribution};
use crate::trace::{ExtractStage, NoopTraceSink, TraceSink};
use tsg_graph::motifs::{count_motifs, count_motifs_with, MotifWorkspace};
use tsg_graph::stats::GraphStatistics;
use tsg_graph::Graph;

/// Computes the feature block for one graph.
///
/// * `include_other_stats = false` → 17 motif probabilities.
/// * `include_other_stats = true`  → 17 motif probabilities followed by 7
///   scalar statistics.
///
/// Motif counting reuses the calling thread's [`MotifWorkspace`]; use
/// [`graph_feature_block_with`] to hold the workspace explicitly.
pub fn graph_feature_block(graph: &Graph, include_other_stats: bool) -> Vec<f64> {
    features_from_counts(count_motifs(graph), graph, include_other_stats)
}

/// [`graph_feature_block`] with a caller-held motif workspace, so a worker
/// processing a stream of graphs performs zero motif-kernel allocations
/// after the first one.
pub fn graph_feature_block_with(
    graph: &Graph,
    include_other_stats: bool,
    workspace: &mut MotifWorkspace,
) -> Vec<f64> {
    graph_feature_block_traced(graph, include_other_stats, workspace, &mut NoopTraceSink)
}

/// [`graph_feature_block_with`] with a [`TraceSink`] observing the motif
/// census (the hottest kernel). Callbacks only — results are identical.
pub fn graph_feature_block_traced(
    graph: &Graph,
    include_other_stats: bool,
    workspace: &mut MotifWorkspace,
    sink: &mut impl TraceSink,
) -> Vec<f64> {
    sink.enter(ExtractStage::MotifCount);
    let counts = count_motifs_with(graph, workspace);
    sink.exit(ExtractStage::MotifCount);
    features_from_counts(counts, graph, include_other_stats)
}

fn features_from_counts(
    counts: tsg_graph::MotifCounts,
    graph: &Graph,
    include_other_stats: bool,
) -> Vec<f64> {
    let mut features = motif_probability_distribution(&counts);
    if include_other_stats {
        features.extend(GraphStatistics::compute(graph).to_features());
    }
    features
}

/// Names for [`graph_feature_block`], in the same order.
pub fn graph_feature_names(include_other_stats: bool) -> Vec<String> {
    let mut names = motif_feature_names();
    if include_other_stats {
        names.extend(
            GraphStatistics::feature_names()
                .into_iter()
                .map(|s| s.to_string()),
        );
    }
    names
}

/// Number of features in one block.
pub fn block_len(include_other_stats: bool) -> usize {
    if include_other_stats {
        17 + 7
    } else {
        17
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::visibility::{horizontal_visibility_graph, visibility_graph};

    fn series() -> Vec<f64> {
        (0..128)
            .map(|i| ((i as f64) * 0.3).sin() + 0.3 * ((i as f64) * 0.05).cos())
            .collect()
    }

    #[test]
    fn block_lengths_match_names() {
        let g = visibility_graph(&series());
        for include in [false, true] {
            let block = graph_feature_block(&g, include);
            let names = graph_feature_names(include);
            assert_eq!(block.len(), names.len());
            assert_eq!(block.len(), block_len(include));
        }
    }

    #[test]
    fn features_are_finite() {
        for g in [
            visibility_graph(&series()),
            horizontal_visibility_graph(&series()),
        ] {
            let block = graph_feature_block(&g, true);
            assert!(block.iter().all(|v| v.is_finite()), "{block:?}");
        }
    }

    #[test]
    fn mpds_prefix_is_shared() {
        let g = visibility_graph(&series());
        let short = graph_feature_block(&g, false);
        let long = graph_feature_block(&g, true);
        assert_eq!(&long[..short.len()], &short[..]);
        assert!(long.len() > short.len());
    }

    #[test]
    fn vg_and_hvg_blocks_differ() {
        let s = series();
        let vg_block = graph_feature_block(&visibility_graph(&s), true);
        let hvg_block = graph_feature_block(&horizontal_visibility_graph(&s), true);
        assert_ne!(vg_block, hvg_block);
    }
}
