//! UVG / AMVG / MVG representations (Definitions 3.1–3.3).
//!
//! A [`ScaleMode`] selects which scales of the multiscale representation are
//! turned into graphs; [`SeriesGraphs`] holds the resulting set of visibility
//! graphs for one series together with the scale index and graph kind of each
//! member, which is what the feature extractor iterates over.

use crate::trace::{ExtractStage, NoopTraceSink, TraceSink};
use serde::{Deserialize, Serialize};
use tsg_graph::visibility::VisibilityKind;
use tsg_graph::Graph;
use tsg_ts::multiscale::{MultiscaleOptions, MultiscaleRepresentation};
use tsg_ts::TimeSeries;

/// Which scales participate in the representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleMode {
    /// Uniscale: only the original series `T0` (UVG).
    Uniscale,
    /// Approximated multiscale: only the downscaled approximations `T1..Tm`
    /// (AMVG).
    ApproximatedMultiscale,
    /// Full multiscale: `T0` plus `T1..Tm` (MVG).
    FullMultiscale,
}

impl ScaleMode {
    /// Short name used in reports (`UVG` / `AMVG` / `MVG`).
    pub fn short_name(self) -> &'static str {
        match self {
            ScaleMode::Uniscale => "UVG",
            ScaleMode::ApproximatedMultiscale => "AMVG",
            ScaleMode::FullMultiscale => "MVG",
        }
    }
}

/// One visibility graph within a series' multiscale representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleGraph {
    /// Scale index (`0` = the original series, `i` = the `i`-th halving).
    pub scale: usize,
    /// Whether this is a natural or horizontal visibility graph.
    pub kind: VisibilityKind,
    /// The graph itself.
    pub graph: Graph,
}

/// The set of visibility graphs generated from one time series under a given
/// scale mode and set of graph kinds (Definition 3.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesGraphs {
    /// Graphs ordered by scale, then by graph kind.
    pub graphs: Vec<ScaleGraph>,
}

impl SeriesGraphs {
    /// Builds the graphs for `series`.
    ///
    /// `kinds` selects VG, HVG or both; `mode` selects the scales; `options`
    /// controls the multiscale cascade (`τ`).
    pub fn build(
        series: &TimeSeries,
        kinds: &[VisibilityKind],
        mode: ScaleMode,
        options: MultiscaleOptions,
    ) -> Self {
        Self::build_with_sink(series, kinds, mode, options, &mut NoopTraceSink)
    }

    /// [`SeriesGraphs::build`] with a [`TraceSink`] observing the `Scale`
    /// and `GraphBuild` stages. The sink callbacks are the only
    /// difference — the built graphs are bit-identical.
    pub fn build_with_sink(
        series: &TimeSeries,
        kinds: &[VisibilityKind],
        mode: ScaleMode,
        options: MultiscaleOptions,
        sink: &mut impl TraceSink,
    ) -> Self {
        let scales = scale_values_with_sink(series, mode, options, sink);
        let mut graphs = Vec::with_capacity(scales.len() * kinds.len());
        for (scale, values) in &scales {
            for &kind in kinds {
                sink.enter(ExtractStage::GraphBuild);
                let graph = kind.build(values);
                sink.exit(ExtractStage::GraphBuild);
                graphs.push(ScaleGraph {
                    scale: *scale,
                    kind,
                    graph,
                });
            }
        }
        SeriesGraphs { graphs }
    }

    /// Number of graphs in the representation.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the representation is empty (never the case for non-empty
    /// input series).
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The distinct scale indices present, in ascending order.
    pub fn scales(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.graphs.iter().map(|g| g.scale).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

/// The scale-indexed value vectors a mode produces for one series — the
/// single source the graph builder and the pruned extractor share, so both
/// see the exact same cascade (including the AMVG short-series fallback).
pub(crate) fn scale_values_with_sink(
    series: &TimeSeries,
    mode: ScaleMode,
    options: MultiscaleOptions,
    sink: &mut impl TraceSink,
) -> Vec<(usize, Vec<f64>)> {
    let mut scales: Vec<(usize, Vec<f64>)> = Vec::new();
    match mode {
        ScaleMode::Uniscale => {
            scales.push((0, series.values().to_vec()));
        }
        ScaleMode::ApproximatedMultiscale | ScaleMode::FullMultiscale => {
            sink.enter(ExtractStage::Scale);
            let rep = MultiscaleRepresentation::build(series, options)
                .expect("multiscale construction cannot fail on non-empty series");
            sink.exit(ExtractStage::Scale);
            if mode == ScaleMode::FullMultiscale {
                scales.push((0, rep.original.values().to_vec()));
            }
            for (i, t) in rep.approximations.iter().enumerate() {
                scales.push((i + 1, t.values().to_vec()));
            }
            // degenerate case: series too short to downscale — AMVG falls
            // back to the original so the representation is never empty
            if scales.is_empty() {
                scales.push((0, series.values().to_vec()));
            }
        }
    }
    scales
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> TimeSeries {
        TimeSeries::with_label(
            (0..n)
                .map(|i| ((i as f64) * 0.21).sin() + ((i as f64) * 0.037).cos())
                .collect(),
            0,
        )
    }

    #[test]
    fn uniscale_has_one_scale() {
        let s = series(256);
        let rep = SeriesGraphs::build(
            &s,
            &[VisibilityKind::Natural, VisibilityKind::Horizontal],
            ScaleMode::Uniscale,
            MultiscaleOptions::default(),
        );
        assert_eq!(rep.len(), 2);
        assert_eq!(rep.scales(), vec![0]);
        assert_eq!(rep.graphs[0].graph.n_vertices(), 256);
    }

    #[test]
    fn amvg_excludes_original_scale() {
        let s = series(256);
        let rep = SeriesGraphs::build(
            &s,
            &[VisibilityKind::Natural],
            ScaleMode::ApproximatedMultiscale,
            MultiscaleOptions::with_tau(15),
        );
        assert!(!rep.scales().contains(&0));
        assert!(rep.len() >= 3);
        // each scale shrinks by half
        for g in &rep.graphs {
            assert_eq!(g.graph.n_vertices(), 256 >> g.scale);
        }
    }

    #[test]
    fn mvg_is_superset_of_uvg_and_amvg_scales() {
        let s = series(512);
        let opts = MultiscaleOptions::with_tau(15);
        let mvg = SeriesGraphs::build(
            &s,
            &[VisibilityKind::Natural],
            ScaleMode::FullMultiscale,
            opts,
        );
        let amvg = SeriesGraphs::build(
            &s,
            &[VisibilityKind::Natural],
            ScaleMode::ApproximatedMultiscale,
            opts,
        );
        let mvg_scales = mvg.scales();
        assert!(mvg_scales.contains(&0));
        for s in amvg.scales() {
            assert!(mvg_scales.contains(&s));
        }
        assert_eq!(mvg.len(), amvg.len() + 1);
    }

    #[test]
    fn short_series_fall_back_to_original() {
        let s = series(20);
        let rep = SeriesGraphs::build(
            &s,
            &[VisibilityKind::Horizontal],
            ScaleMode::ApproximatedMultiscale,
            MultiscaleOptions::with_tau(15),
        );
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.scales(), vec![0]);
        assert!(!rep.is_empty());
    }

    #[test]
    fn short_names() {
        assert_eq!(ScaleMode::Uniscale.short_name(), "UVG");
        assert_eq!(ScaleMode::ApproximatedMultiscale.short_name(), "AMVG");
        assert_eq!(ScaleMode::FullMultiscale.short_name(), "MVG");
    }
}
