//! Pairwise scatter comparisons (Figures 3, 4, 5, 8, 9).
//!
//! A [`ScatterComparison`] holds paired values of two methods across datasets
//! together with win/tie/loss counts, can serialise itself to CSV/JSON for
//! external plotting and renders a coarse ASCII scatter plot for terminal
//! inspection.

use serde::{Deserialize, Serialize};

/// Win / tie / loss counts of method Y against method X.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct WinLoss {
    /// Datasets where Y has the strictly smaller value (wins, for error rates).
    pub wins: usize,
    /// Datasets where the values are equal.
    pub ties: usize,
    /// Datasets where Y has the strictly larger value.
    pub losses: usize,
}

/// A paired comparison of two methods over a set of named datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterComparison {
    /// Label of the x-axis method.
    pub x_label: String,
    /// Label of the y-axis method.
    pub y_label: String,
    /// Dataset names.
    pub datasets: Vec<String>,
    /// Values of the x-axis method (e.g. error rates).
    pub x: Vec<f64>,
    /// Values of the y-axis method.
    pub y: Vec<f64>,
}

impl ScatterComparison {
    /// Creates a comparison from parallel vectors.
    pub fn new(
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        datasets: Vec<String>,
        x: Vec<f64>,
        y: Vec<f64>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "paired values must align");
        assert_eq!(x.len(), datasets.len(), "dataset names must align");
        ScatterComparison {
            x_label: x_label.into(),
            y_label: y_label.into(),
            datasets,
            x,
            y,
        }
    }

    /// Win/tie/loss counts of the y-axis method (smaller is better, as for
    /// error rates and runtimes).
    pub fn win_loss(&self) -> WinLoss {
        let mut out = WinLoss::default();
        for (x, y) in self.x.iter().zip(self.y.iter()) {
            if (x - y).abs() < 1e-12 {
                out.ties += 1;
            } else if y < x {
                out.wins += 1;
            } else {
                out.losses += 1;
            }
        }
        out
    }

    /// CSV serialisation (`dataset,x,y` with a header row).
    pub fn to_csv(&self) -> String {
        let mut out = format!("dataset,{},{}\n", self.x_label, self.y_label);
        for ((name, x), y) in self.datasets.iter().zip(self.x.iter()).zip(self.y.iter()) {
            out.push_str(&format!("{name},{x},{y}\n"));
        }
        out
    }

    /// A coarse ASCII scatter plot (square, `size × size` characters) with
    /// the diagonal marked; points below the diagonal are wins for the
    /// y-axis method when smaller values are better.
    pub fn render_ascii(&self, size: usize) -> String {
        let size = size.max(8);
        let max = self
            .x
            .iter()
            .chain(self.y.iter())
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let mut grid = vec![vec![' '; size]; size];
        for (i, row) in grid.iter_mut().enumerate() {
            // diagonal: x == y
            row[i] = '.';
        }
        for (x, y) in self.x.iter().zip(self.y.iter()) {
            let col = ((x / max) * (size - 1) as f64).round() as usize;
            let row = ((y / max) * (size - 1) as f64).round() as usize;
            // plot with y increasing upwards
            grid[size - 1 - row][col] = 'o';
        }
        let mut out = format!(
            "{} (x) vs {} (y); points below the diagonal favour {}\n",
            self.x_label, self.y_label, self.y_label
        );
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!("max = {max:.3}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comparison() -> ScatterComparison {
        ScatterComparison::new(
            "A",
            "B",
            vec!["d1".into(), "d2".into(), "d3".into(), "d4".into()],
            vec![0.30, 0.20, 0.10, 0.25],
            vec![0.10, 0.20, 0.30, 0.20],
        )
    }

    #[test]
    fn win_loss_counts() {
        let wl = comparison().win_loss();
        assert_eq!(wl.wins, 2);
        assert_eq!(wl.ties, 1);
        assert_eq!(wl.losses, 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = comparison().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "dataset,A,B");
        assert!(lines[1].starts_with("d1,"));
    }

    #[test]
    fn ascii_render_contains_points() {
        let plot = comparison().render_ascii(16);
        assert!(plot.contains('o'));
        assert!(plot.contains("A (x) vs B (y)"));
        assert!(plot.lines().count() >= 16);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        ScatterComparison::new("A", "B", vec!["d".into()], vec![0.1, 0.2], vec![0.1]);
    }
}
