//! Plain-text / Markdown result tables for the experiment binaries.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells, long rows are
    /// truncated to the header width).
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table with whitespace-aligned columns for terminals.
    pub fn to_aligned(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (j, cell) in row.iter().enumerate().take(n_cols) {
                widths[j] = widths[j].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(j, c)| format!("{:width$}", c, width = widths[j]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an error rate / probability with three decimals (the paper's
/// table precision).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a 64-bit content hash as fixed-width lowercase hex — the
/// rendering used for dataset provenance columns (file fingerprints) in
/// experiment tables and artefacts.
pub fn fmt_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// [`fmt_hash`] for optional hashes; `None` renders as `-` so provenance
/// columns stay aligned for synthetic (hash-less) datasets.
pub fn fmt_hash_opt(hash: Option<u64>) -> String {
    hash.map(fmt_hash).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(&["Dataset", "1NN-ED", "MVG"]);
        t.add_row(vec!["ArrowHead".into(), fmt3(0.2), fmt3(0.398)]);
        t.add_row(vec!["BeetleFly".into(), fmt3(0.25), fmt3(0.18)]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = table().to_markdown();
        assert!(md.starts_with("| Dataset | 1NN-ED | MVG |"));
        assert!(md.contains("| ArrowHead | 0.200 | 0.398 |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn aligned_rendering_pads_columns() {
        let txt = table().to_aligned();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[2].starts_with("ArrowHead"));
    }

    #[test]
    fn hash_formatting_is_fixed_width_hex() {
        assert_eq!(fmt_hash(0), "0000000000000000");
        assert_eq!(fmt_hash(0xdeadbeef), "00000000deadbeef");
        assert_eq!(fmt_hash(u64::MAX), "ffffffffffffffff");
        assert_eq!(fmt_hash_opt(Some(1)), "0000000000000001");
        assert_eq!(fmt_hash_opt(None), "-");
    }

    #[test]
    fn csv_rendering_and_row_padding() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(t.n_rows(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("1,"));
    }
}
