//! Friedman test and Nemenyi post-hoc critical difference.
//!
//! Figures 6 and 7 of the paper compare classifier variants with a
//! critical-difference diagram: methods are placed at their average rank and
//! groups whose rank difference is below the Nemenyi critical difference
//! `CD = q_α · sqrt(k (k + 1) / (6 N))` are connected by an insignificance
//! bar. This module computes the average ranks, the Friedman chi-square
//! statistic and the CD value, plus the grouping of methods into
//! insignificance cliques — everything needed to draw the diagram.

use crate::ranks::average_ranks;
use serde::{Deserialize, Serialize};

/// Studentised range statistic `q_α / sqrt(2)` for α = 0.05, indexed by the
/// number of methods `k` (2 ≤ k ≤ 10). Values from Demšar (2006), the
/// standard reference for critical-difference diagrams.
const NEMENYI_Q_ALPHA_05: [f64; 9] = [
    1.960, // k = 2
    2.343, // k = 3
    2.569, // k = 4
    2.728, // k = 5
    2.850, // k = 6
    2.949, // k = 7
    3.031, // k = 8
    3.102, // k = 9
    3.164, // k = 10
];

/// Result of the Friedman test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FriedmanResult {
    /// Average rank per method (rank 1 = best).
    pub average_ranks: Vec<f64>,
    /// Friedman chi-square statistic.
    pub chi_square: f64,
    /// Number of datasets.
    pub n_datasets: usize,
    /// Number of methods.
    pub n_methods: usize,
}

/// Runs the Friedman test on a `datasets × methods` error-rate matrix.
pub fn friedman_test(error_rates: &[Vec<f64>]) -> FriedmanResult {
    let n = error_rates.len();
    let k = error_rates.first().map(|r| r.len()).unwrap_or(0);
    let ranks = average_ranks(error_rates);
    let nf = n as f64;
    let kf = k as f64;
    let sum_sq: f64 = ranks.iter().map(|r| r * r).sum();
    let chi_square = if n == 0 || k < 2 {
        0.0
    } else {
        12.0 * nf / (kf * (kf + 1.0)) * (sum_sq - kf * (kf + 1.0) * (kf + 1.0) / 4.0)
    };
    FriedmanResult {
        average_ranks: ranks,
        chi_square,
        n_datasets: n,
        n_methods: k,
    }
}

/// Critical-difference data for a Nemenyi post-hoc comparison at α = 0.05.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalDifference {
    /// Method names, in the input column order.
    pub methods: Vec<String>,
    /// Average rank per method.
    pub average_ranks: Vec<f64>,
    /// The critical difference value.
    pub cd: f64,
    /// Groups of method indices that are *not* significantly different
    /// (maximal cliques of the insignificance relation, as drawn by the bold
    /// bars of a CD diagram).
    pub insignificant_groups: Vec<Vec<usize>>,
}

/// Computes the Nemenyi critical difference at α = 0.05.
///
/// `error_rates` is a `datasets × methods` matrix and `methods` the matching
/// column names. Supports 2–10 methods (the range the q table covers).
pub fn nemenyi_critical_difference(
    error_rates: &[Vec<f64>],
    methods: &[&str],
) -> CriticalDifference {
    let k = methods.len();
    assert!(
        (2..=10).contains(&k),
        "Nemenyi table covers 2..=10 methods, got {k}"
    );
    let n = error_rates.len().max(1);
    let ranks = average_ranks(error_rates);
    let q = NEMENYI_Q_ALPHA_05[k - 2];
    let cd = q * (k as f64 * (k as f64 + 1.0) / (6.0 * n as f64)).sqrt();
    // group methods by rank proximity: sort by rank, then sweep maximal
    // windows whose extreme ranks differ by less than CD
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        ranks[a]
            .partial_cmp(&ranks[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for start in 0..k {
        let mut end = start;
        while end + 1 < k && ranks[order[end + 1]] - ranks[order[start]] < cd {
            end += 1;
        }
        if end > start {
            let group: Vec<usize> = order[start..=end].to_vec();
            // keep only maximal groups
            if !groups.iter().any(|g| group.iter().all(|m| g.contains(m))) {
                groups.push(group);
            }
        }
    }
    CriticalDifference {
        methods: methods.iter().map(|s| s.to_string()).collect(),
        average_ranks: ranks,
        cd,
        insignificant_groups: groups,
    }
}

impl CriticalDifference {
    /// Whether two methods (by column index) are significantly different.
    pub fn is_significant(&self, a: usize, b: usize) -> bool {
        (self.average_ranks[a] - self.average_ranks[b]).abs() >= self.cd
    }

    /// A plain-text rendering of the critical-difference diagram.
    pub fn render(&self) -> String {
        let mut order: Vec<usize> = (0..self.methods.len()).collect();
        order.sort_by(|&a, &b| {
            self.average_ranks[a]
                .partial_cmp(&self.average_ranks[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out = format!("CD = {:.4} (alpha = 0.05)\n", self.cd);
        for &i in &order {
            out.push_str(&format!(
                "  rank {:>5.3}  {}\n",
                self.average_ranks[i], self.methods[i]
            ));
        }
        for (g, group) in self.insignificant_groups.iter().enumerate() {
            let names: Vec<&str> = group.iter().map(|&i| self.methods[i].as_str()).collect();
            out.push_str(&format!(
                "  group {}: {} (not significantly different)\n",
                g + 1,
                names.join(" ~ ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_with_clear_winner() -> Vec<Vec<f64>> {
        // method 0 always best, method 2 always worst, 20 datasets
        (0..20)
            .map(|i| {
                vec![
                    0.10 + 0.001 * i as f64,
                    0.20 + 0.001 * i as f64,
                    0.30 + 0.001 * i as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn friedman_detects_consistent_ordering() {
        let result = friedman_test(&matrix_with_clear_winner());
        assert_eq!(result.n_methods, 3);
        assert_eq!(result.n_datasets, 20);
        assert!((result.average_ranks[0] - 1.0).abs() < 1e-12);
        assert!((result.average_ranks[2] - 3.0).abs() < 1e-12);
        // chi-square for a perfectly consistent ranking of k=3 over N=20 is 2N
        assert!((result.chi_square - 40.0).abs() < 1e-9);
    }

    #[test]
    fn nemenyi_cd_matches_paper_magnitudes() {
        // the paper reports CD = 0.5307 for k = 3 over the 39-dataset table
        let errors: Vec<Vec<f64>> = (0..39)
            .map(|i| vec![0.1, 0.2, 0.3 + i as f64 * 0.0])
            .collect();
        let cd = nemenyi_critical_difference(&errors, &["XGBoost", "RF", "SVM"]);
        assert!((cd.cd - 0.5307).abs() < 0.01, "cd = {}", cd.cd);
        // and CD = 0.7511 for k = 4 over 39 datasets
        let errors4: Vec<Vec<f64>> = (0..39).map(|_| vec![0.1, 0.2, 0.3, 0.4]).collect();
        let cd4 = nemenyi_critical_difference(&errors4, &["a", "b", "c", "d"]);
        assert!((cd4.cd - 0.7511).abs() < 0.01, "cd = {}", cd4.cd);
    }

    #[test]
    fn significant_and_insignificant_pairs() {
        let errors = matrix_with_clear_winner();
        let cd = nemenyi_critical_difference(&errors, &["best", "mid", "worst"]);
        assert!(cd.is_significant(0, 2));
        assert!(!cd
            .insignificant_groups
            .iter()
            .any(|g| g.contains(&0) && g.contains(&2)));
        let rendered = cd.render();
        assert!(rendered.contains("best"));
        assert!(rendered.contains("CD ="));
    }

    #[test]
    fn noisy_methods_group_together() {
        // two methods statistically indistinguishable, few datasets
        let errors: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0.2, 0.21]
                } else {
                    vec![0.21, 0.2]
                }
            })
            .collect();
        let cd = nemenyi_critical_difference(&errors, &["a", "b"]);
        assert!(!cd.is_significant(0, 1));
        assert_eq!(cd.insignificant_groups.len(), 1);
    }

    #[test]
    #[should_panic]
    fn too_many_methods_panics() {
        let errors = vec![vec![0.0; 11]];
        let names: Vec<&str> = (0..11).map(|_| "m").collect();
        nemenyi_critical_difference(&errors, &names);
    }
}
