//! Wall-clock timing for the runtime columns of Table 3 and Figure 9.

// tsg-allow(det-time): wall-clock timing IS this module's purpose — it feeds the runtime columns, never classification results
use std::time::Instant;

/// A stopwatch that accumulates named phases (e.g. feature extraction vs
/// training) and reports seconds.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    phases: Vec<(String, f64)>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Creates an empty stopwatch.
    pub fn new() -> Self {
        Stopwatch { phases: Vec::new() }
    }

    /// Times a closure and records it under `phase`; returns the closure's
    /// result.
    pub fn time<T>(&mut self, phase: impl Into<String>, f: impl FnOnce() -> T) -> T {
        // tsg-allow(det-time): measuring the closure's wall time is the deliverable; results never depend on it
        let start = Instant::now();
        let out = f();
        self.phases
            .push((phase.into(), start.elapsed().as_secs_f64()));
        out
    }

    /// Seconds recorded for a phase (summed over repeated phases of the same
    /// name); 0 when the phase never ran.
    pub fn seconds(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(name, _)| name == phase)
            .map(|(_, s)| s)
            .sum()
    }

    /// Total seconds across all phases.
    pub fn total(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// All `(phase, seconds)` records in insertion order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phases_and_totals() {
        let mut sw = Stopwatch::new();
        let x = sw.time("fe", || {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(x > 0);
        sw.time("clf", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        sw.time("clf", || {
            std::thread::sleep(std::time::Duration::from_millis(5))
        });
        assert!(sw.seconds("fe") >= 0.0);
        assert!(sw.seconds("clf") >= 0.009);
        assert_eq!(sw.seconds("missing"), 0.0);
        assert!((sw.total() - (sw.seconds("fe") + sw.seconds("clf"))).abs() < 1e-12);
        assert_eq!(sw.phases().len(), 3);
    }
}
