//! Box-plot summaries (Figure 2: motif probability distributions per class).

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean of one group of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Group label (e.g. `"Class 1 P(M41)"`).
    pub label: String,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

impl BoxplotSummary {
    /// Computes the summary of a group of values (empty groups produce all
    /// zeros).
    pub fn compute(label: impl Into<String>, values: &[f64]) -> Self {
        let label = label.into();
        if values.is_empty() {
            return BoxplotSummary {
                label,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                n: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                sorted[lo] * (hi as f64 - pos) + sorted[hi] * (pos - lo as f64)
            }
        };
        BoxplotSummary {
            label,
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: sorted[sorted.len() - 1],
            mean: values.iter().sum::<f64>() / values.len() as f64,
            n: values.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = BoxplotSummary::compute("g", &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = BoxplotSummary::compute("g", &[3.0, 1.0, 2.0]);
        let b = BoxplotSummary::compute("g", &[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_group() {
        let s = BoxplotSummary::compute("empty", &[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.median, 0.0);
    }
}
