//! # tsg-eval — evaluation statistics and reporting
//!
//! The statistical machinery behind the paper's experiment section:
//!
//! * [`wilcoxon`] — the Wilcoxon signed-rank test used to compare error
//!   rates of two methods across datasets (Table 2 and Table 3 p-values).
//! * [`friedman_nemenyi`] — the Friedman test plus the Nemenyi post-hoc
//!   critical difference used by the critical-difference diagrams of
//!   Figures 6 and 7.
//! * [`ranks`] — average ranking with tie handling.
//! * [`scatter`] — pairwise error-rate scatter data with win/tie/loss counts
//!   (Figures 3, 4, 5, 8 and 9) and an ASCII rendering.
//! * [`boxplot`] — five-number summaries for the motif-distribution box
//!   plots of Figure 2.
//! * [`tables`] — plain-text / Markdown table formatting for the experiment
//!   binaries.
//! * [`timing`] — a tiny stopwatch used to record feature-extraction and
//!   training runtimes (Table 3, Figure 9).

pub mod boxplot;
pub mod friedman_nemenyi;
pub mod ranks;
pub mod scatter;
pub mod tables;
pub mod timing;
pub mod wilcoxon;

pub use boxplot::BoxplotSummary;
pub use friedman_nemenyi::{friedman_test, nemenyi_critical_difference, CriticalDifference};
pub use ranks::average_ranks;
pub use scatter::{ScatterComparison, WinLoss};
pub use tables::Table;
pub use timing::Stopwatch;
pub use wilcoxon::wilcoxon_signed_rank;
