//! Wilcoxon signed-rank test.
//!
//! Two-sided test on paired samples (error rates of two methods across the
//! same datasets). Zero differences are dropped (Wilcoxon's original
//! treatment) and tied absolute differences receive average ranks; the
//! p-value uses the normal approximation with tie and continuity
//! corrections, which matches scipy's default behaviour for the sample sizes
//! in the paper (≈ 39 datasets).

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// The test statistic `W` (the smaller of the positive/negative rank sums).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of non-zero differences used.
    pub n_used: usize,
}

/// Runs the two-sided Wilcoxon signed-rank test on paired observations.
///
/// Returns `None` when fewer than one non-zero difference remains.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Option<WilcoxonResult> {
    assert_eq!(a.len(), b.len(), "paired test needs equal-length samples");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| x - y)
        .filter(|d| d.abs() > 1e-12)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return None;
    }
    // rank |d| with average ranks for ties
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[order[j + 1]].abs() - diffs[order[i]].abs()).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(ranks.iter())
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let w_minus: f64 = diffs
        .iter()
        .zip(ranks.iter())
        .filter(|(d, _)| **d < 0.0)
        .map(|(_, r)| r)
        .sum();
    let w = w_plus.min(w_minus);
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        return Some(WilcoxonResult {
            statistic: w,
            p_value: 1.0,
            n_used: n,
        });
    }
    // continuity correction
    let z = (w - mean + 0.5) / var.sqrt();
    let p = (2.0 * standard_normal_cdf(z)).clamp(0.0, 1.0);
    Some(WilcoxonResult {
        statistic: w,
        p_value: p,
        n_used: n,
    })
}

/// Standard normal CDF via the complementary error function (Abramowitz &
/// Stegun 7.1.26 approximation, |error| < 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.5 * x.abs());
    let tau = t
        * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn identical_samples_have_no_result() {
        let a = [0.1, 0.2, 0.3];
        assert!(wilcoxon_signed_rank(&a, &a).is_none());
    }

    #[test]
    fn clearly_different_samples_have_small_p() {
        let a: Vec<f64> = (0..30).map(|i| 0.1 + 0.001 * i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.2).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert_eq!(r.n_used, 30);
        // statistic is the min rank sum → 0 when one side dominates entirely
        assert_eq!(r.statistic, 0.0);
    }

    #[test]
    fn symmetric_noise_has_large_p() {
        // alternating ± differences of equal magnitude
        let a: Vec<f64> = (0..40).map(|i| 0.5 + 0.05 * ((i % 7) as f64)).collect();
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, x)| if i % 2 == 0 { x + 0.01 } else { x - 0.01 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn scipy_reference_case() {
        // scipy.stats.wilcoxon(d) with d = [6,8,14,16,23,24,28,29,41,-48,49,56,60,-67,75]
        // gives statistic = 24.0 and p ≈ 0.0413 (normal approximation differs
        // slightly from the exact p = 0.04126); accept a small tolerance
        let b = [0.0f64; 15];
        let a = [
            6.0, 8.0, 14.0, 16.0, 23.0, 24.0, 28.0, 29.0, 41.0, -48.0, 49.0, 56.0, 60.0, -67.0,
            75.0,
        ];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.statistic, 24.0);
        assert!((r.p_value - 0.041).abs() < 0.02, "p = {}", r.p_value);
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 5.0];
        let b = [0.5, 0.5, 1.5, 1.5, 1.0, 3.0, 1.0, 1.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }
}
