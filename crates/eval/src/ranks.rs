//! Average ranks across datasets (lower error rate → better rank 1).

/// Computes the rank of each value within one dataset row (rank 1 = smallest
/// value), averaging ranks over ties.
pub fn rank_row(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (values[order[j + 1]] - values[order[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Average rank per method over a `datasets × methods` error-rate matrix.
/// Rank 1 is the most accurate method.
pub fn average_ranks(error_rates: &[Vec<f64>]) -> Vec<f64> {
    if error_rates.is_empty() {
        return Vec::new();
    }
    let k = error_rates[0].len();
    let mut sums = vec![0.0; k];
    for row in error_rates {
        assert_eq!(row.len(), k, "ragged error-rate matrix");
        for (j, r) in rank_row(row).into_iter().enumerate() {
            sums[j] += r;
        }
    }
    sums.into_iter()
        .map(|s| s / error_rates.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking() {
        assert_eq!(rank_row(&[0.3, 0.1, 0.2]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn tied_values_share_average_rank() {
        assert_eq!(rank_row(&[0.2, 0.1, 0.2]), vec![2.5, 1.0, 2.5]);
        assert_eq!(rank_row(&[0.5, 0.5, 0.5]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn average_ranks_over_matrix() {
        let errors = vec![
            vec![0.1, 0.2, 0.3], // method 0 best
            vec![0.1, 0.2, 0.3],
            vec![0.3, 0.2, 0.1], // method 2 best
        ];
        let ranks = average_ranks(&errors);
        assert_eq!(ranks.len(), 3);
        assert!((ranks[0] - (1.0 + 1.0 + 3.0) / 3.0).abs() < 1e-12);
        assert!((ranks[1] - 2.0).abs() < 1e-12);
        assert!(average_ranks(&[]).is_empty());
    }
}
