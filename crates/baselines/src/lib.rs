//! # tsg-baselines — reference time series classifiers
//!
//! The five state-of-the-art methods the paper compares against (section
//! 4.4), implemented from their original descriptions so that both the
//! accuracy *and* the runtime comparisons of Table 3 / Figures 8–9 run real
//! competing computations:
//!
//! * [`nn`] — 1-nearest-neighbour with Euclidean or DTW distance (with
//!   `LB_Keogh` pruning and early abandoning).
//! * [`sax_vsm`] — SAX-VSM: class-level tf-idf vectors over SAX word bags,
//!   cosine-similarity classification (Senin & Malinchik, 2013).
//! * [`bag_of_patterns`] — Bag-of-Patterns: per-series SAX word histograms
//!   with nearest-neighbour matching (Lin et al., 2012).
//! * [`fast_shapelets`] — a shapelet decision tree with random-projection
//!   style candidate subsampling in the spirit of Fast Shapelets
//!   (Rakthanmanon & Keogh, 2013).
//! * [`learning_shapelets`] — Learning Shapelets: jointly learning shapelets
//!   and a logistic model by gradient descent (Grabocka et al., 2014).
//!
//! All classifiers implement the common [`TscClassifier`] trait so the
//! benchmark harness can drive them uniformly.

pub mod bag_of_patterns;
pub mod error;
pub mod fast_shapelets;
pub mod learning_shapelets;
pub mod nn;
pub mod sax_vsm;
pub mod traits;

pub use bag_of_patterns::BagOfPatterns;
pub use error::BaselineError;
pub use fast_shapelets::{FastShapelets, FastShapeletsParams};
pub use learning_shapelets::{LearningShapelets, LearningShapeletsParams};
pub use nn::{NnClassifier, NnDistance};
pub use sax_vsm::{SaxVsm, SaxVsmParams};
pub use traits::TscClassifier;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
