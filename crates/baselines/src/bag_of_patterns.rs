//! Bag-of-Patterns (Lin, Khade & Li, 2012).
//!
//! Every series becomes a histogram over the SAX words of its sliding
//! windows; classification is 1-nearest-neighbour between histograms
//! (Euclidean distance over the joint vocabulary).
//!
//! Histograms are `BTreeMap`s so the summation order inside
//! [`BagOfPatterns::distance`] is the sorted word order — distances are
//! bit-deterministic across runs and thread counts, which `HashMap`'s
//! per-process hasher seed would break.

use crate::error::BaselineError;
use crate::traits::TscClassifier;
use crate::Result;
use std::collections::BTreeMap;
use tsg_ts::sax::{sax_words_sliding, SaxParams};
use tsg_ts::{Dataset, TimeSeries};

/// Bag-of-Patterns classifier (1NN over SAX word histograms).
#[derive(Debug, Clone)]
pub struct BagOfPatterns {
    /// Sliding window length as a fraction of the series length.
    pub window_fraction: f64,
    /// SAX parameters per window.
    pub sax: SaxParams,
    window: usize,
    train_bags: Vec<(BTreeMap<String, f64>, usize)>,
}

impl BagOfPatterns {
    /// Creates a classifier with the given window fraction and SAX setup.
    pub fn new(window_fraction: f64, sax: SaxParams) -> Self {
        BagOfPatterns {
            window_fraction,
            sax,
            window: 0,
            train_bags: Vec::new(),
        }
    }

    fn bag(&self, series: &TimeSeries) -> Result<BTreeMap<String, f64>> {
        let values = series.values();
        let mut bag = BTreeMap::new();
        if values.len() < self.window || self.window == 0 {
            let word = tsg_ts::sax::sax_word(
                values,
                SaxParams::new(
                    self.sax.alphabet_size,
                    self.sax.word_length.min(values.len()),
                )
                .map_err(BaselineError::from)?,
            )?;
            bag.insert(word, 1.0);
            return Ok(bag);
        }
        for word in sax_words_sliding(values, self.window, self.sax)? {
            *bag.entry(word).or_insert(0.0) += 1.0;
        }
        Ok(bag)
    }

    /// Histogram distance from the series to every training series, in
    /// training order. These are the raw decision values behind
    /// [`TscClassifier::predict_series`]; they are exposed so determinism
    /// tests can assert bit-identity of the actual floats, not just of
    /// the argmin.
    pub fn distances_to_train(&self, series: &TimeSeries) -> Result<Vec<f64>> {
        if self.train_bags.is_empty() {
            return Err(BaselineError::NotFitted);
        }
        let query = self.bag(series)?;
        Ok(self
            .train_bags
            .iter()
            .map(|(bag, _)| Self::distance(&query, bag))
            .collect())
    }

    fn distance(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
        let mut sum = 0.0;
        for (word, &va) in a {
            let vb = b.get(word).copied().unwrap_or(0.0);
            sum += (va - vb) * (va - vb);
        }
        for (word, &vb) in b {
            if !a.contains_key(word) {
                sum += vb * vb;
            }
        }
        sum.sqrt()
    }
}

impl Default for BagOfPatterns {
    fn default() -> Self {
        BagOfPatterns::new(0.25, SaxParams::default())
    }
}

impl TscClassifier for BagOfPatterns {
    fn name(&self) -> String {
        "BagOfPatterns".to_string()
    }

    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if train.is_empty() {
            return Err(BaselineError::InvalidTrainingData(
                "empty training set".into(),
            ));
        }
        let labels = train
            .labels_required()
            .map_err(|e| BaselineError::InvalidTrainingData(e.to_string()))?;
        let max_len = train.max_length();
        self.window = ((max_len as f64 * self.window_fraction).round() as usize)
            .clamp(self.sax.word_length.max(4), max_len.max(1));
        self.train_bags = train
            .series()
            .iter()
            .zip(labels)
            .map(|(s, l)| self.bag(s).map(|b| (b, l)))
            .collect::<Result<Vec<_>>>()?;
        Ok(())
    }

    fn predict_series(&self, series: &TimeSeries) -> Result<usize> {
        let dists = self.distances_to_train(series)?;
        let mut best_label = self.train_bags[0].1;
        let mut best_dist = f64::INFINITY;
        for (d, (_, label)) in dists.into_iter().zip(&self.train_bags) {
            if d < best_dist {
                best_dist = d;
                best_label = *label;
            }
        }
        Ok(best_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn dataset(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new("bop");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let values = if label == 0 {
                generators::sine_wave(&mut rng, 128, 8.0, 1.0, 0.0, 0.1)
            } else {
                generators::sine_wave(&mut rng, 128, 40.0, 1.0, 0.0, 0.1)
            };
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn separates_frequencies() {
        let train = dataset(10, 1);
        let test = dataset(8, 2);
        let mut clf = BagOfPatterns::default();
        clf.fit(&train).unwrap();
        let err = clf.error_rate(&test).unwrap();
        assert!(err < 0.3, "error {err}");
    }

    #[test]
    fn histogram_distance_is_metric_like() {
        let mut a = BTreeMap::new();
        a.insert("abc".to_string(), 2.0);
        let mut b = BTreeMap::new();
        b.insert("abc".to_string(), 2.0);
        b.insert("abd".to_string(), 1.0);
        assert_eq!(BagOfPatterns::distance(&a, &a), 0.0);
        assert_eq!(BagOfPatterns::distance(&a, &b), 1.0);
        assert_eq!(BagOfPatterns::distance(&b, &a), 1.0);
    }

    #[test]
    fn unfitted_errors() {
        let clf = BagOfPatterns::default();
        assert!(clf.predict_series(&TimeSeries::new(vec![0.0; 16])).is_err());
    }
}
