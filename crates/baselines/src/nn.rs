//! Nearest-neighbour baselines: 1NN-Euclidean and 1NN-DTW.
//!
//! These are the classic "hard to beat" baselines the paper compares against.
//! The DTW variant supports a Sakoe–Chiba warping window and prunes
//! candidates with the `LB_Keogh` lower bound plus early abandoning.

use crate::error::BaselineError;
use crate::traits::TscClassifier;
use crate::Result;
use tsg_ts::distance::{dtw_with_options, euclidean, lb_keogh, DtwOptions};
use tsg_ts::{Dataset, TimeSeries};

/// Distance used by the nearest-neighbour classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NnDistance {
    /// Euclidean distance (series must have equal lengths).
    Euclidean,
    /// DTW with an optional warping-window fraction (`None` = unconstrained).
    Dtw {
        /// Sakoe–Chiba band half-width as a fraction of the series length.
        window_fraction: Option<f64>,
    },
}

impl NnDistance {
    fn label(&self) -> String {
        match self {
            NnDistance::Euclidean => "1NN-ED".to_string(),
            NnDistance::Dtw {
                window_fraction: None,
            } => "1NN-DTW".to_string(),
            NnDistance::Dtw {
                window_fraction: Some(w),
            } => format!("1NN-DTW(w={w})"),
        }
    }
}

/// One-nearest-neighbour classifier over raw (z-normalised) series.
#[derive(Debug, Clone)]
pub struct NnClassifier {
    distance: NnDistance,
    znormalize: bool,
    train: Vec<(Vec<f64>, usize)>,
}

impl NnClassifier {
    /// Creates a classifier with the given distance. Series are z-normalised
    /// by default (the UCR convention).
    pub fn new(distance: NnDistance) -> Self {
        NnClassifier {
            distance,
            znormalize: true,
            train: Vec::new(),
        }
    }

    /// Disables z-normalisation (for data that is already normalised).
    pub fn without_znormalization(mut self) -> Self {
        self.znormalize = false;
        self
    }

    fn prepare(&self, series: &TimeSeries) -> Vec<f64> {
        if self.znormalize {
            tsg_ts::preprocess::znormalize(series.values())
        } else {
            series.values().to_vec()
        }
    }
}

impl TscClassifier for NnClassifier {
    fn name(&self) -> String {
        self.distance.label()
    }

    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if train.is_empty() {
            return Err(BaselineError::InvalidTrainingData(
                "empty training set".into(),
            ));
        }
        let labels = train
            .labels_required()
            .map_err(|e| BaselineError::InvalidTrainingData(e.to_string()))?;
        self.train = train
            .series()
            .iter()
            .zip(labels)
            .map(|(s, l)| (self.prepare(s), l))
            .collect();
        Ok(())
    }

    fn predict_series(&self, series: &TimeSeries) -> Result<usize> {
        if self.train.is_empty() {
            return Err(BaselineError::NotFitted);
        }
        let query = self.prepare(series);
        let mut best_dist = f64::INFINITY;
        let mut best_label = self.train[0].1;
        for (candidate, label) in &self.train {
            let dist = match self.distance {
                NnDistance::Euclidean => {
                    if candidate.len() == query.len() {
                        euclidean(&query, candidate)?
                    } else {
                        // different lengths: compare over the common prefix
                        let n = candidate.len().min(query.len());
                        euclidean(&query[..n], &candidate[..n])?
                    }
                }
                NnDistance::Dtw { window_fraction } => {
                    // LB_Keogh pruning only applies to equal-length series
                    if let Some(w) = window_fraction {
                        if candidate.len() == query.len() {
                            let band = ((w * query.len() as f64).ceil() as usize).max(1);
                            let lb = lb_keogh(&query, candidate, band)?;
                            if lb >= best_dist {
                                continue;
                            }
                        }
                    }
                    let mut opts = DtwOptions {
                        window_fraction,
                        early_abandon: None,
                    };
                    if best_dist.is_finite() {
                        opts.early_abandon = Some(best_dist);
                    }
                    dtw_with_options(&query, candidate, opts)?
                }
            };
            if dist < best_dist {
                best_dist = dist;
                best_label = *label;
            }
        }
        Ok(best_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn shifted_pulse_dataset(n_per_class: usize, seed: u64) -> Dataset {
        // class 0: early pulse; class 1: late pulse; random small shifts
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new("pulse");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let mut values = generators::gaussian_noise(&mut rng, 64, 0.05);
            let base = if label == 0 { 10 } else { 40 };
            let jitter = (i / 2) % 5;
            for k in 0..8 {
                values[base + jitter + k] += 2.0;
            }
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn euclidean_1nn_classifies_clean_pulses() {
        let train = shifted_pulse_dataset(10, 1);
        let test = shifted_pulse_dataset(8, 2);
        let mut nn = NnClassifier::new(NnDistance::Euclidean);
        nn.fit(&train).unwrap();
        assert!(nn.error_rate(&test).unwrap() < 0.3);
        assert_eq!(nn.name(), "1NN-ED");
    }

    #[test]
    fn dtw_handles_warping_better_than_euclidean() {
        // classes differ by pulse width, instances differ by large shifts
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let make = |rng: &mut ChaCha8Rng, label: usize, shift: usize| {
            let mut values = generators::gaussian_noise(rng, 96, 0.05);
            let width = if label == 0 { 6 } else { 18 };
            for k in 0..width {
                values[20 + shift + k] += 2.0;
            }
            TimeSeries::with_label(values, label)
        };
        let mut train = Dataset::new("warp");
        let mut test = Dataset::new("warp");
        for i in 0..24 {
            train.push(make(&mut rng, i % 2, (i * 7) % 30));
        }
        for i in 0..16 {
            test.push(make(&mut rng, i % 2, (i * 11 + 3) % 30));
        }
        let mut ed = NnClassifier::new(NnDistance::Euclidean);
        ed.fit(&train).unwrap();
        let mut dtw = NnClassifier::new(NnDistance::Dtw {
            window_fraction: None,
        });
        dtw.fit(&train).unwrap();
        let ed_err = ed.error_rate(&test).unwrap();
        let dtw_err = dtw.error_rate(&test).unwrap();
        assert!(
            dtw_err <= ed_err,
            "dtw {dtw_err} should not be worse than euclidean {ed_err}"
        );
        assert!(dtw_err < 0.3, "dtw error {dtw_err}");
    }

    #[test]
    fn windowed_dtw_with_pruning_matches_unwindowed_on_easy_data() {
        let train = shifted_pulse_dataset(8, 3);
        let test = shifted_pulse_dataset(6, 4);
        let mut banded = NnClassifier::new(NnDistance::Dtw {
            window_fraction: Some(0.2),
        });
        banded.fit(&train).unwrap();
        assert!(banded.error_rate(&test).unwrap() < 0.35);
        assert!(banded.name().contains("1NN-DTW"));
    }

    #[test]
    fn unfitted_and_empty_errors() {
        let nn = NnClassifier::new(NnDistance::Euclidean);
        assert!(nn.predict_series(&TimeSeries::new(vec![0.0; 8])).is_err());
        let mut nn = NnClassifier::new(NnDistance::Euclidean);
        assert!(nn.fit(&Dataset::new("empty")).is_err());
    }
}
