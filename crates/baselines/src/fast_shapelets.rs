//! Fast-Shapelets-style shapelet decision tree.
//!
//! The original Fast Shapelets algorithm (Rakthanmanon & Keogh, 2013) speeds
//! up exhaustive shapelet discovery by projecting SAX words of candidate
//! subsequences randomly and keeping only the most discriminative candidates
//! for exact evaluation. This implementation keeps the same overall
//! structure — a binary decision tree whose internal nodes hold a (shapelet,
//! threshold) pair chosen by information gain — and replaces the SAX
//! random-projection filter with seeded random candidate subsampling, which
//! preserves the accuracy/runtime trade-off the paper's Table 3 measures
//! (candidate evaluation still dominates the cost and scales with
//! `series length × shapelet length × training size`).

use crate::error::BaselineError;
use crate::traits::TscClassifier;
use crate::Result;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsg_ts::preprocess::znormalize;
use tsg_ts::{Dataset, TimeSeries};

/// Hyper-parameters for [`FastShapelets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastShapeletsParams {
    /// Candidate shapelet lengths, as fractions of the series length.
    pub length_fractions: [f64; 3],
    /// Number of random candidates evaluated per length per node.
    pub candidates_per_length: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum node size to keep splitting.
    pub min_node_size: usize,
    /// Random seed (candidate sampling).
    pub seed: u64,
}

impl Default for FastShapeletsParams {
    fn default() -> Self {
        FastShapeletsParams {
            length_fractions: [0.1, 0.2, 0.35],
            candidates_per_length: 10,
            max_depth: 6,
            min_node_size: 4,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        shapelet: Vec<f64>,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Shapelet decision tree classifier.
#[derive(Debug, Clone)]
pub struct FastShapelets {
    params: FastShapeletsParams,
    nodes: Vec<Node>,
}

/// Minimum z-normalised Euclidean distance between `shapelet` and any
/// subsequence of `series` of the same length, normalised by shapelet length.
pub fn shapelet_distance(series: &[f64], shapelet: &[f64]) -> f64 {
    let m = shapelet.len();
    if m == 0 || series.len() < m {
        return f64::INFINITY;
    }
    let mut best = f64::INFINITY;
    for start in 0..=(series.len() - m) {
        let window = znormalize(&series[start..start + m]);
        let mut dist = 0.0;
        for (a, b) in window.iter().zip(shapelet.iter()) {
            dist += (a - b) * (a - b);
            if dist >= best {
                break; // early abandon
            }
        }
        best = best.min(dist);
    }
    best / m as f64
}

fn entropy(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    let n = labels.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn majority(labels: &[usize]) -> usize {
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl FastShapelets {
    /// Creates an unfitted classifier.
    pub fn new(params: FastShapeletsParams) -> Self {
        FastShapelets {
            params,
            nodes: Vec::new(),
        }
    }

    /// Best information-gain split of `distances` against `labels`; returns
    /// `(threshold, gain)`.
    fn best_threshold(distances: &[f64], labels: &[usize]) -> (f64, f64) {
        let mut order: Vec<usize> = (0..distances.len()).collect();
        order.sort_by(|&a, &b| {
            distances[a]
                .partial_cmp(&distances[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let parent_entropy = entropy(labels);
        let n = labels.len() as f64;
        let mut best_gain = 0.0;
        let mut best_threshold = f64::INFINITY;
        for split in 1..order.len() {
            let d_prev = distances[order[split - 1]];
            let d_next = distances[order[split]];
            if d_prev == d_next {
                continue;
            }
            let left: Vec<usize> = order[..split].iter().map(|&i| labels[i]).collect();
            let right: Vec<usize> = order[split..].iter().map(|&i| labels[i]).collect();
            let gain = parent_entropy
                - (left.len() as f64 / n) * entropy(&left)
                - (right.len() as f64 / n) * entropy(&right);
            if gain > best_gain {
                best_gain = gain;
                best_threshold = 0.5 * (d_prev + d_next);
            }
        }
        (best_threshold, best_gain)
    }

    fn build(
        &mut self,
        series: &[Vec<f64>],
        labels: &[usize],
        indices: Vec<usize>,
        depth: usize,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        let node_labels: Vec<usize> = indices.iter().map(|&i| labels[i]).collect();
        let pure = node_labels.windows(2).all(|w| w[0] == w[1]);
        if depth >= self.params.max_depth || indices.len() < self.params.min_node_size || pure {
            self.nodes.push(Node::Leaf {
                label: majority(&node_labels),
            });
            return self.nodes.len() - 1;
        }
        // sample candidate shapelets from the node's series
        let min_len = series.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut best: Option<(Vec<f64>, f64, f64)> = None; // shapelet, threshold, gain
        for &fraction in &self.params.length_fractions {
            let len = ((min_len as f64 * fraction).round() as usize).clamp(3, min_len.max(3));
            if len >= min_len {
                continue;
            }
            for _ in 0..self.params.candidates_per_length {
                let &source = indices.choose(rng).expect("non-empty node");
                let s = &series[source];
                if s.len() <= len {
                    continue;
                }
                let start = rng.gen_range_usize(s.len() - len);
                let candidate = znormalize(&s[start..start + len]);
                let distances: Vec<f64> = indices
                    .iter()
                    .map(|&i| shapelet_distance(&series[i], &candidate))
                    .collect();
                let (threshold, gain) = Self::best_threshold(&distances, &node_labels);
                if gain > best.as_ref().map(|(_, _, g)| *g).unwrap_or(0.0) {
                    best = Some((candidate, threshold, gain));
                }
            }
        }
        let Some((shapelet, threshold, _gain)) = best else {
            self.nodes.push(Node::Leaf {
                label: majority(&node_labels),
            });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| shapelet_distance(&series[i], &shapelet) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf {
                label: majority(&node_labels),
            });
            return self.nodes.len() - 1;
        }
        self.nodes.push(Node::Leaf { label: 0 });
        let node_id = self.nodes.len() - 1;
        let left = self.build(series, labels, left_idx, depth + 1, rng);
        let right = self.build(series, labels, right_idx, depth + 1, rng);
        self.nodes[node_id] = Node::Split {
            shapelet,
            threshold,
            left,
            right,
        };
        node_id
    }
}

/// Small extension so candidate sampling reads naturally above.
trait GenRangeUsize {
    fn gen_range_usize(&mut self, upper: usize) -> usize;
}

impl GenRangeUsize for ChaCha8Rng {
    fn gen_range_usize(&mut self, upper: usize) -> usize {
        use rand::Rng;
        if upper == 0 {
            0
        } else {
            self.gen_range(0..upper)
        }
    }
}

impl TscClassifier for FastShapelets {
    fn name(&self) -> String {
        "FastShapelets".to_string()
    }

    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if train.is_empty() {
            return Err(BaselineError::InvalidTrainingData(
                "empty training set".into(),
            ));
        }
        let labels = train
            .labels_required()
            .map_err(|e| BaselineError::InvalidTrainingData(e.to_string()))?;
        let series: Vec<Vec<f64>> = train.series().iter().map(|s| s.values().to_vec()).collect();
        self.nodes.clear();
        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        self.build(&series, &labels, (0..series.len()).collect(), 0, &mut rng);
        Ok(())
    }

    fn predict_series(&self, series: &TimeSeries) -> Result<usize> {
        if self.nodes.is_empty() {
            return Err(BaselineError::NotFitted);
        }
        let values = series.values();
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { label } => return Ok(*label),
                Node::Split {
                    shapelet,
                    threshold,
                    left,
                    right,
                } => {
                    node = if shapelet_distance(values, shapelet) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn shapelet_dataset(n_per_class: usize, seed: u64) -> Dataset {
        // class decided by which local pattern is embedded in noise
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new("shapelets");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let background = generators::gaussian_noise(&mut rng, 96, 0.3);
            let pattern = if label == 0 {
                generators::bump_pattern(20)
            } else {
                let mut p = generators::bump_pattern(20);
                // class 1: double bump
                for (k, v) in p.iter_mut().enumerate() {
                    *v *= if k < 10 { 1.0 } else { -1.0 };
                }
                p
            };
            let values = generators::inject_pattern(&mut rng, background, &pattern, 4.0);
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn learns_local_patterns() {
        let train = shapelet_dataset(12, 1);
        let test = shapelet_dataset(10, 2);
        let mut fs = FastShapelets::new(FastShapeletsParams {
            candidates_per_length: 15,
            seed: 3,
            ..Default::default()
        });
        fs.fit(&train).unwrap();
        let err = fs.error_rate(&test).unwrap();
        assert!(err < 0.4, "error {err}");
        assert_eq!(fs.name(), "FastShapelets");
    }

    #[test]
    fn shapelet_distance_zero_for_contained_pattern() {
        let pattern = znormalize(&[0.0, 1.0, 2.0, 1.0, 0.0]);
        let mut series = vec![5.0; 30];
        series[10] = 0.0;
        series[11] = 1.0;
        series[12] = 2.0;
        series[13] = 1.0;
        series[14] = 0.0;
        let d = shapelet_distance(&series, &pattern);
        assert!(d < 1e-9, "distance {d}");
    }

    #[test]
    fn shapelet_distance_handles_degenerate_inputs() {
        assert!(shapelet_distance(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_infinite());
        assert!(shapelet_distance(&[1.0, 2.0, 3.0], &[]).is_infinite());
    }

    #[test]
    fn threshold_search_finds_separating_split() {
        let distances = [0.1, 0.2, 0.15, 5.0, 6.0, 5.5];
        let labels = [0, 0, 0, 1, 1, 1];
        let (threshold, gain) = FastShapelets::best_threshold(&distances, &labels);
        assert!(threshold > 0.2 && threshold < 5.0);
        assert!((gain - 1.0).abs() < 1e-9); // perfect split of 2 balanced classes
    }

    #[test]
    fn unfitted_errors() {
        let fs = FastShapelets::new(FastShapeletsParams::default());
        assert!(fs.predict_series(&TimeSeries::new(vec![0.0; 32])).is_err());
    }
}
