//! Learning Shapelets (Grabocka et al., KDD 2014).
//!
//! Instead of searching for shapelets, LS *learns* them: `K` shapelets of a
//! few lengths are initialised from segment centroids and then optimised
//! jointly with a logistic classification model by gradient descent. The
//! per-series features are soft-minimum distances between the series and
//! every shapelet, which keeps the objective differentiable.
//!
//! This implementation follows the original formulation with a softmax
//! (multi-class) output layer and full-batch gradient descent. Its cost is
//! dominated by the `series × shapelet × position` distance evaluations per
//! iteration, which is why LS is the slowest of the paper's baselines.

use crate::error::BaselineError;
use crate::traits::TscClassifier;
use crate::Result;
use tsg_ts::preprocess::znormalize;
use tsg_ts::{Dataset, TimeSeries};

/// Hyper-parameters for [`LearningShapelets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningShapeletsParams {
    /// Number of shapelets learned per length.
    pub shapelets_per_length: usize,
    /// Shapelet lengths as fractions of the series length.
    pub length_fractions: [f64; 2],
    /// Gradient descent iterations.
    pub n_iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation on the logistic weights.
    pub l2: f64,
    /// Soft-minimum sharpness (`alpha` in the paper, negative inside the
    /// exponent; larger magnitude approximates the hard minimum better).
    pub alpha: f64,
}

impl Default for LearningShapeletsParams {
    fn default() -> Self {
        LearningShapeletsParams {
            shapelets_per_length: 4,
            length_fractions: [0.125, 0.25],
            n_iterations: 120,
            learning_rate: 0.1,
            l2: 1e-3,
            alpha: -10.0,
        }
    }
}

/// Learning Shapelets classifier.
#[derive(Debug, Clone)]
pub struct LearningShapelets {
    params: LearningShapeletsParams,
    shapelets: Vec<Vec<f64>>,
    /// `weights[class][shapelet]`, bias last.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl LearningShapelets {
    /// Creates an unfitted classifier.
    pub fn new(params: LearningShapeletsParams) -> Self {
        LearningShapelets {
            params,
            shapelets: Vec::new(),
            weights: Vec::new(),
            n_classes: 0,
        }
    }

    /// The learned shapelets (available after fitting).
    pub fn shapelets(&self) -> &[Vec<f64>] {
        &self.shapelets
    }

    /// Hard minimum distance feature (used at prediction time).
    fn min_distance(series: &[f64], shapelet: &[f64]) -> f64 {
        let m = shapelet.len();
        if series.len() < m || m == 0 {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for start in 0..=(series.len() - m) {
            let mut d = 0.0;
            for (k, &sv) in shapelet.iter().enumerate() {
                let diff = series[start + k] - sv;
                d += diff * diff;
            }
            best = best.min(d / m as f64);
        }
        best
    }

    fn softmax(logits: &[f64]) -> Vec<f64> {
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum.max(1e-300)).collect()
    }

    fn features(&self, series: &[f64]) -> Vec<f64> {
        self.shapelets
            .iter()
            .map(|s| Self::min_distance(series, s))
            .collect()
    }

    fn logits(&self, features: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                w[..w.len() - 1]
                    .iter()
                    .zip(features.iter())
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + w[w.len() - 1]
            })
            .collect()
    }
}

impl TscClassifier for LearningShapelets {
    fn name(&self) -> String {
        "LearningShapelets".to_string()
    }

    // index notation (grad_w[class][k], weights[class][k]) mirrors the joint
    // shapelet/weight gradient equations of Grabocka et al.
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if train.is_empty() {
            return Err(BaselineError::InvalidTrainingData(
                "empty training set".into(),
            ));
        }
        let labels = train
            .labels_required()
            .map_err(|e| BaselineError::InvalidTrainingData(e.to_string()))?;
        let series: Vec<Vec<f64>> = train
            .series()
            .iter()
            .map(|s| znormalize(s.values()))
            .collect();
        let n = series.len();
        let min_len = series.iter().map(|s| s.len()).min().unwrap_or(0);
        if min_len < 8 {
            return Err(BaselineError::InvalidTrainingData(
                "series too short for shapelet learning".into(),
            ));
        }
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;

        // --- initialise shapelets from segment means --------------------
        self.shapelets.clear();
        for &fraction in &self.params.length_fractions {
            let len = ((min_len as f64 * fraction).round() as usize).clamp(4, min_len - 1);
            for k in 0..self.params.shapelets_per_length {
                // average the k-th segment across a strided subset of series
                let mut acc = vec![0.0f64; len];
                let mut count = 0.0f64;
                for (i, s) in series.iter().enumerate().filter(|(i, _)| i % (k + 1) == 0) {
                    let start = (i * 31 + k * 17) % (s.len() - len);
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += s[start + j];
                    }
                    count += 1.0;
                }
                for a in &mut acc {
                    *a /= count.max(1.0);
                }
                self.shapelets.push(znormalize(&acc));
            }
        }
        let n_shapelets = self.shapelets.len();
        self.weights = vec![vec![0.0; n_shapelets + 1]; self.n_classes];

        // --- joint gradient descent --------------------------------------
        let alpha = self.params.alpha;
        for _iter in 0..self.params.n_iterations {
            // forward pass: soft-min distances, logits, probabilities
            let mut grad_w = vec![vec![0.0f64; n_shapelets + 1]; self.n_classes];
            let mut grad_s: Vec<Vec<f64>> =
                self.shapelets.iter().map(|s| vec![0.0; s.len()]).collect();
            for (i, s) in series.iter().enumerate() {
                // soft-min features and the per-position soft weights needed
                // for the shapelet gradient
                let mut features = vec![0.0f64; n_shapelets];
                let mut position_weights: Vec<Vec<f64>> = Vec::with_capacity(n_shapelets);
                let mut window_dists: Vec<Vec<f64>> = Vec::with_capacity(n_shapelets);
                for (k, shapelet) in self.shapelets.iter().enumerate() {
                    let m = shapelet.len();
                    let n_pos = s.len() - m + 1;
                    let mut dists = Vec::with_capacity(n_pos);
                    for start in 0..n_pos {
                        let mut d = 0.0;
                        for (j, &sv) in shapelet.iter().enumerate() {
                            let diff = s[start + j] - sv;
                            d += diff * diff;
                        }
                        dists.push(d / m as f64);
                    }
                    // soft minimum with log-sum-exp stabilisation
                    let min_d = dists.iter().cloned().fold(f64::INFINITY, f64::min);
                    let weights: Vec<f64> =
                        dists.iter().map(|d| (alpha * (d - min_d)).exp()).collect();
                    let wsum: f64 = weights.iter().sum();
                    let soft_min: f64 = dists
                        .iter()
                        .zip(weights.iter())
                        .map(|(d, w)| d * w)
                        .sum::<f64>()
                        / wsum.max(1e-300);
                    features[k] = soft_min;
                    position_weights.push(weights.iter().map(|w| w / wsum.max(1e-300)).collect());
                    window_dists.push(dists);
                }
                let logits = self.logits(&features);
                let probs = Self::softmax(&logits);
                // gradients
                for class in 0..self.n_classes {
                    let delta = probs[class] - if labels[i] == class { 1.0 } else { 0.0 };
                    for k in 0..n_shapelets {
                        grad_w[class][k] += delta * features[k];
                    }
                    grad_w[class][n_shapelets] += delta;
                    // chain rule into the shapelets
                    for (k, shapelet) in self.shapelets.iter().enumerate() {
                        let w_ck = self.weights[class][k];
                        if w_ck == 0.0 && _iter == 0 {
                            continue; // first iteration: classifier weights are zero
                        }
                        let m = shapelet.len();
                        for (start, &pos_w) in position_weights[k].iter().enumerate() {
                            if pos_w < 1e-6 {
                                continue;
                            }
                            for j in 0..m {
                                let diff = shapelet[j] - s[start + j];
                                grad_s[k][j] += delta * w_ck * pos_w * 2.0 * diff / m as f64;
                            }
                        }
                    }
                }
            }
            let lr = self.params.learning_rate / n as f64;
            for class in 0..self.n_classes {
                for k in 0..=n_shapelets {
                    let reg = if k < n_shapelets {
                        self.params.l2 * self.weights[class][k]
                    } else {
                        0.0
                    };
                    self.weights[class][k] -= lr * grad_w[class][k] + reg;
                }
            }
            for (k, g) in grad_s.iter().enumerate() {
                for (j, gj) in g.iter().enumerate() {
                    self.shapelets[k][j] -= lr * gj;
                }
            }
        }
        Ok(())
    }

    fn predict_series(&self, series: &TimeSeries) -> Result<usize> {
        if self.weights.is_empty() {
            return Err(BaselineError::NotFitted);
        }
        let z = znormalize(series.values());
        let features = self.features(&z);
        let logits = self.logits(&features);
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn dataset(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new("ls");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let background = generators::gaussian_noise(&mut rng, 80, 0.2);
            let pattern = if label == 0 {
                generators::bump_pattern(16)
            } else {
                generators::sawtooth_pattern(16)
            };
            let values = generators::inject_pattern(&mut rng, background, &pattern, 4.0);
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn learns_discriminative_shapelets() {
        let train = dataset(12, 1);
        let test = dataset(10, 2);
        let mut ls = LearningShapelets::new(LearningShapeletsParams {
            n_iterations: 80,
            ..Default::default()
        });
        ls.fit(&train).unwrap();
        assert!(!ls.shapelets().is_empty());
        let err = ls.error_rate(&test).unwrap();
        assert!(err < 0.45, "error {err}");
    }

    #[test]
    fn min_distance_basics() {
        let shapelet = vec![1.0, 2.0, 1.0];
        let series = vec![0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
        assert!(LearningShapelets::min_distance(&series, &shapelet) < 1e-12);
        assert_eq!(LearningShapelets::min_distance(&[1.0], &shapelet), 0.0);
    }

    #[test]
    fn rejects_too_short_series() {
        let mut d = Dataset::new("short");
        d.push(TimeSeries::with_label(vec![0.0; 4], 0));
        d.push(TimeSeries::with_label(vec![1.0; 4], 1));
        let mut ls = LearningShapelets::new(LearningShapeletsParams::default());
        assert!(ls.fit(&d).is_err());
    }

    #[test]
    fn unfitted_errors() {
        let ls = LearningShapelets::new(LearningShapeletsParams::default());
        assert!(ls.predict_series(&TimeSeries::new(vec![0.0; 32])).is_err());
    }
}
