//! The common interface all baseline time series classifiers implement.

use crate::Result;
use tsg_ts::{Dataset, TimeSeries};

/// A time series classifier operating directly on raw series.
pub trait TscClassifier: Send {
    /// Short name used in result tables (e.g. `"1NN-DTW"`).
    fn name(&self) -> String;

    /// Fits the classifier on a labeled training dataset.
    fn fit(&mut self, train: &Dataset) -> Result<()>;

    /// Predicts the class of a single series.
    fn predict_series(&self, series: &TimeSeries) -> Result<usize>;

    /// Predicts the classes of every series in a dataset.
    fn predict(&self, test: &Dataset) -> Result<Vec<usize>> {
        test.series()
            .iter()
            .map(|s| self.predict_series(s))
            .collect()
    }

    /// Like [`TscClassifier::predict`], but spreads the per-series work
    /// over `n_threads` pool workers. Results must be bit-identical to the
    /// serial path for every thread count — parallelism is an
    /// implementation detail that may never leak into predictions (the
    /// tier-1 determinism harness asserts this for SAX-VSM and
    /// Bag-of-Patterns).
    fn predict_parallel(&self, test: &Dataset, n_threads: usize) -> Result<Vec<usize>>
    where
        Self: Sync,
    {
        tsg_parallel::parallel_try_map(test.series(), n_threads, |s| self.predict_series(s))
    }

    /// Error rate on a labeled dataset (the quantity of the paper's tables).
    fn error_rate(&self, test: &Dataset) -> Result<f64> {
        let truth = test
            .labels_required()
            .map_err(|e| crate::BaselineError::InvalidTrainingData(e.to_string()))?;
        let predicted = self.predict(test)?;
        let wrong = truth
            .iter()
            .zip(predicted.iter())
            .filter(|(t, p)| t != p)
            .count();
        Ok(wrong as f64 / truth.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial classifier that always predicts class 0 — exercises the
    /// default `predict` / `error_rate` implementations.
    struct Constant;

    impl TscClassifier for Constant {
        fn name(&self) -> String {
            "constant".into()
        }
        fn fit(&mut self, _train: &Dataset) -> Result<()> {
            Ok(())
        }
        fn predict_series(&self, _series: &TimeSeries) -> Result<usize> {
            Ok(0)
        }
    }

    #[test]
    fn default_methods_work() {
        let mut d = Dataset::new("toy");
        d.push(TimeSeries::with_label(vec![0.0, 1.0], 0));
        d.push(TimeSeries::with_label(vec![1.0, 0.0], 1));
        let mut c = Constant;
        c.fit(&d).unwrap();
        assert_eq!(c.predict(&d).unwrap(), vec![0, 0]);
        assert!((c.error_rate(&d).unwrap() - 0.5).abs() < 1e-12);
    }
}
