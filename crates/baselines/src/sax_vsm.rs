//! SAX-VSM (Senin & Malinchik, 2013).
//!
//! Each class is represented by a tf-idf weight vector over the bag of SAX
//! words produced by sliding a window across all of its training series; a
//! test series is assigned to the class whose weight vector has the highest
//! cosine similarity with the series' term-frequency vector.
//!
//! All word maps are `BTreeMap`s: iteration order (and with it the
//! floating-point summation order of every dot product and norm) is the
//! sorted word order, so fitting and scoring are bit-deterministic across
//! runs and thread counts. `HashMap` would randomise that order per
//! process via its seeded hasher.

use crate::error::BaselineError;
use crate::traits::TscClassifier;
use crate::Result;
use std::collections::BTreeMap;
use tsg_ts::sax::{sax_words_sliding, SaxParams};
use tsg_ts::{Dataset, TimeSeries};

/// Hyper-parameters for [`SaxVsm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaxVsmParams {
    /// Sliding window length as a fraction of the series length.
    pub window_fraction: f64,
    /// SAX alphabet size.
    pub alphabet_size: usize,
    /// SAX word length (PAA segments per window).
    pub word_length: usize,
}

impl Default for SaxVsmParams {
    fn default() -> Self {
        SaxVsmParams {
            window_fraction: 0.25,
            alphabet_size: 4,
            word_length: 6,
        }
    }
}

/// SAX-VSM classifier.
#[derive(Debug, Clone)]
pub struct SaxVsm {
    params: SaxVsmParams,
    /// tf-idf weight vector per class: word → weight.
    class_weights: Vec<BTreeMap<String, f64>>,
    window: usize,
    sax: SaxParams,
}

impl SaxVsm {
    /// Creates an unfitted classifier.
    pub fn new(params: SaxVsmParams) -> Self {
        SaxVsm {
            params,
            class_weights: Vec::new(),
            window: 0,
            sax: SaxParams::default(),
        }
    }

    fn bag_for_series(&self, series: &TimeSeries) -> Result<BTreeMap<String, f64>> {
        let mut bag: BTreeMap<String, f64> = BTreeMap::new();
        let values = series.values();
        if values.len() < self.window || self.window == 0 {
            // degenerate: whole series as a single word
            let word = tsg_ts::sax::sax_word(
                values,
                SaxParams::new(
                    self.sax.alphabet_size,
                    self.sax.word_length.min(values.len()),
                )
                .map_err(BaselineError::from)?,
            )?;
            *bag.entry(word).or_insert(0.0) += 1.0;
            return Ok(bag);
        }
        for word in sax_words_sliding(values, self.window, self.sax)? {
            *bag.entry(word).or_insert(0.0) += 1.0;
        }
        Ok(bag)
    }

    /// Cosine similarity of the series' term-frequency bag against every
    /// class weight vector, in class order. These are the raw decision
    /// values behind [`TscClassifier::predict_series`]; they are exposed
    /// so determinism tests can assert bit-identity of the actual floats,
    /// not just of the argmax.
    pub fn class_similarities(&self, series: &TimeSeries) -> Result<Vec<f64>> {
        if self.class_weights.is_empty() {
            return Err(BaselineError::NotFitted);
        }
        let bag = self.bag_for_series(series)?;
        Ok(self
            .class_weights
            .iter()
            .map(|weights| Self::cosine(&bag, weights))
            .collect())
    }

    fn cosine(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
        let mut dot = 0.0;
        for (word, &wa) in a {
            if let Some(&wb) = b.get(word) {
                dot += wa * wb;
            }
        }
        let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
        if na <= 0.0 || nb <= 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

impl TscClassifier for SaxVsm {
    fn name(&self) -> String {
        "SAX-VSM".to_string()
    }

    fn fit(&mut self, train: &Dataset) -> Result<()> {
        if train.is_empty() {
            return Err(BaselineError::InvalidTrainingData(
                "empty training set".into(),
            ));
        }
        let labels = train
            .labels_required()
            .map_err(|e| BaselineError::InvalidTrainingData(e.to_string()))?;
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let max_len = train.max_length();
        self.window = ((max_len as f64 * self.params.window_fraction).round() as usize)
            .clamp(self.params.word_length.max(4), max_len.max(1));
        self.sax = SaxParams::new(self.params.alphabet_size, self.params.word_length)
            .map_err(BaselineError::from)?;

        // per-class term frequencies
        let mut class_tf: Vec<BTreeMap<String, f64>> = vec![BTreeMap::new(); n_classes];
        for (series, &label) in train.series().iter().zip(labels.iter()) {
            let bag = self.bag_for_series(series)?;
            let target = &mut class_tf[label];
            for (word, count) in bag {
                *target.entry(word).or_insert(0.0) += count;
            }
        }
        // document frequency over classes
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        for tf in &class_tf {
            for word in tf.keys() {
                *df.entry(word.clone()).or_insert(0) += 1;
            }
        }
        // tf-idf: (1 + log tf) * log(1 + N / df)
        let n_docs = n_classes as f64;
        self.class_weights = class_tf
            .into_iter()
            .map(|tf| {
                tf.into_iter()
                    .map(|(word, count)| {
                        let idf = (1.0 + n_docs / df[&word] as f64).ln();
                        let weight = (1.0 + count.ln().max(0.0)) * idf;
                        (word, weight)
                    })
                    .collect()
            })
            .collect();
        Ok(())
    }

    fn predict_series(&self, series: &TimeSeries) -> Result<usize> {
        let sims = self.class_similarities(series)?;
        let mut best = 0usize;
        let mut best_sim = f64::NEG_INFINITY;
        for (class, sim) in sims.into_iter().enumerate() {
            if sim > best_sim {
                best_sim = sim;
                best = class;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsg_ts::generators;

    fn pattern_dataset(n_per_class: usize, seed: u64) -> Dataset {
        // class 0 contains a recurring sharp sawtooth pattern, class 1 a
        // smooth bump, at random positions
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new("patterns");
        for i in 0..n_per_class * 2 {
            let label = i % 2;
            let background = generators::gaussian_noise(&mut rng, 128, 0.2);
            let pattern = if label == 0 {
                generators::sawtooth_pattern(24)
            } else {
                generators::bump_pattern(24)
            };
            let values = generators::inject_pattern(&mut rng, background, &pattern, 3.0);
            d.push(TimeSeries::with_label(values, label));
        }
        d
    }

    #[test]
    fn classifies_local_patterns() {
        let train = pattern_dataset(15, 1);
        let test = pattern_dataset(10, 2);
        let mut clf = SaxVsm::new(SaxVsmParams::default());
        clf.fit(&train).unwrap();
        let err = clf.error_rate(&test).unwrap();
        assert!(err < 0.4, "error {err}");
        assert_eq!(clf.name(), "SAX-VSM");
    }

    #[test]
    fn handles_short_series_gracefully() {
        let mut d = Dataset::new("short");
        for i in 0..8 {
            d.push(TimeSeries::with_label(
                (0..12).map(|k| ((k + i) as f64 * 0.7).sin()).collect(),
                i % 2,
            ));
        }
        let mut clf = SaxVsm::new(SaxVsmParams {
            window_fraction: 0.5,
            alphabet_size: 3,
            word_length: 4,
        });
        clf.fit(&d).unwrap();
        let pred = clf.predict(&d).unwrap();
        assert_eq!(pred.len(), 8);
    }

    #[test]
    fn unfitted_errors() {
        let clf = SaxVsm::new(SaxVsmParams::default());
        assert!(clf.predict_series(&TimeSeries::new(vec![0.0; 32])).is_err());
        let mut clf = SaxVsm::new(SaxVsmParams::default());
        assert!(clf.fit(&Dataset::new("empty")).is_err());
    }
}
