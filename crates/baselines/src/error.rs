//! Error type shared by the baseline classifiers.

use std::fmt;

/// Errors produced by the baseline time series classifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The training set was empty or inconsistent.
    InvalidTrainingData(String),
    /// The classifier was asked to predict before being fitted.
    NotFitted,
    /// An error bubbled up from the time series substrate.
    Series(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidTrainingData(msg) => {
                write!(f, "invalid training data: {msg}")
            }
            BaselineError::NotFitted => write!(f, "classifier has not been fitted"),
            BaselineError::Series(msg) => write!(f, "time series error: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<tsg_ts::TsError> for BaselineError {
    fn from(e: tsg_ts::TsError) -> Self {
        BaselineError::Series(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(BaselineError::NotFitted.to_string().contains("fitted"));
        let e: BaselineError = tsg_ts::TsError::EmptySeries.into();
        assert!(matches!(e, BaselineError::Series(_)));
        assert!(BaselineError::InvalidTrainingData("x".into())
            .to_string()
            .contains('x'));
    }
}
