//! `DatasetSource` — one lazy, streaming answer to "where does a split come
//! from?".
//!
//! A split can exist three ways in this workspace: synthesised from the
//! catalogue, persisted in the on-disk [`crate::cache`], or read from a real
//! UCR directory tree. Before this module every consumer hard-wired one of
//! those paths; now the experiment binaries, the eval harness and the
//! serving registry all resolve splits by name through a [`DatasetSource`]
//! and get the same three guarantees everywhere:
//!
//! 1. **Laziness** — nothing is generated or read before the split is asked
//!    for, and [`DatasetSource::open_split`] yields series
//!    *instance-at-a-time* ([`SplitStream`]), so a 10 000-instance split
//!    never needs a full `Vec<TimeSeries>` resident during feature
//!    extraction.
//! 2. **Provenance** — every split travels with a [`SplitProvenance`]
//!    recording whether it is synthetic, cached or real, plus the seed and
//!    generator version (synthetic/cached) or the backing file path and its
//!    FNV-1a content hash (cached/real). Experiment artefacts embed it, so a
//!    reported number can always be traced to its exact input bytes.
//! 3. **Bit-exactness** — all paths produce bit-identical series: the cache
//!    stores raw `f64` bits, the UCR text writer emits shortest-round-trip
//!    decimals, and the streaming readers share the exact parsing /
//!    generation code of the eager paths (`tests/dataset_conformance.rs` at
//!    the workspace root pins all four paths against each other).
//!
//! Resolution precedence: a configured UCR directory ([`UCR_DIR_ENV`] or
//! [`DatasetSource::with_ucr_dir`]) wins when it contains the
//! `_TRAIN`/`_TEST` pair; a present-but-malformed pair is a hard error (it
//! would otherwise silently change results); only a *truly absent* pair
//! falls back to the cache (when enabled) and then to in-memory synthesis.

use crate::archive::{
    effective_shape, generate_scaled, instance_class, spec_by_name, split_rng, ArchiveOptions,
    DatasetSpec,
};
use crate::cache::{self, CacheFileReader, GENERATOR_VERSION};
use crate::loader::find_ucr_pair;
use rand_chacha::ChaCha8Rng;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use tsg_ts::io::UcrRecordParser;
use tsg_ts::{Dataset, TimeSeries};

/// Environment variable pointing at a real UCR archive directory. When set
/// (and non-empty), [`DatasetSource::from_env`] resolves datasets from it
/// first, falling back per dataset to the cache / synthesis.
pub const UCR_DIR_ENV: &str = "TSG_UCR_DIR";

/// One half of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// The training split (`*_TRAIN`).
    Train,
    /// The test split (`*_TEST`).
    Test,
}

impl Split {
    /// The UCR file-name suffix (`TRAIN` / `TEST`).
    pub fn suffix(self) -> &'static str {
        match self {
            Split::Train => "TRAIN",
            Split::Test => "TEST",
        }
    }
}

/// Where a split's bytes actually came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Generated in memory from the seeded catalogue families.
    Synthetic,
    /// Read back from the on-disk dataset cache.
    Cached,
    /// Read from a real UCR-format file.
    Real,
}

impl SourceKind {
    /// Stable lower-case name used in artefacts and wire responses.
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::Synthetic => "synthetic",
            SourceKind::Cached => "cached",
            SourceKind::Real => "real",
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Provenance record travelling with every resolved or streamed split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitProvenance {
    /// Dataset name (catalogue / directory name).
    pub dataset: String,
    /// Which split this record describes.
    pub split: Split,
    /// Synthetic, cached or real.
    pub kind: SourceKind,
    /// Generation seed (synthetic and cached splits).
    pub seed: Option<u64>,
    /// Generator version behind the series (synthetic and cached splits).
    pub generator_version: Option<u32>,
    /// Backing file (cached and real splits).
    pub path: Option<PathBuf>,
    /// FNV-1a hash of the backing file's bytes (cached and real splits).
    pub content_hash: Option<u64>,
}

impl SplitProvenance {
    fn synthetic(dataset: &str, split: Split, seed: u64) -> Self {
        SplitProvenance {
            dataset: dataset.to_string(),
            split,
            kind: SourceKind::Synthetic,
            seed: Some(seed),
            generator_version: Some(GENERATOR_VERSION),
            path: None,
            content_hash: None,
        }
    }

    fn cached(dataset: &str, split: Split, seed: u64, path: PathBuf, hash: u64) -> Self {
        SplitProvenance {
            dataset: dataset.to_string(),
            split,
            kind: SourceKind::Cached,
            seed: Some(seed),
            generator_version: Some(GENERATOR_VERSION),
            path: Some(path),
            content_hash: Some(hash),
        }
    }

    fn real(dataset: &str, split: Split, path: PathBuf, hash: u64) -> Self {
        SplitProvenance {
            dataset: dataset.to_string(),
            split,
            kind: SourceKind::Real,
            seed: None,
            generator_version: None,
            path: Some(path),
            content_hash: Some(hash),
        }
    }

    /// One-line human-readable description, e.g.
    /// `real (fixtures/Wine/Wine_TRAIN, fnv1a 0f3a…)` or
    /// `synthetic (seed 7, generator v1)`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(seed) = self.seed {
            parts.push(format!("seed {seed}"));
        }
        if let Some(v) = self.generator_version {
            parts.push(format!("generator v{v}"));
        }
        if let Some(path) = &self.path {
            parts.push(path.display().to_string());
        }
        if let Some(hash) = self.content_hash {
            parts.push(format!("fnv1a {hash:016x}"));
        }
        format!("{} ({})", self.kind, parts.join(", "))
    }
}

/// Errors surfaced while resolving or streaming a split.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceError {
    /// The name is neither in the UCR directory nor in the catalogue.
    UnknownDataset(String),
    /// A real UCR file is present but unreadable or malformed. Deliberately
    /// *not* a fallback case: silently substituting synthetic data for a
    /// broken archive file would change reported results.
    Read {
        /// File that failed.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// A cache file turned corrupt mid-stream (it was valid at open time).
    CorruptCache {
        /// Cache file that failed.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::UnknownDataset(name) => {
                write!(
                    f,
                    "unknown dataset `{name}` (not in the UCR directory or the catalogue)"
                )
            }
            SourceError::Read { path, message } => {
                write!(f, "failed to read UCR file {}: {message}", path.display())
            }
            SourceError::CorruptCache { path, message } => {
                write!(f, "corrupt cache file {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// An eagerly resolved `(train, test)` pair plus per-split provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPair {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Provenance of the training split.
    pub train_provenance: SplitProvenance,
    /// Provenance of the test split.
    pub test_provenance: SplitProvenance,
}

impl ResolvedPair {
    /// The common source kind of both splits (they always resolve from the
    /// same place: real needs both files, cached one file, synthetic none).
    pub fn kind(&self) -> SourceKind {
        self.train_provenance.kind
    }
}

/// The unified resolver. Cheap to construct and clone; nothing is read or
/// generated until [`DatasetSource::resolve`] / [`DatasetSource::open_split`]
/// is called.
#[derive(Debug, Clone)]
pub struct DatasetSource {
    ucr_dir: Option<PathBuf>,
    options: ArchiveOptions,
    use_cache: bool,
}

impl DatasetSource {
    /// Pure in-memory synthesis (no UCR directory, no cache).
    pub fn synthetic(options: ArchiveOptions) -> Self {
        DatasetSource {
            ucr_dir: None,
            options,
            use_cache: false,
        }
    }

    /// Synthesis backed by the on-disk dataset cache.
    pub fn cached(options: ArchiveOptions) -> Self {
        DatasetSource {
            ucr_dir: None,
            options,
            use_cache: true,
        }
    }

    /// The production default: honours [`UCR_DIR_ENV`] when set (and
    /// non-empty), with the cache enabled for catalogue fallbacks.
    pub fn from_env(options: ArchiveOptions) -> Self {
        let ucr_dir = std::env::var(UCR_DIR_ENV)
            .ok()
            .filter(|d| !d.trim().is_empty())
            .map(PathBuf::from);
        DatasetSource {
            ucr_dir,
            options,
            use_cache: true,
        }
    }

    /// Resolves from this UCR directory first (overrides any env setting).
    pub fn with_ucr_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.ucr_dir = Some(dir.into());
        self
    }

    /// Enables / disables the on-disk cache for synthetic fallbacks.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// The UCR directory in effect, if any.
    pub fn ucr_dir(&self) -> Option<&Path> {
        self.ucr_dir.as_deref()
    }

    /// The generation budget and seed in effect.
    pub fn options(&self) -> ArchiveOptions {
        self.options
    }

    /// Eagerly resolves the `(train, test)` pair for `name`.
    pub fn resolve(&self, name: &str) -> Result<ResolvedPair, SourceError> {
        if let Some(dir) = &self.ucr_dir {
            if let Some((train_path, test_path)) = find_ucr_pair(dir, name) {
                // the test parser is seeded with the training label table so
                // both splits map raw labels to the same class indices
                let mut train_parser = UcrRecordParser::new();
                let train = read_real_split(&mut train_parser, &train_path, name, Split::Train)?;
                let test = read_real_split(
                    &mut UcrRecordParser::seeded(train_parser.label_map()),
                    &test_path,
                    name,
                    Split::Test,
                )?;
                let train_provenance = SplitProvenance::real(
                    name,
                    Split::Train,
                    train_path.clone(),
                    hash_file(&train_path)?,
                );
                let test_provenance = SplitProvenance::real(
                    name,
                    Split::Test,
                    test_path.clone(),
                    hash_file(&test_path)?,
                );
                return Ok(ResolvedPair {
                    train,
                    test,
                    train_provenance,
                    test_provenance,
                });
            }
        }
        let spec =
            spec_by_name(name).ok_or_else(|| SourceError::UnknownDataset(name.to_string()))?;
        if self.use_cache {
            // one decode on a warm cache (the read doubles as validation),
            // one write on a cold one; any cache problem — including a hash
            // read racing a concurrent cleaner — falls through to synthesis:
            // the cache may never change results, only skip work
            if let Some((path, (train, test))) = cache::read_or_create_pair(spec, self.options) {
                if let Ok(hash) = hash_file(&path) {
                    let seed = self.options.seed;
                    return Ok(ResolvedPair {
                        train,
                        test,
                        train_provenance: SplitProvenance::cached(
                            name,
                            Split::Train,
                            seed,
                            path.clone(),
                            hash,
                        ),
                        test_provenance: SplitProvenance::cached(
                            name,
                            Split::Test,
                            seed,
                            path,
                            hash,
                        ),
                    });
                }
            }
            // cache directory unusable: fall through to in-memory synthesis
        }
        let (train, test) = generate_scaled(spec, self.options);
        Ok(ResolvedPair {
            train,
            test,
            train_provenance: SplitProvenance::synthetic(name, Split::Train, self.options.seed),
            test_provenance: SplitProvenance::synthetic(name, Split::Test, self.options.seed),
        })
    }

    /// Eagerly materialises **one** split, reading / generating only that
    /// split's records — e.g. the serving registry fits models on the
    /// training split without parsing (or hashing) the often much larger
    /// `_TEST` file. Built on [`DatasetSource::open_split`], so it is
    /// bit-identical to the corresponding half of [`DatasetSource::resolve`].
    pub fn resolve_split(
        &self,
        name: &str,
        split: Split,
    ) -> Result<(Dataset, SplitProvenance), SourceError> {
        let mut stream = self.open_split(name, split)?;
        let provenance = stream.provenance().clone();
        let mut dataset = Dataset::new(stream.name().to_string());
        for item in &mut stream {
            dataset.push(item?);
        }
        Ok((dataset, provenance))
    }

    /// Opens one split as an instance-at-a-time stream. The stream knows its
    /// instance count and maximum (padding-stripped) series length up front,
    /// which is exactly what chunk-wise feature extraction needs to size its
    /// rows without materialising the split.
    pub fn open_split(&self, name: &str, split: Split) -> Result<SplitStream, SourceError> {
        if let Some(dir) = &self.ucr_dir {
            if let Some((train_path, test_path)) = find_ucr_pair(dir, name) {
                // a TEST stream is seeded with the TRAIN file's label table
                // (one extra parse of the training file) so both splits map
                // raw labels to the same class indices
                return match split {
                    Split::Train => SplitStream::open_real(name, split, &train_path, &[]),
                    Split::Test => {
                        let labels = scan_label_map(&train_path)?;
                        SplitStream::open_real(name, split, &test_path, &labels)
                    }
                };
            }
        }
        let spec =
            spec_by_name(name).ok_or_else(|| SourceError::UnknownDataset(name.to_string()))?;
        if self.use_cache {
            if let Some(path) = cache::ensure_cached(spec, self.options) {
                if let Some(stream) =
                    SplitStream::open_cached(name, split, spec, self.options, &path)?
                {
                    return Ok(stream);
                }
            }
        }
        Ok(SplitStream::synthetic(name, split, spec, self.options))
    }
}

/// A lazy, instance-at-a-time iterator over one split.
///
/// Yields `Result<TimeSeries, SourceError>` so mid-stream failures (a cache
/// file truncated underneath us, an archive file edited mid-read) surface as
/// errors instead of silently short datasets. After the first error the
/// stream fuses to `None`.
pub struct SplitStream {
    name: String,
    split: Split,
    n_instances: usize,
    max_length: usize,
    provenance: SplitProvenance,
    yielded: usize,
    failed: bool,
    state: StreamState,
}

enum StreamState {
    Synthetic {
        spec: &'static DatasetSpec,
        rng: ChaCha8Rng,
        length: usize,
    },
    Cached {
        reader: CacheFileReader,
        path: PathBuf,
    },
    Real {
        reader: BufReader<std::fs::File>,
        parser: UcrRecordParser,
        path: PathBuf,
        lineno: usize,
        buffer: String,
    },
}

impl SplitStream {
    /// Streams a synthetic split straight from the seeded generators,
    /// holding only the RNG state. A `Test` stream replays (and discards)
    /// the training instances first, because the test split continues the
    /// same keystream — the cached path avoids that replay cost, which is
    /// one of the reasons the cache is on by default.
    fn synthetic(
        name: &str,
        split: Split,
        spec: &'static DatasetSpec,
        options: ArchiveOptions,
    ) -> SplitStream {
        let (n_train, n_test, length) = effective_shape(spec, options);
        let mut rng = split_rng(spec, options.seed);
        let n_instances = match split {
            Split::Train => n_train,
            Split::Test => {
                for i in 0..n_train {
                    let class = instance_class(spec, n_train, i);
                    let _ = spec
                        .family
                        .generate(&mut rng, class, spec.n_classes, length);
                }
                n_test
            }
        };
        SplitStream {
            name: format!("{}_{}", name, split.suffix()),
            split,
            n_instances,
            max_length: length,
            provenance: SplitProvenance::synthetic(name, split, options.seed),
            yielded: 0,
            failed: false,
            state: StreamState::Synthetic { spec, rng, length },
        }
    }

    /// Streams a split out of a verified cache file. Returns `Ok(None)` when
    /// the file cannot be opened or skipped through (callers fall back to
    /// synthesis — a cache may never change results, only skip work).
    fn open_cached(
        name: &str,
        split: Split,
        spec: &'static DatasetSpec,
        options: ArchiveOptions,
        path: &Path,
    ) -> Result<Option<SplitStream>, SourceError> {
        let Some(mut reader) = CacheFileReader::open(path) else {
            return Ok(None);
        };
        let Some((_, n_train)) = reader.read_header() else {
            return Ok(None);
        };
        let n_instances = match split {
            Split::Train => n_train,
            Split::Test => {
                for _ in 0..n_train {
                    if reader.read_record().is_none() {
                        return Ok(None);
                    }
                }
                match reader.read_header() {
                    Some((_, n_test)) => n_test,
                    None => return Ok(None),
                }
            }
        };
        // cache files always hold generator output, whose series all share
        // the budgeted length
        let (_, _, length) = effective_shape(spec, options);
        // a hash failure is a cache problem like any other: fall back
        let Ok(hash) = hash_file(path) else {
            return Ok(None);
        };
        Ok(Some(SplitStream {
            name: format!("{}_{}", name, split.suffix()),
            split,
            n_instances,
            max_length: length,
            provenance: SplitProvenance::cached(
                name,
                split,
                options.seed,
                path.to_path_buf(),
                hash,
            ),
            yielded: 0,
            failed: false,
            state: StreamState::Cached {
                reader,
                path: path.to_path_buf(),
            },
        }))
    }

    /// Streams a real UCR file. Opening scans the file once (hash, record
    /// count, maximum padding-stripped length) with O(1) memory, then
    /// reopens it for iteration; the scan uses the same [`UcrRecordParser`]
    /// as the eager reader, so the two can never disagree. `label_seed` is
    /// the label table to start from — the `_TRAIN` file's table when
    /// opening a `_TEST` stream, empty otherwise.
    fn open_real(
        name: &str,
        split: Split,
        path: &Path,
        label_seed: &[i64],
    ) -> Result<SplitStream, SourceError> {
        let read_err = |e: &dyn std::fmt::Display| SourceError::Read {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        let hash = hash_file(path)?;
        let file = std::fs::File::open(path).map_err(|e| read_err(&e))?;
        let mut scan = BufReader::new(file);
        let mut parser = UcrRecordParser::seeded(label_seed);
        let mut buffer = String::new();
        let (mut lineno, mut n_instances, mut max_length) = (0usize, 0usize, 0usize);
        loop {
            buffer.clear();
            let n = scan.read_line(&mut buffer).map_err(|e| read_err(&e))?;
            if n == 0 {
                break;
            }
            lineno += 1;
            if let Some(series) = parser
                .parse_line(lineno, &buffer)
                .map_err(|e| read_err(&e))?
            {
                n_instances += 1;
                max_length = max_length.max(series.len());
            }
        }
        parser.finish().map_err(|e| read_err(&e))?;
        let file = std::fs::File::open(path).map_err(|e| read_err(&e))?;
        Ok(SplitStream {
            name: format!("{}_{}", name, split.suffix()),
            split,
            n_instances,
            max_length,
            provenance: SplitProvenance::real(name, split, path.to_path_buf(), hash),
            yielded: 0,
            failed: false,
            state: StreamState::Real {
                reader: BufReader::new(file),
                parser: UcrRecordParser::seeded(label_seed),
                path: path.to_path_buf(),
                lineno: 0,
                buffer: String::new(),
            },
        })
    }

    /// Split name, e.g. `BeetleFly_TRAIN`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which split this stream yields.
    pub fn split(&self) -> Split {
        self.split
    }

    /// Total number of instances the stream will yield.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// Maximum (padding-stripped) series length across the split — known
    /// before iteration so feature extraction can size its rows.
    pub fn max_length(&self) -> usize {
        self.max_length
    }

    /// Provenance of the split being streamed.
    pub fn provenance(&self) -> &SplitProvenance {
        &self.provenance
    }

    fn next_inner(&mut self) -> Result<TimeSeries, SourceError> {
        match &mut self.state {
            StreamState::Synthetic { spec, rng, length } => {
                let class = instance_class(spec, self.n_instances, self.yielded);
                let values = spec.family.generate(rng, class, spec.n_classes, *length);
                Ok(TimeSeries::with_label(values, class))
            }
            StreamState::Cached { reader, path } => {
                reader
                    .read_record()
                    .ok_or_else(|| SourceError::CorruptCache {
                        path: path.clone(),
                        message: format!(
                            "record {} of {} unreadable (file changed after open?)",
                            self.yielded + 1,
                            self.n_instances
                        ),
                    })
            }
            StreamState::Real {
                reader,
                parser,
                path,
                lineno,
                buffer,
            } => loop {
                buffer.clear();
                let read_err = |e: String| SourceError::Read {
                    path: path.clone(),
                    message: e,
                };
                let n = reader
                    .read_line(buffer)
                    .map_err(|e| read_err(e.to_string()))?;
                if n == 0 {
                    return Err(read_err(format!(
                        "file ended after {} of {} records (changed after open?)",
                        self.yielded, self.n_instances
                    )));
                }
                *lineno += 1;
                if let Some(series) = parser
                    .parse_line(*lineno, buffer)
                    .map_err(|e| read_err(e.to_string()))?
                {
                    return Ok(series);
                }
            },
        }
    }
}

impl Iterator for SplitStream {
    type Item = Result<TimeSeries, SourceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.yielded >= self.n_instances {
            return None;
        }
        match self.next_inner() {
            Ok(series) => {
                self.yielded += 1;
                Some(Ok(series))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.failed {
            0
        } else {
            self.n_instances - self.yielded
        };
        (remaining, Some(remaining))
    }
}

/// FNV-1a over a file's bytes, streamed in 64 KiB chunks.
fn hash_file(path: &Path) -> Result<u64, SourceError> {
    let file = std::fs::File::open(path).map_err(|e| SourceError::Read {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut reader = BufReader::new(file);
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = reader.read(&mut chunk).map_err(|e| SourceError::Read {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        if n == 0 {
            return Ok(hash);
        }
        for b in &chunk[..n] {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
}

fn read_real_split(
    parser: &mut UcrRecordParser,
    path: &Path,
    name: &str,
    split: Split,
) -> Result<Dataset, SourceError> {
    let mut dataset =
        tsg_ts::io::read_ucr_file_with(parser, path).map_err(|e| SourceError::Read {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
    dataset.name = format!("{}_{}", name, split.suffix());
    Ok(dataset)
}

/// Parses every record of `path` solely for its label table, so a `_TEST`
/// stream can share its `_TRAIN` file's raw-label → class-index mapping
/// (the splits of a real pair routinely list classes in different
/// first-appearance orders).
fn scan_label_map(path: &Path) -> Result<Vec<i64>, SourceError> {
    let read_err = |e: &dyn std::fmt::Display| SourceError::Read {
        path: path.to_path_buf(),
        message: e.to_string(),
    };
    let file = std::fs::File::open(path).map_err(|e| read_err(&e))?;
    let mut reader = BufReader::new(file);
    let mut parser = UcrRecordParser::new();
    let mut buffer = String::new();
    let mut lineno = 0usize;
    loop {
        buffer.clear();
        let n = reader.read_line(&mut buffer).map_err(|e| read_err(&e))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        parser
            .parse_line(lineno, &buffer)
            .map_err(|e| read_err(&e))?;
    }
    parser.finish().map_err(|e| read_err(&e))?;
    Ok(parser.label_map().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        // temp_dir() is a getenv; hold the crate's env lock so it cannot
        // race a sibling test's setenv (see TEST_ENV_LOCK)
        let _guard = cache::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "tsg-source-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn options() -> ArchiveOptions {
        ArchiveOptions::bounded(10, 64, 3)
    }

    fn collect(stream: SplitStream) -> Vec<TimeSeries> {
        stream.map(|r| r.unwrap()).collect()
    }

    #[test]
    fn synthetic_stream_matches_eager_generation() {
        let source = DatasetSource::synthetic(options());
        let resolved = source.resolve("BeetleFly").unwrap();
        assert_eq!(resolved.kind(), SourceKind::Synthetic);
        assert_eq!(resolved.train_provenance.seed, Some(3));
        assert_eq!(
            resolved.train_provenance.generator_version,
            Some(GENERATOR_VERSION)
        );
        for (split, eager) in [
            (Split::Train, &resolved.train),
            (Split::Test, &resolved.test),
        ] {
            let stream = source.open_split("BeetleFly", split).unwrap();
            assert_eq!(stream.n_instances(), eager.len());
            assert_eq!(stream.max_length(), eager.max_length());
            assert_eq!(stream.provenance().kind, SourceKind::Synthetic);
            assert_eq!(collect(stream).as_slice(), eager.series());
        }
    }

    #[test]
    fn cached_stream_matches_eager_and_reports_cache_file() {
        let dir = temp_dir("cache");
        // CACHE_DIR_ENV is process-wide; hold the crate's env lock while a
        // private cache directory is in effect
        let _guard = cache::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        std::env::set_var(cache::CACHE_DIR_ENV, &dir);
        let source = DatasetSource::cached(options());
        let resolved = source.resolve("Wine").unwrap();
        assert_eq!(resolved.kind(), SourceKind::Cached);
        let path = resolved.train_provenance.path.clone().unwrap();
        assert!(path.starts_with(&dir));
        assert!(resolved.train_provenance.content_hash.is_some());
        // bit-identical to pure synthesis
        let synthetic = DatasetSource::synthetic(options()).resolve("Wine").unwrap();
        assert_eq!(resolved.train, synthetic.train);
        assert_eq!(resolved.test, synthetic.test);
        for (split, eager) in [
            (Split::Train, &resolved.train),
            (Split::Test, &resolved.test),
        ] {
            let stream = source.open_split("Wine", split).unwrap();
            assert_eq!(stream.provenance().kind, SourceKind::Cached);
            assert_eq!(stream.n_instances(), eager.len());
            assert_eq!(collect(stream).as_slice(), eager.series());
        }
        std::env::remove_var(cache::CACHE_DIR_ENV);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_directory_takes_precedence_and_streams_identically() {
        let dir = temp_dir("real");
        let synthetic = DatasetSource::synthetic(options());
        let resolved = synthetic.resolve("Herring").unwrap();
        std::fs::create_dir_all(dir.join("Herring")).unwrap();
        tsg_ts::io::write_ucr_file(&resolved.train, dir.join("Herring").join("Herring_TRAIN"))
            .unwrap();
        tsg_ts::io::write_ucr_file(&resolved.test, dir.join("Herring").join("Herring_TEST"))
            .unwrap();

        let real = DatasetSource::synthetic(options()).with_ucr_dir(&dir);
        let from_files = real.resolve("Herring").unwrap();
        assert_eq!(from_files.kind(), SourceKind::Real);
        assert_eq!(from_files.train.series(), resolved.train.series());
        assert_eq!(from_files.test.series(), resolved.test.series());
        assert!(from_files.train_provenance.path.is_some());
        assert!(from_files.train_provenance.describe().starts_with("real"));

        let stream = real.open_split("Herring", Split::Test).unwrap();
        assert_eq!(stream.provenance().kind, SourceKind::Real);
        assert_eq!(stream.n_instances(), resolved.test.len());
        assert_eq!(stream.max_length(), resolved.test.max_length());
        assert_eq!(collect(stream).as_slice(), resolved.test.series());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_real_pair_is_an_error_not_a_fallback() {
        let dir = temp_dir("malformed");
        std::fs::write(dir.join("BeetleFly_TRAIN.txt"), "1,0.5,oops\n").unwrap();
        std::fs::write(dir.join("BeetleFly_TEST.txt"), "1,0.5,0.6\n").unwrap();
        let source = DatasetSource::synthetic(options()).with_ucr_dir(&dir);
        assert!(matches!(
            source.resolve("BeetleFly"),
            Err(SourceError::Read { .. })
        ));
        assert!(matches!(
            source.open_split("BeetleFly", Split::Train),
            Err(SourceError::Read { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_pair_falls_back_and_unknown_name_errors() {
        let dir = temp_dir("absent");
        // lone _TRAIN: the pair is absent, so the catalogue takes over
        std::fs::write(dir.join("BeetleFly_TRAIN.txt"), "1,0.5,0.6\n").unwrap();
        let source = DatasetSource::synthetic(options()).with_ucr_dir(&dir);
        assert_eq!(
            source.resolve("BeetleFly").unwrap().kind(),
            SourceKind::Synthetic
        );
        assert!(matches!(
            source.resolve("NotADataset"),
            Err(SourceError::UnknownDataset(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn variable_length_real_split_reports_true_max_length() {
        let dir = temp_dir("varlen");
        std::fs::write(
            dir.join("Var_TRAIN.txt"),
            "1,0.5,0.25,NaN,NaN\n2,1.0,2.0,3.0,4.0\n",
        )
        .unwrap();
        std::fs::write(dir.join("Var_TEST.txt"), "1,0.5,0.25,0.125,NaN\n").unwrap();
        let source = DatasetSource::synthetic(options()).with_ucr_dir(&dir);
        let stream = source.open_split("Var", Split::Train).unwrap();
        assert_eq!(stream.n_instances(), 2);
        assert_eq!(stream.max_length(), 4);
        let series = collect(stream);
        assert_eq!(series[0].len(), 2);
        assert_eq!(series[1].len(), 4);
        // eager resolution agrees (names and all)
        let resolved = source.resolve("Var").unwrap();
        assert_eq!(resolved.train.series(), series.as_slice());
        assert_eq!(resolved.train.name, "Var_TRAIN");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_pair_label_indices_are_consistent_across_splits() {
        // the splits list classes in different first-appearance orders (and
        // TEST contains a label TRAIN never saw): raw labels must map to the
        // same indices in both splits, on both the eager and streaming paths
        let dir = temp_dir("labels");
        std::fs::write(
            dir.join("Lab_TRAIN.txt"),
            "5,0.5,0.6\n-2,1.0,1.1\n5,0.2,0.3\n9,2.0,2.1\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("Lab_TEST.txt"),
            "-2,1.5,1.6\n9,2.5,2.6\n7,3.0,3.1\n",
        )
        .unwrap();
        let source = DatasetSource::synthetic(options()).with_ucr_dir(&dir);
        let resolved = source.resolve("Lab").unwrap();
        assert_eq!(resolved.train.labels_required().unwrap(), vec![0, 1, 0, 2]);
        // -2 → 1 and 9 → 2 exactly as in training; unseen 7 extends to 3
        assert_eq!(resolved.test.labels_required().unwrap(), vec![1, 2, 3]);
        let streamed: Vec<usize> = collect(source.open_split("Lab", Split::Test).unwrap())
            .iter()
            .map(|s| s.label().unwrap())
            .collect();
        assert_eq!(streamed, vec![1, 2, 3]);
        let (eager_test, _) = source.resolve_split("Lab", Split::Test).unwrap();
        assert_eq!(eager_test.labels_required().unwrap(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_split_matches_the_corresponding_resolve_half() {
        let dir = temp_dir("resolve-split");
        let source = DatasetSource::synthetic(options());
        let pair = source.resolve("BeetleFly").unwrap();
        // synthetic
        let (train, prov) = source.resolve_split("BeetleFly", Split::Train).unwrap();
        assert_eq!(train, pair.train);
        assert_eq!(prov.kind, SourceKind::Synthetic);
        let (test, _) = source.resolve_split("BeetleFly", Split::Test).unwrap();
        assert_eq!(test, pair.test);
        // real: only the requested split's file is needed on disk
        tsg_ts::io::write_ucr_file(&pair.train, dir.join("BeetleFly_TRAIN.txt")).unwrap();
        tsg_ts::io::write_ucr_file(&pair.test, dir.join("BeetleFly_TEST.txt")).unwrap();
        let real = source.clone().with_ucr_dir(&dir);
        let (train, prov) = real.resolve_split("BeetleFly", Split::Train).unwrap();
        assert_eq!(prov.kind, SourceKind::Real);
        assert_eq!(train.series(), pair.train.series());
        assert_eq!(train.name, "BeetleFly_TRAIN");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_suffix_and_kind_names_are_stable() {
        assert_eq!(Split::Train.suffix(), "TRAIN");
        assert_eq!(Split::Test.suffix(), "TEST");
        assert_eq!(SourceKind::Synthetic.as_str(), "synthetic");
        assert_eq!(SourceKind::Cached.as_str(), "cached");
        assert_eq!(SourceKind::Real.as_str(), "real");
    }
}
