//! Generator families.
//!
//! Every synthetic dataset belongs to a family that mirrors the domain of the
//! original UCR dataset. A family knows how to produce one series given the
//! class index, the number of classes and the target length; class identity
//! is encoded in *structural* parameters (period, roughness, duty cycle,
//! lobe count, embedded pattern, …), while everything else (phase, jitter,
//! noise, regime boundaries) is nuisance variation drawn fresh per instance.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tsg_ts::generators as gen;

/// The generator family of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Radial outline profiles (image-outline datasets: ArrowHead, ShapesAll,
    /// phalanx outlines, Herring, BeetleFly, BirdChicken, …). Classes differ
    /// in lobe count and lobe depth.
    Outline,
    /// ECG-like pulse trains (ECG5000). Classes differ in rhythm period and
    /// the presence of irregular beats.
    Ecg,
    /// Appliance / device load profiles (ElectricDevices, *Appliances,
    /// RefrigerationDevices, ScreenType, Computers). Classes differ in duty
    /// cycle and burst level.
    Device,
    /// Noisy industrial sensor data (FordA, FordB, Earthquakes, Phoneme,
    /// InsectWingbeatSound). Classes differ in spectral content buried in
    /// noise.
    Sensor,
    /// Motion / gesture data (UWaveGestureLibraryAll, ToeSegmentation,
    /// Worms). Classes differ in smoothness (Hurst-like roughness) and
    /// low-frequency shape.
    Motion,
    /// Spectrographic curves (Meat, Strawberry, Wine, Ham, HandOutlines).
    /// Classes differ in the location/width of smooth absorption bumps.
    Spectro,
    /// Pattern-injection data (ShapeletSim, ToeSegmentation): classes are
    /// defined purely by which local pattern appears somewhere in noise.
    Shapelet,
    /// Chaotic-vs-stochastic data: classes mix logistic-map dynamics and
    /// coloured noise in different proportions (used for Phoneme-like
    /// many-class problems).
    Chaotic,
}

impl Family {
    /// Generates one series of `length` points for class `class` (of
    /// `n_classes`).
    pub fn generate<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        class: usize,
        n_classes: usize,
        length: usize,
    ) -> Vec<f64> {
        let frac = if n_classes > 1 {
            class as f64 / (n_classes - 1) as f64
        } else {
            0.0
        };
        match self {
            Family::Outline => {
                // neighbouring classes share the lobe count and differ only in
                // lobe depth, and every instance carries strong irregular
                // wobble and observation noise — global curve matching (1NN)
                // has to cope with the same ambiguity the real outline
                // datasets exhibit, while the aggregate graph statistics stay
                // informative
                let lobes = 2 + class / 2 % 7;
                let depth = 0.2 + 0.12 * (class % 2) as f64 + 0.05 * (class % 3) as f64;
                gen::outline_profile(rng, length, lobes, depth, 0.12, 0.15)
            }
            Family::Ecg => {
                let period = (length / (6 + class % 4)).max(16);
                let anomaly = class % 2 == 1;
                let amplitude = 1.5 + 0.5 * frac;
                gen::ecg_like(rng, length, period, amplitude, anomaly, 0.2)
            }
            Family::Device => {
                let burst = 2.0 + 2.0 * (class % 3) as f64;
                let mean_on = 8 + 12 * (class % 4);
                let mean_off = 20 + 10 * (class % 3);
                gen::appliance_profile(rng, length, burst, mean_on, mean_off, 0.2)
            }
            Family::Sensor => {
                // class-dependent dominant frequency and signal-to-noise
                // ratio, hidden in broadband noise
                let base_period = length as f64 / (4.0 + 6.0 * frac + (class % 3) as f64);
                let amplitude = 1.0 + 0.8 * frac;
                let components = [
                    (base_period, amplitude),
                    (base_period / 2.3, 0.5 * amplitude),
                    (base_period / 5.1, 0.25),
                ];
                gen::harmonic_mixture(rng, length, &components, 0.8 - 0.4 * frac)
            }
            Family::Motion => {
                let h = 0.25 + 0.5 * frac;
                let mut base = gen::fractional_noise(rng, length, h);
                let drift = gen::sine_wave(
                    rng,
                    length,
                    length as f64 / (1.0 + (class % 3) as f64),
                    0.6,
                    0.0,
                    0.0,
                );
                for (b, d) in base.iter_mut().zip(drift.iter()) {
                    *b += d;
                }
                base
            }
            Family::Spectro => {
                // smooth baseline + class-positioned absorption bumps
                let mut values = vec![0.0f64; length];
                let n_bumps = 2 + class % 3;
                for b in 0..n_bumps {
                    let center = ((0.15 + 0.3 * frac + 0.2 * b as f64) * length as f64) as i64
                        % length as i64;
                    let width = length as f64 * (0.025 + 0.02 * class as f64);
                    let amp = (1.0 + 0.5 * (b as f64)) * (1.0 + 0.35 * frac);
                    add_bump(&mut values, center, width, amp);
                }
                for v in values.iter_mut() {
                    *v += 0.12 * gen::standard_normal(rng);
                }
                values
            }
            Family::Shapelet => {
                let background = gen::gaussian_noise(rng, length, 0.4);
                let pat_len = (length / 8).max(6);
                let pattern = match class % 3 {
                    0 => gen::bump_pattern(pat_len),
                    1 => gen::sawtooth_pattern(pat_len),
                    _ => {
                        let mut p = gen::bump_pattern(pat_len);
                        for (k, v) in p.iter_mut().enumerate() {
                            if k >= pat_len / 2 {
                                *v = -*v;
                            }
                        }
                        p
                    }
                };
                gen::inject_pattern(rng, background, &pattern, 3.0 + frac)
            }
            Family::Chaotic => {
                let chaos = gen::logistic_map(rng, length, 4.0, 0.0);
                let noise = gen::ar1(rng, length, 0.3 + 0.6 * frac, 0.5);
                let mix = frac;
                chaos
                    .iter()
                    .zip(noise.iter())
                    .map(|(c, n)| (1.0 - mix) * (c - 0.5) * 2.0 + mix * n * 0.5)
                    .collect()
            }
        }
    }
}

fn add_bump(values: &mut [f64], center: i64, width: f64, amplitude: f64) {
    let lo = (center as f64 - 4.0 * width).floor() as i64;
    let hi = (center as f64 + 4.0 * width).ceil() as i64;
    for i in lo..=hi {
        if i < 0 || i as usize >= values.len() {
            continue;
        }
        let d = (i - center) as f64 / width;
        values[i as usize] += amplitude * (-0.5 * d * d).exp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const FAMILIES: [Family; 8] = [
        Family::Outline,
        Family::Ecg,
        Family::Device,
        Family::Sensor,
        Family::Motion,
        Family::Spectro,
        Family::Shapelet,
        Family::Chaotic,
    ];

    #[test]
    fn all_families_produce_requested_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for family in FAMILIES {
            for class in 0..4 {
                let s = family.generate(&mut rng, class, 4, 200);
                assert_eq!(s.len(), 200, "{family:?}");
                assert!(s.iter().all(|v| v.is_finite()), "{family:?}");
            }
        }
    }

    #[test]
    fn classes_differ_structurally() {
        // for each family, the mean feature (std of first difference) should
        // differ between class 0 and the last class more than within a class
        for family in FAMILIES {
            let roughness = |s: &[f64]| {
                let d: Vec<f64> = s.windows(2).map(|w| w[1] - w[0]).collect();
                let m = d.iter().sum::<f64>() / d.len() as f64;
                (d.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / d.len() as f64).sqrt()
            };
            let sample = |class: usize, seed: u64| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let series = family.generate(&mut rng, class, 4, 256);
                roughness(&series)
            };
            let a: f64 = (0..5).map(|i| sample(0, 100 + i)).sum::<f64>() / 5.0;
            let b: f64 = (0..5).map(|i| sample(3, 200 + i)).sum::<f64>() / 5.0;
            // not all families encode class in roughness; accept either a
            // roughness difference or a mean/amplitude difference
            let amp = |class: usize, seed: u64| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let series = family.generate(&mut rng, class, 4, 256);
                let lo = series.iter().cloned().fold(f64::MAX, f64::min);
                let hi = series.iter().cloned().fold(f64::MIN, f64::max);
                hi - lo
            };
            let a2: f64 = (0..5).map(|i| amp(0, 300 + i)).sum::<f64>() / 5.0;
            let b2: f64 = (0..5).map(|i| amp(3, 400 + i)).sum::<f64>() / 5.0;
            let rel_rough = (a - b).abs() / a.abs().max(1e-9);
            let rel_amp = (a2 - b2).abs() / a2.abs().max(1e-9);
            assert!(
                rel_rough > 0.05 || rel_amp > 0.05,
                "{family:?}: classes look identical (rough {rel_rough:.3}, amp {rel_amp:.3})"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in FAMILIES {
            let mut r1 = ChaCha8Rng::seed_from_u64(9);
            let mut r2 = ChaCha8Rng::seed_from_u64(9);
            assert_eq!(
                family.generate(&mut r1, 1, 3, 100),
                family.generate(&mut r2, 1, 3, 100)
            );
        }
    }

    #[test]
    fn single_class_edge_case() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = Family::Sensor.generate(&mut rng, 0, 1, 64);
        assert_eq!(s.len(), 64);
    }
}
