//! Loading real UCR archive files when they are available.
//!
//! If a directory containing the UCR text format is supplied (one
//! sub-directory per dataset with `<Name>_TRAIN` / `<Name>_TEST` files, or
//! flat files named that way), the loader reads it; otherwise callers fall
//! back to the synthetic archive. This lets the reproduction run unchanged
//! against the real benchmark data when licensing permits.

use std::path::{Path, PathBuf};
use tsg_ts::io::read_ucr_file;
use tsg_ts::Dataset;

/// Locates the `_TRAIN`/`_TEST` pair for `name` under `root`, trying both the
/// nested (`root/Name/Name_TRAIN`) and flat (`root/Name_TRAIN`) layouts, with
/// and without `.txt`/`.tsv` extensions.
pub fn find_ucr_pair(root: &Path, name: &str) -> Option<(PathBuf, PathBuf)> {
    let candidates = |suffix: &str| -> Vec<PathBuf> {
        let mut v = Vec::new();
        for ext in ["", ".txt", ".tsv", ".csv"] {
            v.push(root.join(name).join(format!("{name}_{suffix}{ext}")));
            v.push(root.join(format!("{name}_{suffix}{ext}")));
        }
        v
    };
    let train = candidates("TRAIN").into_iter().find(|p| p.exists())?;
    let test = candidates("TEST").into_iter().find(|p| p.exists())?;
    Some((train, test))
}

/// Loads the `(train, test)` pair for a dataset from a UCR-format directory.
pub fn load_ucr_pair(root: &Path, name: &str) -> Option<(Dataset, Dataset)> {
    let (train_path, test_path) = find_ucr_pair(root, name)?;
    let mut train = read_ucr_file(&train_path).ok()?;
    let mut test = read_ucr_file(&test_path).ok()?;
    train.name = format!("{name}_TRAIN");
    test.name = format!("{name}_TEST");
    Some((train, test))
}

/// Loads a dataset from `root` when available, otherwise synthesises it from
/// the archive catalogue.
pub fn load_or_generate(
    root: Option<&Path>,
    name: &str,
    options: crate::archive::ArchiveOptions,
) -> Result<(Dataset, Dataset), String> {
    if let Some(root) = root {
        if let Some(pair) = load_ucr_pair(root, name) {
            return Ok(pair);
        }
    }
    crate::archive::generate_by_name_scaled(name, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ArchiveOptions;
    use tsg_ts::io::write_ucr_file;
    use tsg_ts::TimeSeries;

    fn write_toy_archive(dir: &Path) {
        std::fs::create_dir_all(dir.join("Toy")).unwrap();
        let mut train = Dataset::new("Toy_TRAIN");
        train.push(TimeSeries::with_label(vec![0.0, 1.0, 2.0], 0));
        train.push(TimeSeries::with_label(vec![2.0, 1.0, 0.0], 1));
        let mut test = Dataset::new("Toy_TEST");
        test.push(TimeSeries::with_label(vec![0.1, 1.1, 2.1], 0));
        write_ucr_file(&train, dir.join("Toy").join("Toy_TRAIN")).unwrap();
        write_ucr_file(&test, dir.join("Toy").join("Toy_TEST")).unwrap();
    }

    #[test]
    fn loads_nested_layout() {
        let dir = std::env::temp_dir().join("tsg_datasets_loader_test");
        std::fs::remove_dir_all(&dir).ok();
        write_toy_archive(&dir);
        let (train, test) = load_ucr_pair(&dir, "Toy").unwrap();
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 1);
        assert_eq!(train.name, "Toy_TRAIN");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_return_none() {
        let dir = std::env::temp_dir().join("tsg_datasets_loader_missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_ucr_pair(&dir, "Nothing").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_generate_falls_back_to_synthetic() {
        let (train, test) =
            load_or_generate(None, "BeetleFly", ArchiveOptions::bounded(10, 64, 1)).unwrap();
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        assert!(load_or_generate(None, "Unknown", ArchiveOptions::bounded(10, 64, 1)).is_err());
    }
}
