//! Loading real UCR archive files when they are available.
//!
//! If a directory containing the UCR text format is supplied (one
//! sub-directory per dataset with `<Name>_TRAIN` / `<Name>_TEST` files, or
//! flat files named that way), the loader reads it; otherwise callers fall
//! back to the synthetic archive. This lets the reproduction run unchanged
//! against the real benchmark data when licensing permits. The
//! [`crate::source::DatasetSource`] resolver builds on these functions; use
//! it rather than calling them directly unless you need the raw paths.
//!
//! ## Pinned lookup precedence
//!
//! For each split the candidate paths are tried in this order, first hit
//! wins (the order is part of the public contract and pinned by the layout
//! matrix test below):
//!
//! 1. nested `root/Name/Name_SPLIT` with extensions `"" , .txt, .tsv, .csv`
//! 2. flat `root/Name_SPLIT` with the same extension order
//!
//! i.e. the nested layout always beats the flat layout, and within a layout
//! the extension-less name (the classic archive) beats the suffixed ones.
//! Train and test are located independently, so a mixed tree (nested train,
//! flat test) still loads.

use crate::archive::ArchiveOptions;
use std::path::{Path, PathBuf};
use tsg_ts::io::{read_ucr_file_with, UcrRecordParser};
use tsg_ts::{Dataset, TsError};

/// Extension order tried for each layout (part of the pinned precedence).
const EXTENSIONS: [&str; 4] = ["", ".txt", ".tsv", ".csv"];

/// Locates the `_TRAIN`/`_TEST` pair for `name` under `root` following the
/// pinned precedence (nested before flat, extension-less before suffixed).
/// Returns `None` unless **both** split files exist — a lone `_TRAIN` is
/// treated as "the directory lacks this dataset", never half-loaded.
pub fn find_ucr_pair(root: &Path, name: &str) -> Option<(PathBuf, PathBuf)> {
    let train = find_split(root, name, "TRAIN")?;
    let test = find_split(root, name, "TEST")?;
    Some((train, test))
}

/// Locates one split file following the pinned precedence.
pub fn find_split(root: &Path, name: &str, suffix: &str) -> Option<PathBuf> {
    let nested = EXTENSIONS
        .iter()
        .map(|ext| root.join(name).join(format!("{name}_{suffix}{ext}")));
    let flat = EXTENSIONS
        .iter()
        .map(|ext| root.join(format!("{name}_{suffix}{ext}")));
    nested.chain(flat).find(|p| p.is_file())
}

/// Loads the `(train, test)` pair for a dataset from a UCR-format directory,
/// distinguishing *absent* from *broken*:
///
/// * `Ok(None)` — the directory truly lacks the pair (fall back freely);
/// * `Ok(Some(pair))` — both files present and well-formed;
/// * `Err(_)` — the files are present but unreadable or malformed. Callers
///   must **not** fall back to synthesis on this branch: silently
///   substituting generated data for a broken archive file would change
///   reported results.
pub fn try_load_ucr_pair(root: &Path, name: &str) -> Result<Option<(Dataset, Dataset)>, TsError> {
    let Some((train_path, test_path)) = find_ucr_pair(root, name) else {
        return Ok(None);
    };
    // parse the training file first and seed the test parser with its label
    // table: the splits of a real pair routinely list classes in different
    // first-appearance orders, and inconsistent indices would silently
    // corrupt every reported error rate
    let mut train_parser = UcrRecordParser::new();
    let mut train = read_ucr_file_with(&mut train_parser, &train_path)?;
    let mut test = read_ucr_file_with(
        &mut UcrRecordParser::seeded(train_parser.label_map()),
        &test_path,
    )?;
    train.name = format!("{name}_TRAIN");
    test.name = format!("{name}_TEST");
    Ok(Some((train, test)))
}

/// Loads the `(train, test)` pair for a dataset from a UCR-format directory,
/// folding read errors into `None`. Prefer [`try_load_ucr_pair`] (or the
/// `DatasetSource` resolver) where the absent/broken distinction matters.
pub fn load_ucr_pair(root: &Path, name: &str) -> Option<(Dataset, Dataset)> {
    try_load_ucr_pair(root, name).ok().flatten()
}

/// Loads a dataset from `root` when available, otherwise synthesises it from
/// the archive catalogue. Falls back to synthesis **only** when the
/// directory truly lacks the `_TRAIN`/`_TEST` pair; a present-but-malformed
/// pair is an error.
pub fn load_or_generate(
    root: Option<&Path>,
    name: &str,
    options: ArchiveOptions,
) -> Result<(Dataset, Dataset), String> {
    if let Some(root) = root {
        match try_load_ucr_pair(root, name) {
            Ok(Some(pair)) => return Ok(pair),
            Ok(None) => {} // truly absent: synthesise below
            Err(e) => {
                return Err(format!(
                    "UCR pair for `{name}` under {} is unreadable: {e}",
                    root.display()
                ))
            }
        }
    }
    crate::archive::generate_by_name_scaled(name, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ArchiveOptions;
    use std::sync::atomic::{AtomicU32, Ordering};
    use tsg_ts::io::write_ucr_file;
    use tsg_ts::TimeSeries;

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_root(tag: &str) -> PathBuf {
        // temp_dir() is a getenv; hold the crate's env lock so it cannot
        // race a sibling test's setenv (see TEST_ENV_LOCK)
        let _guard = crate::cache::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "tsg-loader-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy_pair(marker: f64) -> (Dataset, Dataset) {
        let mut train = Dataset::new("Toy_TRAIN");
        train.push(TimeSeries::with_label(vec![marker, 1.0, 2.0], 0));
        train.push(TimeSeries::with_label(vec![2.0, 1.0, marker], 1));
        let mut test = Dataset::new("Toy_TEST");
        test.push(TimeSeries::with_label(vec![0.1, 1.1, marker], 0));
        (train, test)
    }

    fn write_pair(root: &Path, name: &str, nested: bool, ext: &str, marker: f64) {
        let (train, test) = toy_pair(marker);
        let dir = if nested {
            root.join(name)
        } else {
            root.to_path_buf()
        };
        std::fs::create_dir_all(&dir).unwrap();
        write_ucr_file(&train, dir.join(format!("{name}_TRAIN{ext}"))).unwrap();
        write_ucr_file(&test, dir.join(format!("{name}_TEST{ext}"))).unwrap();
    }

    #[test]
    fn layout_matrix_every_layout_and_extension_loads() {
        for nested in [true, false] {
            for ext in EXTENSIONS {
                let root = temp_root("matrix");
                write_pair(&root, "Toy", nested, ext, 7.5);
                let (train_path, test_path) = find_ucr_pair(&root, "Toy")
                    .unwrap_or_else(|| panic!("nested={nested} ext={ext:?} not found"));
                assert!(train_path
                    .to_string_lossy()
                    .ends_with(&format!("Toy_TRAIN{ext}")));
                assert!(test_path
                    .to_string_lossy()
                    .ends_with(&format!("Toy_TEST{ext}")));
                let (train, test) = load_ucr_pair(&root, "Toy").unwrap();
                assert_eq!(train.len(), 2);
                assert_eq!(test.len(), 1);
                assert_eq!(train.name, "Toy_TRAIN");
                assert_eq!(train.series()[0].values()[0], 7.5);
                std::fs::remove_dir_all(&root).ok();
            }
        }
    }

    #[test]
    fn nested_layout_beats_flat_when_both_exist() {
        let root = temp_root("precedence");
        write_pair(&root, "Toy", true, "", 1.0); // nested, marker 1.0
        write_pair(&root, "Toy", false, ".txt", 2.0); // flat, marker 2.0
        let (train, _) = load_ucr_pair(&root, "Toy").unwrap();
        assert_eq!(
            train.series()[0].values()[0],
            1.0,
            "pinned precedence: nested must win over flat"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn extensionless_beats_suffixed_within_a_layout() {
        let root = temp_root("ext-precedence");
        write_pair(&root, "Toy", false, ".tsv", 3.0);
        write_pair(&root, "Toy", false, "", 4.0);
        write_pair(&root, "Toy", false, ".csv", 5.0);
        let (train, _) = load_ucr_pair(&root, "Toy").unwrap();
        assert_eq!(
            train.series()[0].values()[0],
            4.0,
            "\"\" must beat .tsv/.csv"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mixed_layout_pair_still_loads() {
        let root = temp_root("mixed");
        // train nested, test flat — located independently
        let (train, test) = toy_pair(9.0);
        std::fs::create_dir_all(root.join("Toy")).unwrap();
        write_ucr_file(&train, root.join("Toy").join("Toy_TRAIN")).unwrap();
        write_ucr_file(&test, root.join("Toy_TEST.txt")).unwrap();
        assert!(find_ucr_pair(&root, "Toy").is_some());
        assert!(load_ucr_pair(&root, "Toy").is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lone_train_means_pair_absent() {
        let root = temp_root("lone");
        let (train, _) = toy_pair(1.0);
        write_ucr_file(&train, root.join("Toy_TRAIN.txt")).unwrap();
        assert!(find_ucr_pair(&root, "Toy").is_none());
        assert!(load_ucr_pair(&root, "Toy").is_none());
        assert!(try_load_ucr_pair(&root, "Toy").unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_files_return_none() {
        let root = temp_root("missing");
        assert!(load_ucr_pair(&root, "Nothing").is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn malformed_pair_is_err_not_none() {
        let root = temp_root("malformed");
        std::fs::write(root.join("Toy_TRAIN.txt"), "1,0.5,garbage\n").unwrap();
        std::fs::write(root.join("Toy_TEST.txt"), "1,0.5,0.6\n").unwrap();
        assert!(try_load_ucr_pair(&root, "Toy").is_err());
        // the lossy wrapper folds it to None for legacy callers
        assert!(load_ucr_pair(&root, "Toy").is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pair_shares_one_label_table_across_splits() {
        // TRAIN sees raw labels 4, 8; TEST lists them in the opposite order
        // — the shared table must keep 4 → 0 and 8 → 1 in both splits
        let root = temp_root("labels");
        std::fs::write(root.join("Toy_TRAIN.txt"), "4,0.5,0.6\n8,1.0,1.1\n").unwrap();
        std::fs::write(root.join("Toy_TEST.txt"), "8,1.5,1.6\n4,0.1,0.2\n").unwrap();
        let (train, test) = try_load_ucr_pair(&root, "Toy").unwrap().unwrap();
        assert_eq!(train.labels_required().unwrap(), vec![0, 1]);
        assert_eq!(test.labels_required().unwrap(), vec![1, 0]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn load_or_generate_falls_back_only_when_pair_truly_absent() {
        let options = ArchiveOptions::bounded(10, 64, 1);
        // no directory at all: synthesis
        let (train, test) = load_or_generate(None, "BeetleFly", options).unwrap();
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        assert!(load_or_generate(None, "Unknown", options).is_err());

        // directory lacking the pair (lone _TRAIN): synthesis
        let root = temp_root("fallback");
        let (toy_train, _) = toy_pair(1.0);
        write_ucr_file(&toy_train, root.join("BeetleFly_TRAIN.txt")).unwrap();
        let (train2, _) = load_or_generate(Some(&root), "BeetleFly", options).unwrap();
        assert_eq!(train2, train, "fallback must reproduce pure synthesis");

        // present but malformed pair: hard error, never silent synthesis
        std::fs::write(root.join("BeetleFly_TEST.txt"), "1,0.5,nope\n").unwrap();
        assert!(load_or_generate(Some(&root), "BeetleFly", options).is_err());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn real_pair_wins_over_synthesis() {
        let root = temp_root("wins");
        write_pair(&root, "BeetleFly", true, ".txt", 42.0);
        let options = ArchiveOptions::bounded(10, 64, 1);
        let (train, _) = load_or_generate(Some(&root), "BeetleFly", options).unwrap();
        assert_eq!(train.len(), 2);
        assert_eq!(train.series()[0].values()[0], 42.0);
        std::fs::remove_dir_all(&root).ok();
    }
}
