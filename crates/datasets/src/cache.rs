//! On-disk cache for generated datasets.
//!
//! Generating a full-size catalogue dataset (thousands of instances, series
//! up to length 2709) costs seconds per call, and both repeated `--full`
//! experiment runs and server model fits request the *same* `(dataset name,
//! seed, size budget)` combinations over and over. This cache keys the
//! generated `(train, test)` pair on exactly those parameters and stores it
//! under `target/tsg-dataset-cache/` (override with
//! [`CACHE_DIR_ENV`]), so the second request is a file read.
//!
//! The format is a small versioned binary layout (little-endian, `f64` bits
//! for values) written atomically via a temp file + rename, so concurrent
//! writers — e.g. parallel CI jobs — can only ever install a complete file.
//! Any read failure (missing file, truncation, version bump, corruption)
//! falls back to regeneration and rewrites the entry; the cache can never
//! change results, only skip work. Cached bytes round-trip the exact `f64`
//! bits, so cached and freshly generated datasets are bit-identical —
//! `tests/` below pin this.

use crate::archive::{generate_scaled, spec_by_name, ArchiveOptions, DatasetSpec};
use std::io::Read;
use std::path::{Path, PathBuf};
use tsg_faults::{fsio, Site};
use tsg_ts::{Dataset, TimeSeries};

/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "TSG_DATASET_CACHE_DIR";

/// Default cache directory (relative to the working directory, which for
/// `cargo run` is the workspace root).
pub const DEFAULT_CACHE_DIR: &str = "target/tsg-dataset-cache";

/// Format magic + version; bump the version on any layout change.
const MAGIC: &[u8; 8] = b"TSGDSC1\n";

/// Version of the *generators* behind the cache, part of every cache key.
/// Bump this whenever [`crate::families`] or the generation logic in
/// [`crate::archive`] changes observable output — otherwise previously
/// cached files would keep serving pre-change series and silently break the
/// "the cache can never change results" invariant.
pub const GENERATOR_VERSION: u32 = 1;

/// Serialises tests — across this whole crate — that touch the process
/// environment. `set_var` is unsound against concurrent `getenv` on glibc,
/// and `std::env::temp_dir()` *is* a `getenv` (`TMPDIR`), so every test in
/// this crate's unit binary that mutates [`CACHE_DIR_ENV`] **or** creates a
/// temp directory must hold this lock for its whole body (tests within one
/// binary run multi-threaded).
#[cfg(test)]
pub(crate) static TEST_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The cache directory currently in effect.
pub fn cache_dir() -> PathBuf {
    match std::env::var(CACHE_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(DEFAULT_CACHE_DIR),
    }
}

fn budget_component(value: usize) -> String {
    if value == usize::MAX {
        "full".to_string()
    } else {
        value.to_string()
    }
}

/// The cache file path for one `(spec, options, generator version)` key.
pub fn cache_path(spec: &DatasetSpec, options: ArchiveOptions) -> PathBuf {
    cache_dir().join(format!(
        "{}-s{}-tr{}-te{}-len{}-g{GENERATOR_VERSION}.bin",
        spec.name,
        options.seed,
        budget_component(options.max_train),
        budget_component(options.max_test),
        budget_component(options.max_length),
    ))
}

/// [`generate_scaled`] with the on-disk cache in front of it.
pub fn generate_scaled_cached(spec: &DatasetSpec, options: ArchiveOptions) -> (Dataset, Dataset) {
    let path = cache_path(spec, options);
    if let Some(pair) = read_pair(&path) {
        return pair;
    }
    let pair = generate_scaled(spec, options);
    // failure to persist is not an error: the cache is an optimisation
    let _ = write_pair(&path, &pair);
    pair
}

/// [`crate::archive::generate_by_name_scaled`] with the cache in front.
pub fn generate_by_name_scaled_cached(
    name: &str,
    options: ArchiveOptions,
) -> Result<(Dataset, Dataset), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
    Ok(generate_scaled_cached(spec, options))
}

/// Reads the pair for the key, regenerating and rewriting the entry first
/// when it is missing or corrupt, and returns the backing path with the
/// pair. `None` when the cache directory cannot be written — callers fall
/// back to in-memory generation.
///
/// The eager counterpart of [`ensure_cached`]: a warm cache costs exactly
/// one decode (the read doubles as validation), a cold one a single write —
/// on a miss the freshly generated pair is returned directly, which is
/// bit-identical to reading it back because the format stores raw `f64`
/// bits (pinned by the round-trip tests below).
pub(crate) fn read_or_create_pair(
    spec: &DatasetSpec,
    options: ArchiveOptions,
) -> Option<(PathBuf, (Dataset, Dataset))> {
    let path = cache_path(spec, options);
    if let Some(pair) = read_pair(&path) {
        return Some((path, pair));
    }
    let pair = generate_scaled(spec, options);
    write_pair(&path, &pair).ok()?;
    Some((path, pair))
}

/// Guarantees a valid cache file for the key and returns its path, writing
/// (or repairing) the entry first when it is missing or unreadable. `None`
/// when the cache directory cannot be written — callers fall back to
/// in-memory generation. This is the entry point of the streaming
/// [`crate::source::SplitStream`] cached path: the stream then reads records
/// out of the returned file one at a time instead of materialising the
/// whole split.
pub fn ensure_cached(spec: &DatasetSpec, options: ArchiveOptions) -> Option<PathBuf> {
    let path = cache_path(spec, options);
    if validate_file(&path) {
        return Some(path);
    }
    let pair = generate_scaled(spec, options);
    write_pair(&path, &pair).ok()?;
    Some(path)
}

/// Structurally validates a cache file by walking every record with the
/// streaming reader — one record resident at a time, never the full pair
/// (this is what lets the streaming split path keep its O(1)-residency
/// promise even though it validates the file before use).
fn validate_file(path: &Path) -> bool {
    let Some(mut reader) = CacheFileReader::open(path) else {
        return false;
    };
    for _ in 0..2 {
        let Some((_, n_series)) = reader.read_header() else {
            return false;
        };
        for _ in 0..n_series {
            if reader.read_record().is_none() {
                return false;
            }
        }
    }
    reader.at_eof()
}

/// Reads a cached `(train, test)` pair; `None` on any corruption.
/// Exposed to [`crate::source`] so the eager cached path shares the exact
/// reader the cache itself uses.
pub(crate) fn read_pair(path: &Path) -> Option<(Dataset, Dataset)> {
    let mut reader = CacheFileReader::open(path)?;
    let train = read_dataset(&mut reader)?;
    let test = read_dataset(&mut reader)?;
    if !reader.at_eof() {
        return None; // trailing garbage: treat as corrupt
    }
    Some((train, test))
}

/// Incremental reader over one cache file: magic is checked on open, then
/// dataset headers and records are pulled off the file one at a time (the
/// streaming split reader never holds more than one record in memory).
pub(crate) struct CacheFileReader {
    reader: std::io::BufReader<std::fs::File>,
}

impl CacheFileReader {
    /// Opens the file and verifies the format magic; `None` when the file
    /// is missing, unreadable or from a different format version.
    pub(crate) fn open(path: &Path) -> Option<Self> {
        let file = fsio::open(path, Site::CacheOpen).ok()?;
        let mut reader = std::io::BufReader::new(file);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).ok()?;
        if &magic != MAGIC {
            return None;
        }
        Some(CacheFileReader { reader })
    }

    /// Reads one dataset header: `(name, number of records)`.
    pub(crate) fn read_header(&mut self) -> Option<(String, usize)> {
        let name_len = self.read_u32()? as usize;
        if name_len > (1 << 20) {
            return None; // implausible name length: corrupt
        }
        let mut name = vec![0u8; name_len];
        self.reader.read_exact(&mut name).ok()?;
        let name = String::from_utf8(name).ok()?;
        let n_series = self.read_u32()? as usize;
        Some((name, n_series))
    }

    /// Reads one series record.
    pub(crate) fn read_record(&mut self) -> Option<TimeSeries> {
        let has_label = self.read_u8()?;
        let label = self.read_u64()?;
        let len = self.read_u32()? as usize;
        // cap the pre-allocation so a corrupt length field cannot trigger a
        // huge allocation before the read fails at EOF
        let mut values = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            values.push(f64::from_bits(self.read_u64()?));
        }
        match has_label {
            1 => Some(TimeSeries::with_label(values, label as usize)),
            0 => Some(TimeSeries::new(values)),
            _ => None,
        }
    }

    /// Whether the reader has consumed the whole file.
    pub(crate) fn at_eof(&mut self) -> bool {
        use std::io::BufRead;
        matches!(self.reader.fill_buf(), Ok(buf) if buf.is_empty())
    }

    fn read_u8(&mut self) -> Option<u8> {
        let mut buf = [0u8; 1];
        self.reader.read_exact(&mut buf).ok()?;
        Some(buf[0])
    }

    fn read_u32(&mut self) -> Option<u32> {
        let mut buf = [0u8; 4];
        self.reader.read_exact(&mut buf).ok()?;
        Some(u32::from_le_bytes(buf))
    }

    fn read_u64(&mut self) -> Option<u64> {
        let mut buf = [0u8; 8];
        self.reader.read_exact(&mut buf).ok()?;
        Some(u64::from_le_bytes(buf))
    }
}

fn write_pair(path: &Path, pair: &(Dataset, Dataset)) -> std::io::Result<()> {
    let dir = path.parent().expect("cache path has a parent");
    fsio::create_dir_all(dir)?;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    write_dataset(&mut bytes, &pair.0);
    write_dataset(&mut bytes, &pair.1);
    // unique temp name per writer — process id *and* a process-wide counter,
    // so concurrent processes and concurrent threads within one process can
    // never interleave into the same temp file; rename is atomic within the
    // directory, so readers only ever observe complete entries
    static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    // all file touches go through the injectable seam (`tsg_faults::fsio`) so
    // chaos runs can land torn/truncated/bit-flipped entries or fail any step
    let result = (|| {
        let mut file = fsio::create(&tmp, Site::CacheOpen)?;
        fsio::write_all(&mut file, &bytes, Site::CacheWrite)?;
        fsio::sync_all(&file, Site::CacheSync)?;
        drop(file);
        fsio::rename(&tmp, path, Site::CacheRename)
    })();
    if result.is_err() {
        // a failed install must not leave temp litter behind
        let _ = fsio::remove_file(&tmp);
    }
    result
}

fn write_dataset(out: &mut Vec<u8>, dataset: &Dataset) {
    let name = dataset.name.as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(dataset.len() as u32).to_le_bytes());
    for series in dataset.series() {
        match series.label() {
            Some(label) => {
                out.push(1);
                out.extend_from_slice(&(label as u64).to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.extend_from_slice(&(series.len() as u32).to_le_bytes());
        for value in series.values() {
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
    }
}

fn read_dataset(reader: &mut CacheFileReader) -> Option<Dataset> {
    let (name, n_series) = reader.read_header()?;
    let mut dataset = Dataset::new(name);
    for _ in 0..n_series {
        dataset.push(reader.read_record()?);
    }
    Some(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn with_temp_cache<T>(f: impl FnOnce(&Path) -> T) -> T {
        // `CACHE_DIR_ENV` is process-wide; serialise the tests that set it
        let _guard = TEST_ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "tsg-cache-test-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let previous = std::env::var(CACHE_DIR_ENV).ok();
        std::env::set_var(CACHE_DIR_ENV, &dir);
        let result = f(&dir);
        match previous {
            Some(v) => std::env::set_var(CACHE_DIR_ENV, v),
            None => std::env::remove_var(CACHE_DIR_ENV),
        }
        std::fs::remove_dir_all(&dir).ok();
        result
    }

    #[test]
    fn cached_pair_is_bit_identical_to_generated() {
        with_temp_cache(|dir| {
            let spec = spec_by_name("Wine").unwrap();
            let options = ArchiveOptions::bounded(10, 64, 5);
            let fresh = generate_scaled(spec, options);
            let first = generate_scaled_cached(spec, options);
            assert_eq!(first, fresh);
            let path = cache_path(spec, options);
            assert!(path.starts_with(dir));
            assert!(path.exists(), "cache file not written");
            // second call must hit the file; prove it by comparing equality
            // after corrupting nothing
            let second = generate_scaled_cached(spec, options);
            assert_eq!(second, fresh);
        });
    }

    #[test]
    fn second_call_reads_the_file_not_the_generator() {
        with_temp_cache(|_| {
            let spec = spec_by_name("BeetleFly").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 9);
            let first = generate_scaled_cached(spec, options);
            // plant a marker: rewrite the cache with train/test swapped; if
            // the second call reads the file it must return the swapped pair
            let path = cache_path(spec, options);
            let swapped = (first.1.clone(), first.0.clone());
            write_pair(&path, &swapped).unwrap();
            let second = generate_scaled_cached(spec, options);
            assert_eq!(second, swapped, "cache file was not used");
        });
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Wine").unwrap();
            let a = cache_path(spec, ArchiveOptions::bounded(10, 64, 5));
            let b = cache_path(spec, ArchiveOptions::bounded(10, 64, 6));
            let c = cache_path(spec, ArchiveOptions::bounded(12, 64, 5));
            let d = cache_path(spec, ArchiveOptions::full(5));
            assert_ne!(a, b);
            assert_ne!(a, c);
            assert_ne!(a, d);
            assert!(d.to_string_lossy().contains("full"));
        });
    }

    #[test]
    fn corrupt_cache_falls_back_to_regeneration() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Herring").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 2);
            let fresh = generate_scaled(spec, options);
            let path = cache_path(spec, options);
            for corrupt in [
                b"garbage".to_vec(),
                MAGIC.to_vec(),                        // truncated after magic
                b"WRONGMAG followed by junk".to_vec(), // bad magic
            ] {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &corrupt).unwrap();
                let pair = generate_scaled_cached(spec, options);
                assert_eq!(pair, fresh, "corrupt cache changed results");
                // the entry must have been repaired with a valid file
                assert_eq!(read_pair(&path).unwrap(), fresh);
            }
        });
    }

    #[test]
    fn unlabeled_series_roundtrip() {
        with_temp_cache(|_| {
            let mut train = Dataset::new("u_train");
            train.push(TimeSeries::new(vec![1.5, -2.25, f64::MIN_POSITIVE]));
            train.push(TimeSeries::with_label(vec![0.0, -0.0], 3));
            let test = Dataset::new("u_test");
            let path = cache_dir().join("unlabeled.bin");
            write_pair(&path, &(train.clone(), test.clone())).unwrap();
            let (train2, test2) = read_pair(&path).unwrap();
            assert_eq!(train2, train);
            assert_eq!(test2, test);
            // -0.0 must survive as -0.0 (bit-exact, not value-equal)
            assert_eq!(
                train2.series()[1].values()[1].to_bits(),
                (-0.0f64).to_bits()
            );
        });
    }

    #[test]
    fn truncated_cache_regenerates_cleanly() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Meat").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 4);
            let fresh = generate_scaled(spec, options);
            let path = cache_path(spec, options);
            write_pair(&path, &fresh).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            // cut the valid file at several points, including mid-record
            for cut in [bytes.len() / 2, bytes.len() - 1, MAGIC.len() + 3] {
                std::fs::write(&path, &bytes[..cut]).unwrap();
                assert!(
                    read_pair(&path).is_none(),
                    "cut at {cut} must read as corrupt"
                );
                let pair = generate_scaled_cached(spec, options);
                assert_eq!(pair, fresh, "truncation at {cut} changed results");
                assert_eq!(read_pair(&path).unwrap(), fresh, "entry not repaired");
            }
        });
    }

    #[test]
    fn version_bumped_entry_is_a_different_key_and_regenerates() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Ham").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 8);
            let fresh = generate_scaled(spec, options);
            let current = cache_path(spec, options);
            // a file left behind by generator version 0: same key otherwise
            let stale = PathBuf::from(
                current
                    .to_string_lossy()
                    .replace(&format!("-g{GENERATOR_VERSION}."), "-g0."),
            );
            assert_ne!(stale, current, "version must be part of the key");
            std::fs::create_dir_all(stale.parent().unwrap()).unwrap();
            // plant swapped data under the stale key: if the current version
            // ever read it, results would visibly flip
            write_pair(&stale, &(fresh.1.clone(), fresh.0.clone())).unwrap();
            let pair = generate_scaled_cached(spec, options);
            assert_eq!(pair, fresh, "stale-version entry leaked into results");
            assert!(current.exists(), "current-version entry not written");
            // same for a file with a bumped format magic at the current path
            let mut bytes = std::fs::read(&current).unwrap();
            bytes[6] = b'9'; // TSGDSC1 -> TSGDSC9
            std::fs::write(&current, &bytes).unwrap();
            assert!(read_pair(&current).is_none());
            assert_eq!(generate_scaled_cached(spec, options), fresh);
        });
    }

    #[test]
    fn concurrent_writers_racing_on_one_key_regenerate_cleanly() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Strawberry").unwrap();
            let options = ArchiveOptions::bounded(8, 48, 6);
            let fresh = generate_scaled(spec, options);
            let path = cache_path(spec, options);
            // every worker starts from a cold cache and races the write;
            // atomic tmp+rename means each sees either nothing (generates)
            // or a complete file (reads) — never a torn entry
            let workers: Vec<usize> = (0..16).collect();
            let pool = tsg_parallel::ThreadPool::new(8);
            let results = pool.map(&workers, |_| generate_scaled_cached(spec, options));
            for (i, pair) in results.iter().enumerate() {
                assert_eq!(pair, &fresh, "worker {i} observed different data");
            }
            assert_eq!(read_pair(&path).unwrap(), fresh, "final entry invalid");
            // no stray tmp files survive the race
            let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
                .collect();
            assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        });
    }

    #[test]
    fn ensure_cached_creates_verifies_and_repairs() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Wine").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 2);
            let path = ensure_cached(spec, options).expect("writable cache");
            assert!(path.exists());
            let valid = std::fs::read(&path).unwrap();
            // corrupt it: ensure_cached must repair in place
            std::fs::write(&path, b"junk").unwrap();
            let repaired = ensure_cached(spec, options).unwrap();
            assert_eq!(repaired, path);
            assert_eq!(
                std::fs::read(&path).unwrap(),
                valid,
                "repair not byte-identical"
            );
        });
    }

    #[test]
    fn by_name_wrapper_validates_names() {
        with_temp_cache(|_| {
            let options = ArchiveOptions::bounded(6, 48, 1);
            assert!(generate_by_name_scaled_cached("Wine", options).is_ok());
            assert!(generate_by_name_scaled_cached("Nope", options).is_err());
        });
    }
}
