//! On-disk cache for generated datasets.
//!
//! Generating a full-size catalogue dataset (thousands of instances, series
//! up to length 2709) costs seconds per call, and both repeated `--full`
//! experiment runs and server model fits request the *same* `(dataset name,
//! seed, size budget)` combinations over and over. This cache keys the
//! generated `(train, test)` pair on exactly those parameters and stores it
//! under `target/tsg-dataset-cache/` (override with
//! [`CACHE_DIR_ENV`]), so the second request is a file read.
//!
//! The format is a small versioned binary layout (little-endian, `f64` bits
//! for values) written atomically via a temp file + rename, so concurrent
//! writers — e.g. parallel CI jobs — can only ever install a complete file.
//! Any read failure (missing file, truncation, version bump, corruption)
//! falls back to regeneration and rewrites the entry; the cache can never
//! change results, only skip work. Cached bytes round-trip the exact `f64`
//! bits, so cached and freshly generated datasets are bit-identical —
//! `tests/` below pin this.

use crate::archive::{generate_scaled, spec_by_name, ArchiveOptions, DatasetSpec};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use tsg_ts::{Dataset, TimeSeries};

/// Environment variable overriding the cache directory.
pub const CACHE_DIR_ENV: &str = "TSG_DATASET_CACHE_DIR";

/// Default cache directory (relative to the working directory, which for
/// `cargo run` is the workspace root).
pub const DEFAULT_CACHE_DIR: &str = "target/tsg-dataset-cache";

/// Format magic + version; bump the version on any layout change.
const MAGIC: &[u8; 8] = b"TSGDSC1\n";

/// Version of the *generators* behind the cache, part of every cache key.
/// Bump this whenever [`crate::families`] or the generation logic in
/// [`crate::archive`] changes observable output — otherwise previously
/// cached files would keep serving pre-change series and silently break the
/// "the cache can never change results" invariant.
pub const GENERATOR_VERSION: u32 = 1;

/// The cache directory currently in effect.
pub fn cache_dir() -> PathBuf {
    match std::env::var(CACHE_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(DEFAULT_CACHE_DIR),
    }
}

fn budget_component(value: usize) -> String {
    if value == usize::MAX {
        "full".to_string()
    } else {
        value.to_string()
    }
}

/// The cache file path for one `(spec, options, generator version)` key.
pub fn cache_path(spec: &DatasetSpec, options: ArchiveOptions) -> PathBuf {
    cache_dir().join(format!(
        "{}-s{}-tr{}-te{}-len{}-g{GENERATOR_VERSION}.bin",
        spec.name,
        options.seed,
        budget_component(options.max_train),
        budget_component(options.max_test),
        budget_component(options.max_length),
    ))
}

/// [`generate_scaled`] with the on-disk cache in front of it.
pub fn generate_scaled_cached(spec: &DatasetSpec, options: ArchiveOptions) -> (Dataset, Dataset) {
    let path = cache_path(spec, options);
    if let Some(pair) = read_pair(&path) {
        return pair;
    }
    let pair = generate_scaled(spec, options);
    // failure to persist is not an error: the cache is an optimisation
    let _ = write_pair(&path, &pair);
    pair
}

/// [`crate::archive::generate_by_name_scaled`] with the cache in front.
pub fn generate_by_name_scaled_cached(
    name: &str,
    options: ArchiveOptions,
) -> Result<(Dataset, Dataset), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
    Ok(generate_scaled_cached(spec, options))
}

fn read_pair(path: &Path) -> Option<(Dataset, Dataset)> {
    let bytes = std::fs::read(path).ok()?;
    let mut cursor = &bytes[..];
    let mut magic = [0u8; 8];
    cursor.read_exact(&mut magic).ok()?;
    if &magic != MAGIC {
        return None;
    }
    let train = read_dataset(&mut cursor)?;
    let test = read_dataset(&mut cursor)?;
    if !cursor.is_empty() {
        return None; // trailing garbage: treat as corrupt
    }
    Some((train, test))
}

fn write_pair(path: &Path, pair: &(Dataset, Dataset)) -> std::io::Result<()> {
    let dir = path.parent().expect("cache path has a parent");
    std::fs::create_dir_all(dir)?;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    write_dataset(&mut bytes, &pair.0);
    write_dataset(&mut bytes, &pair.1);
    // unique temp name per writer so concurrent processes never interleave;
    // rename is atomic within the directory
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)
}

fn write_dataset(out: &mut Vec<u8>, dataset: &Dataset) {
    let name = dataset.name.as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(dataset.len() as u32).to_le_bytes());
    for series in dataset.series() {
        match series.label() {
            Some(label) => {
                out.push(1);
                out.extend_from_slice(&(label as u64).to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.extend_from_slice(&(series.len() as u32).to_le_bytes());
        for value in series.values() {
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
    }
}

fn read_dataset(cursor: &mut &[u8]) -> Option<Dataset> {
    let name_len = read_u32(cursor)? as usize;
    if cursor.len() < name_len {
        return None;
    }
    let name = std::str::from_utf8(&cursor[..name_len]).ok()?.to_string();
    *cursor = &cursor[name_len..];
    let n_series = read_u32(cursor)? as usize;
    let mut dataset = Dataset::new(name);
    for _ in 0..n_series {
        let has_label = read_u8(cursor)?;
        let label = read_u64(cursor)?;
        let len = read_u32(cursor)? as usize;
        if cursor.len() < len * 8 {
            return None;
        }
        let mut values = Vec::with_capacity(len);
        for chunk in cursor[..len * 8].chunks_exact(8) {
            values.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().unwrap(),
            )));
        }
        *cursor = &cursor[len * 8..];
        dataset.push(match has_label {
            1 => TimeSeries::with_label(values, label as usize),
            0 => TimeSeries::new(values),
            _ => return None,
        });
    }
    Some(dataset)
}

fn read_u8(cursor: &mut &[u8]) -> Option<u8> {
    let (&first, rest) = cursor.split_first()?;
    *cursor = rest;
    Some(first)
}

fn read_u32(cursor: &mut &[u8]) -> Option<u32> {
    if cursor.len() < 4 {
        return None;
    }
    let value = u32::from_le_bytes(cursor[..4].try_into().unwrap());
    *cursor = &cursor[4..];
    Some(value)
}

fn read_u64(cursor: &mut &[u8]) -> Option<u64> {
    if cursor.len() < 8 {
        return None;
    }
    let value = u64::from_le_bytes(cursor[..8].try_into().unwrap());
    *cursor = &cursor[8..];
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Mutex;

    /// `CACHE_DIR_ENV` is process-wide; serialise the tests that set it.
    static ENV_LOCK: Mutex<()> = Mutex::new(());
    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn with_temp_cache<T>(f: impl FnOnce(&Path) -> T) -> T {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "tsg-cache-test-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let previous = std::env::var(CACHE_DIR_ENV).ok();
        std::env::set_var(CACHE_DIR_ENV, &dir);
        let result = f(&dir);
        match previous {
            Some(v) => std::env::set_var(CACHE_DIR_ENV, v),
            None => std::env::remove_var(CACHE_DIR_ENV),
        }
        std::fs::remove_dir_all(&dir).ok();
        result
    }

    #[test]
    fn cached_pair_is_bit_identical_to_generated() {
        with_temp_cache(|dir| {
            let spec = spec_by_name("Wine").unwrap();
            let options = ArchiveOptions::bounded(10, 64, 5);
            let fresh = generate_scaled(spec, options);
            let first = generate_scaled_cached(spec, options);
            assert_eq!(first, fresh);
            let path = cache_path(spec, options);
            assert!(path.starts_with(dir));
            assert!(path.exists(), "cache file not written");
            // second call must hit the file; prove it by comparing equality
            // after corrupting nothing
            let second = generate_scaled_cached(spec, options);
            assert_eq!(second, fresh);
        });
    }

    #[test]
    fn second_call_reads_the_file_not_the_generator() {
        with_temp_cache(|_| {
            let spec = spec_by_name("BeetleFly").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 9);
            let first = generate_scaled_cached(spec, options);
            // plant a marker: rewrite the cache with train/test swapped; if
            // the second call reads the file it must return the swapped pair
            let path = cache_path(spec, options);
            let swapped = (first.1.clone(), first.0.clone());
            write_pair(&path, &swapped).unwrap();
            let second = generate_scaled_cached(spec, options);
            assert_eq!(second, swapped, "cache file was not used");
        });
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Wine").unwrap();
            let a = cache_path(spec, ArchiveOptions::bounded(10, 64, 5));
            let b = cache_path(spec, ArchiveOptions::bounded(10, 64, 6));
            let c = cache_path(spec, ArchiveOptions::bounded(12, 64, 5));
            let d = cache_path(spec, ArchiveOptions::full(5));
            assert_ne!(a, b);
            assert_ne!(a, c);
            assert_ne!(a, d);
            assert!(d.to_string_lossy().contains("full"));
        });
    }

    #[test]
    fn corrupt_cache_falls_back_to_regeneration() {
        with_temp_cache(|_| {
            let spec = spec_by_name("Herring").unwrap();
            let options = ArchiveOptions::bounded(6, 48, 2);
            let fresh = generate_scaled(spec, options);
            let path = cache_path(spec, options);
            for corrupt in [
                b"garbage".to_vec(),
                MAGIC.to_vec(),                        // truncated after magic
                b"WRONGMAG followed by junk".to_vec(), // bad magic
            ] {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &corrupt).unwrap();
                let pair = generate_scaled_cached(spec, options);
                assert_eq!(pair, fresh, "corrupt cache changed results");
                // the entry must have been repaired with a valid file
                assert_eq!(read_pair(&path).unwrap(), fresh);
            }
        });
    }

    #[test]
    fn unlabeled_series_roundtrip() {
        with_temp_cache(|_| {
            let mut train = Dataset::new("u_train");
            train.push(TimeSeries::new(vec![1.5, -2.25, f64::MIN_POSITIVE]));
            train.push(TimeSeries::with_label(vec![0.0, -0.0], 3));
            let test = Dataset::new("u_test");
            let path = cache_dir().join("unlabeled.bin");
            write_pair(&path, &(train.clone(), test.clone())).unwrap();
            let (train2, test2) = read_pair(&path).unwrap();
            assert_eq!(train2, train);
            assert_eq!(test2, test);
            // -0.0 must survive as -0.0 (bit-exact, not value-equal)
            assert_eq!(
                train2.series()[1].values()[1].to_bits(),
                (-0.0f64).to_bits()
            );
        });
    }

    #[test]
    fn by_name_wrapper_validates_names() {
        with_temp_cache(|_| {
            let options = ArchiveOptions::bounded(6, 48, 1);
            assert!(generate_by_name_scaled_cached("Wine", options).is_ok());
            assert!(generate_by_name_scaled_cached("Nope", options).is_err());
        });
    }
}
