//! The synthetic archive catalogue: 39 dataset specifications matching the
//! paper's Table 2 (name, number of classes, train/test sizes and series
//! length), each mapped to a generator family.

use crate::families::Family;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsg_ts::{Dataset, TimeSeries};

/// Specification of one synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name (matches the UCR archive name).
    pub name: &'static str,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of training instances (Table 2 orientation).
    pub n_train: usize,
    /// Number of test instances.
    pub n_test: usize,
    /// Series length ("Dim." in the paper's tables).
    pub length: usize,
    /// Generator family.
    pub family: Family,
}

/// The full catalogue: the 39 UCR datasets of the paper's Tables 2 and 3.
pub const ALL_DATASETS: [DatasetSpec; 39] = [
    DatasetSpec {
        name: "ArrowHead",
        n_classes: 3,
        n_train: 36,
        n_test: 175,
        length: 251,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "BeetleFly",
        n_classes: 2,
        n_train: 20,
        n_test: 20,
        length: 512,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "BirdChicken",
        n_classes: 2,
        n_train: 20,
        n_test: 20,
        length: 512,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "Computers",
        n_classes: 2,
        n_train: 250,
        n_test: 250,
        length: 720,
        family: Family::Device,
    },
    DatasetSpec {
        name: "DistalPhalanxOutlineAgeGroup",
        n_classes: 3,
        n_train: 139,
        n_test: 400,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "DistalPhalanxOutlineCorrect",
        n_classes: 2,
        n_train: 276,
        n_test: 600,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "DistalPhalanxTW",
        n_classes: 6,
        n_train: 139,
        n_test: 400,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "ECG5000",
        n_classes: 5,
        n_train: 500,
        n_test: 4500,
        length: 140,
        family: Family::Ecg,
    },
    DatasetSpec {
        name: "Earthquakes",
        n_classes: 2,
        n_train: 139,
        n_test: 322,
        length: 512,
        family: Family::Sensor,
    },
    DatasetSpec {
        name: "ElectricDevices",
        n_classes: 7,
        n_train: 8926,
        n_test: 7711,
        length: 96,
        family: Family::Device,
    },
    DatasetSpec {
        name: "FordA",
        n_classes: 2,
        n_train: 1320,
        n_test: 3601,
        length: 500,
        family: Family::Sensor,
    },
    DatasetSpec {
        name: "FordB",
        n_classes: 2,
        n_train: 810,
        n_test: 3636,
        length: 500,
        family: Family::Sensor,
    },
    DatasetSpec {
        name: "Ham",
        n_classes: 2,
        n_train: 109,
        n_test: 105,
        length: 431,
        family: Family::Spectro,
    },
    DatasetSpec {
        name: "HandOutlines",
        n_classes: 2,
        n_train: 370,
        n_test: 1000,
        length: 2709,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "Herring",
        n_classes: 2,
        n_train: 64,
        n_test: 64,
        length: 512,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "InsectWingbeatSound",
        n_classes: 11,
        n_train: 220,
        n_test: 1980,
        length: 256,
        family: Family::Sensor,
    },
    DatasetSpec {
        name: "LargeKitchenAppliances",
        n_classes: 3,
        n_train: 375,
        n_test: 375,
        length: 720,
        family: Family::Device,
    },
    DatasetSpec {
        name: "Meat",
        n_classes: 3,
        n_train: 60,
        n_test: 60,
        length: 448,
        family: Family::Spectro,
    },
    DatasetSpec {
        name: "MiddlePhalanxOutlineAgeGroup",
        n_classes: 3,
        n_train: 154,
        n_test: 400,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "MiddlePhalanxOutlineCorrect",
        n_classes: 2,
        n_train: 291,
        n_test: 600,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "MiddlePhalanxTW",
        n_classes: 6,
        n_train: 154,
        n_test: 399,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "PhalangesOutlinesCorrect",
        n_classes: 2,
        n_train: 1800,
        n_test: 858,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "Phoneme",
        n_classes: 39,
        n_train: 214,
        n_test: 1896,
        length: 1024,
        family: Family::Chaotic,
    },
    DatasetSpec {
        name: "ProximalPhalanxOutlineAgeGroup",
        n_classes: 3,
        n_train: 400,
        n_test: 205,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "ProximalPhalanxOutlineCorrect",
        n_classes: 2,
        n_train: 600,
        n_test: 291,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "ProximalPhalanxTW",
        n_classes: 6,
        n_train: 205,
        n_test: 400,
        length: 80,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "RefrigerationDevices",
        n_classes: 3,
        n_train: 375,
        n_test: 375,
        length: 720,
        family: Family::Device,
    },
    DatasetSpec {
        name: "ScreenType",
        n_classes: 3,
        n_train: 375,
        n_test: 375,
        length: 720,
        family: Family::Device,
    },
    DatasetSpec {
        name: "ShapeletSim",
        n_classes: 2,
        n_train: 20,
        n_test: 180,
        length: 500,
        family: Family::Shapelet,
    },
    DatasetSpec {
        name: "ShapesAll",
        n_classes: 60,
        n_train: 600,
        n_test: 600,
        length: 512,
        family: Family::Outline,
    },
    DatasetSpec {
        name: "SmallKitchenAppliances",
        n_classes: 3,
        n_train: 375,
        n_test: 375,
        length: 720,
        family: Family::Device,
    },
    DatasetSpec {
        name: "Strawberry",
        n_classes: 2,
        n_train: 370,
        n_test: 613,
        length: 235,
        family: Family::Spectro,
    },
    DatasetSpec {
        name: "ToeSegmentation1",
        n_classes: 2,
        n_train: 40,
        n_test: 228,
        length: 277,
        family: Family::Shapelet,
    },
    DatasetSpec {
        name: "ToeSegmentation2",
        n_classes: 2,
        n_train: 36,
        n_test: 130,
        length: 343,
        family: Family::Shapelet,
    },
    DatasetSpec {
        name: "UWaveGestureLibraryAll",
        n_classes: 8,
        n_train: 896,
        n_test: 3582,
        length: 945,
        family: Family::Motion,
    },
    DatasetSpec {
        name: "Wine",
        n_classes: 2,
        n_train: 57,
        n_test: 54,
        length: 234,
        family: Family::Spectro,
    },
    DatasetSpec {
        name: "WordSynonyms",
        n_classes: 25,
        n_train: 267,
        n_test: 638,
        length: 270,
        family: Family::Motion,
    },
    DatasetSpec {
        name: "Worms",
        n_classes: 5,
        n_train: 77,
        n_test: 181,
        length: 900,
        family: Family::Motion,
    },
    DatasetSpec {
        name: "WormsTwoClass",
        n_classes: 2,
        n_train: 77,
        n_test: 181,
        length: 900,
        family: Family::Motion,
    },
];

/// Options bounding the generated size of a dataset.
///
/// The paper-scale archive contains datasets with thousands of instances and
/// series of length 2709; generating and processing them at full size is
/// possible but slow, so the experiment binaries default to a bounded budget
/// and accept `--full` to lift it. The shape of each dataset (class count,
/// class balance, relative train/test ratio) is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchiveOptions {
    /// Maximum number of training instances.
    pub max_train: usize,
    /// Maximum number of test instances.
    pub max_test: usize,
    /// Maximum series length.
    pub max_length: usize,
    /// Base random seed (combined with the dataset name hash).
    pub seed: u64,
}

impl Default for ArchiveOptions {
    fn default() -> Self {
        ArchiveOptions::full(7)
    }
}

impl ArchiveOptions {
    /// Paper-scale generation (no size bounds).
    pub fn full(seed: u64) -> Self {
        ArchiveOptions {
            max_train: usize::MAX,
            max_test: usize::MAX,
            max_length: usize::MAX,
            seed,
        }
    }

    /// A bounded budget suitable for laptop-scale experiment runs.
    pub fn bounded(max_instances: usize, max_length: usize, seed: u64) -> Self {
        ArchiveOptions {
            max_train: max_instances,
            max_test: max_instances,
            max_length,
            seed,
        }
    }
}

/// Looks up a dataset specification by name.
pub fn spec_by_name(name: &str) -> Option<&'static DatasetSpec> {
    ALL_DATASETS.iter().find(|s| s.name == name)
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The class label of instance `i` in a split of `n_instances`: round-robin
/// over classes keeps every class represented even in heavily subsampled
/// datasets; a mild imbalance is added for larger ones so oversampling stays
/// exercised. Shared by eager generation and the instance-at-a-time
/// [`crate::source::SplitStream`] so the two are bit-identical by
/// construction.
pub(crate) fn instance_class(spec: &DatasetSpec, n_instances: usize, i: usize) -> usize {
    if n_instances >= spec.n_classes * 4 && i.is_multiple_of(7) {
        0
    } else {
        i % spec.n_classes
    }
}

/// The RNG generating a dataset's splits (train first, test continuing the
/// same keystream), seeded from the base seed and the dataset name.
pub(crate) fn split_rng(spec: &DatasetSpec, seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ name_hash(spec.name))
}

/// Effective `(n_train, n_test, length)` shape of a spec under a size
/// budget: the budget can never cut below one instance per class or below
/// 32 points per series.
pub fn effective_shape(spec: &DatasetSpec, options: ArchiveOptions) -> (usize, usize, usize) {
    (
        spec.n_train.min(options.max_train).max(spec.n_classes),
        spec.n_test.min(options.max_test).max(spec.n_classes),
        spec.length.min(options.max_length).max(32),
    )
}

fn generate_split<R: Rng + ?Sized>(
    spec: &DatasetSpec,
    n_instances: usize,
    length: usize,
    rng: &mut R,
    split_name: &str,
) -> Dataset {
    let mut dataset = Dataset::new(format!("{}_{}", spec.name, split_name));
    for i in 0..n_instances {
        let class = instance_class(spec, n_instances, i);
        let values = spec.family.generate(rng, class, spec.n_classes, length);
        dataset.push(TimeSeries::with_label(values, class));
    }
    dataset
}

/// Generates the `(train, test)` splits of a dataset at paper scale.
pub fn generate(spec: &DatasetSpec, seed: u64) -> (Dataset, Dataset) {
    generate_scaled(spec, ArchiveOptions::full(seed))
}

/// Generates the `(train, test)` splits of a dataset under a size budget.
pub fn generate_scaled(spec: &DatasetSpec, options: ArchiveOptions) -> (Dataset, Dataset) {
    let (n_train, n_test, length) = effective_shape(spec, options);
    let mut rng = split_rng(spec, options.seed);
    let train = generate_split(spec, n_train, length, &mut rng, "TRAIN");
    let test = generate_split(spec, n_test, length, &mut rng, "TEST");
    (train, test)
}

/// Generates a dataset by its UCR name at paper scale; `None`-safe variant of
/// [`generate`] returning an error string for unknown names.
pub fn generate_by_name(name: &str, seed: u64) -> Result<(Dataset, Dataset), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
    Ok(generate(spec, seed))
}

/// Generates a dataset by name under a size budget.
pub fn generate_by_name_scaled(
    name: &str,
    options: ArchiveOptions,
) -> Result<(Dataset, Dataset), String> {
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
    Ok(generate_scaled(spec, options))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_39_unique_datasets() {
        assert_eq!(ALL_DATASETS.len(), 39);
        let mut names = std::collections::HashSet::new();
        for spec in &ALL_DATASETS {
            assert!(names.insert(spec.name), "duplicate {}", spec.name);
            assert!(spec.n_classes >= 2);
            assert!(spec.n_train > 0 && spec.n_test > 0 && spec.length > 0);
        }
    }

    #[test]
    fn catalogue_matches_paper_shapes_spot_checks() {
        let arrow = spec_by_name("ArrowHead").unwrap();
        assert_eq!(
            (arrow.n_classes, arrow.n_train, arrow.n_test, arrow.length),
            (3, 36, 175, 251)
        );
        let ecg = spec_by_name("ECG5000").unwrap();
        assert_eq!(
            (ecg.n_classes, ecg.n_train, ecg.n_test, ecg.length),
            (5, 500, 4500, 140)
        );
        let phoneme = spec_by_name("Phoneme").unwrap();
        assert_eq!(phoneme.n_classes, 39);
        assert_eq!(phoneme.length, 1024);
        assert!(spec_by_name("DoesNotExist").is_none());
    }

    #[test]
    fn generated_shapes_match_spec() {
        let spec = spec_by_name("BeetleFly").unwrap();
        let (train, test) = generate(spec, 3);
        assert_eq!(train.len(), spec.n_train);
        assert_eq!(test.len(), spec.n_test);
        assert!(train.is_uniform_length());
        assert_eq!(train.max_length(), spec.length);
        assert_eq!(train.n_classes(), spec.n_classes);
        assert_eq!(test.n_classes(), spec.n_classes);
    }

    #[test]
    fn scaled_generation_respects_budget_and_classes() {
        let spec = spec_by_name("ElectricDevices").unwrap();
        let options = ArchiveOptions::bounded(40, 96, 1);
        let (train, test) = generate_scaled(spec, options);
        assert!(train.len() <= 40);
        assert!(test.len() <= 40);
        assert_eq!(train.max_length(), 96);
        assert_eq!(train.n_classes(), spec.n_classes);
        let shapes = spec_by_name("ShapesAll").unwrap();
        let (train, _) = generate_scaled(shapes, ArchiveOptions::bounded(50, 128, 1));
        // the budget can never cut below one instance per class
        assert!(train.len() >= shapes.n_classes);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = spec_by_name("Wine").unwrap();
        let (a_train, _) = generate(spec, 5);
        let (b_train, _) = generate(spec, 5);
        let (c_train, _) = generate(spec, 6);
        assert_eq!(a_train, b_train);
        assert_ne!(a_train, c_train);
    }

    #[test]
    fn different_datasets_differ_even_with_same_seed() {
        let (a, _) = generate_by_name("BeetleFly", 1).unwrap();
        let (b, _) = generate_by_name("BirdChicken", 1).unwrap();
        assert_ne!(a.series()[0].values(), b.series()[0].values());
        assert!(generate_by_name("Nope", 1).is_err());
    }

    #[test]
    fn every_dataset_generates_under_a_small_budget() {
        let options = ArchiveOptions::bounded(12, 64, 2);
        for spec in &ALL_DATASETS {
            let (train, test) = generate_scaled(spec, options);
            assert!(!train.is_empty(), "{}", spec.name);
            assert!(!test.is_empty(), "{}", spec.name);
            assert_eq!(train.n_classes(), spec.n_classes, "{}", spec.name);
            for s in train.series().iter().chain(test.series()) {
                assert!(s.values().iter().all(|v| v.is_finite()), "{}", spec.name);
            }
        }
    }
}
