//! Golden UCR fixture trees.
//!
//! A *fixture tree* is a self-contained directory in the real UCR archive
//! text format, generated deterministically from the synthetic catalogue via
//! the hardened `tsg_ts::io` writer. It exists so that the real-file
//! ingestion path can be exercised end-to-end — in the conformance suite at
//! the workspace root, in CI (`make_ucr_fixture` + `fig6_fig7_classifiers
//! --ucr-dir`), and on a laptop — without redistributing the actual UCR
//! data.
//!
//! The tree deliberately covers the layout variety found in the wild: the
//! nested (`root/Name/Name_TRAIN`) and flat (`root/Name_TRAIN.txt`) layouts,
//! the `.txt`/`.tsv`/`.csv`/extension-less file names, comma- and
//! tab-separated flavours, and (optionally) edge-case datasets — NaN-padded
//! variable-length rows, negative / non-contiguous class labels, and a lone
//! `_TRAIN` file without its `_TEST` partner.

use crate::archive::{generate_scaled, spec_by_name, ArchiveOptions};
use std::path::{Path, PathBuf};
use tsg_ts::io::{write_ucr_file_with, UcrSeparator};
use tsg_ts::{Dataset, TimeSeries};

/// Dataset name of the NaN-padded variable-length edge-case fixture.
pub const VARLEN_FIXTURE: &str = "FixtureVarLen";

/// Dataset name of the negative / non-contiguous label edge-case fixture.
pub const LABELS_FIXTURE: &str = "FixtureLabels";

/// Dataset name of the lone-`_TRAIN` (no `_TEST`) edge-case fixture.
pub const LONE_TRAIN_FIXTURE: &str = "FixtureLoneTrain";

/// What [`write_ucr_fixture_tree`] produced.
#[derive(Debug, Clone, Default)]
pub struct FixtureReport {
    /// Catalogue datasets written (in input order).
    pub datasets: Vec<String>,
    /// Every file created, relative to the tree root.
    pub files: Vec<PathBuf>,
}

/// The four layout/extension/separator combinations rotated across the
/// catalogue datasets, indexed by dataset position.
fn layout(index: usize) -> (bool, &'static str, UcrSeparator) {
    match index % 4 {
        0 => (true, "", UcrSeparator::Tab), // nested, extension-less, tabs (UEA style)
        1 => (false, ".txt", UcrSeparator::Comma),
        2 => (true, ".tsv", UcrSeparator::Tab),
        _ => (false, ".csv", UcrSeparator::Comma),
    }
}

fn split_path(root: &Path, name: &str, suffix: &str, nested: bool, ext: &str) -> PathBuf {
    let file = format!("{name}_{suffix}{ext}");
    if nested {
        root.join(name).join(file)
    } else {
        root.join(file)
    }
}

/// Writes a golden fixture tree under `root` containing the named catalogue
/// datasets (generated under `options`) plus, when `edge_cases` is set, the
/// three hand-built edge-case datasets. Returns the written files; errors
/// are strings suitable for a binary's stderr.
pub fn write_ucr_fixture_tree(
    root: &Path,
    names: &[&str],
    options: ArchiveOptions,
    edge_cases: bool,
) -> Result<FixtureReport, String> {
    let mut report = FixtureReport::default();
    std::fs::create_dir_all(root).map_err(|e| format!("cannot create {}: {e}", root.display()))?;
    for (index, name) in names.iter().enumerate() {
        let spec =
            spec_by_name(name).ok_or_else(|| format!("unknown catalogue dataset `{name}`"))?;
        let (train, test) = generate_scaled(spec, options);
        let (nested, ext, sep) = layout(index);
        for (split, dataset) in [("TRAIN", &train), ("TEST", &test)] {
            let path = split_path(root, name, split, nested, ext);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
            write_ucr_file_with(dataset, &path, sep)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            report
                .files
                .push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
        report.datasets.push(name.to_string());
    }
    if edge_cases {
        write_edge_cases(root, &mut report)?;
    }
    Ok(report)
}

/// Deterministic variable-length series: lengths differ per instance, so the
/// writer must pad with NaN and the reader must strip it again.
fn varlen_dataset(split: &str, n: usize) -> Dataset {
    let mut d = Dataset::new(format!("{VARLEN_FIXTURE}_{split}"));
    for i in 0..n {
        let label = i % 2;
        let len = 40 + (i * 7) % 24; // 40..64, varies per instance
        let values = (0..len)
            .map(|t| {
                let t = t as f64;
                if label == 0 {
                    (t * (0.21 + i as f64 * 0.015)).sin()
                } else {
                    (t * 0.4).cos() + ((t as u64 * 2654435761 + i as u64) % 17) as f64 * 0.05
                }
            })
            .collect();
        d.push(TimeSeries::with_label(values, label));
    }
    d
}

fn write_edge_cases(root: &Path, report: &mut FixtureReport) -> Result<(), String> {
    let write_raw = |path: PathBuf, content: &str, report: &mut FixtureReport| {
        std::fs::write(&path, content)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        report
            .files
            .push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        Ok::<(), String>(())
    };

    // NaN-padded variable-length rows (flat .txt, comma-separated)
    for (split, n) in [("TRAIN", 8), ("TEST", 5)] {
        let path = root.join(format!("{VARLEN_FIXTURE}_{split}.txt"));
        write_ucr_file_with(&varlen_dataset(split, n), &path, UcrSeparator::Comma)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        report
            .files
            .push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
    }

    // negative and non-contiguous raw labels (remapped 0..k by the reader)
    write_raw(
        root.join(format!("{LABELS_FIXTURE}_TRAIN.txt")),
        "5,0.5,0.75,1.0,0.5\n-2,1.5,1.25,1.0,0.75\n5,0.25,0.5,0.75,1.0\n9,2.0,1.5,1.0,0.5\n",
        report,
    )?;
    write_raw(
        root.join(format!("{LABELS_FIXTURE}_TEST.txt")),
        "-2,1.0,1.5,1.25,0.5\n9,1.75,1.5,1.25,1.0\n",
        report,
    )?;

    // a lone _TRAIN without its _TEST partner: the loader must treat the
    // pair as absent (and fall back), never crash
    write_raw(
        root.join(format!("{LONE_TRAIN_FIXTURE}_TRAIN.txt")),
        "1,0.5,0.25,0.125\n2,1.0,2.0,3.0\n",
        report,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{DatasetSource, SourceKind, Split};
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_root() -> PathBuf {
        // temp_dir() is a getenv; hold the crate's env lock so it cannot
        // race a sibling test's setenv (see TEST_ENV_LOCK)
        let _guard = crate::cache::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "tsg-fixture-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fixture_tree_is_resolvable_as_real_for_every_layout() {
        let root = temp_root();
        let options = ArchiveOptions::bounded(6, 48, 5);
        // four datasets: one per layout/extension/separator combination
        let names = ["BeetleFly", "Wine", "Herring", "Meat"];
        let report = write_ucr_fixture_tree(&root, &names, options, true).unwrap();
        assert_eq!(report.datasets.len(), 4);
        // 4 datasets × 2 splits + 2 varlen + 2 labels + 1 lone train
        assert_eq!(report.files.len(), 13);
        let source = DatasetSource::synthetic(options).with_ucr_dir(&root);
        for name in names {
            let resolved = source.resolve(name).unwrap();
            assert_eq!(resolved.kind(), SourceKind::Real, "{name}");
            let expected = DatasetSource::synthetic(options).resolve(name).unwrap();
            assert_eq!(resolved.train.series(), expected.train.series(), "{name}");
            assert_eq!(resolved.test.series(), expected.test.series(), "{name}");
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn edge_case_fixtures_have_the_advertised_shapes() {
        let root = temp_root();
        let options = ArchiveOptions::bounded(6, 48, 5);
        write_ucr_fixture_tree(&root, &[], options, true).unwrap();
        let source = DatasetSource::synthetic(options).with_ucr_dir(&root);

        let varlen = source.resolve(VARLEN_FIXTURE).unwrap();
        assert_eq!(varlen.kind(), SourceKind::Real);
        assert!(!varlen.train.is_uniform_length(), "padding must vary");
        let stream = source.open_split(VARLEN_FIXTURE, Split::Train).unwrap();
        assert_eq!(stream.max_length(), varlen.train.max_length());

        let labels = source.resolve(LABELS_FIXTURE).unwrap();
        // raw labels 5, -2, 5, 9 remap to 0, 1, 0, 2
        let got: Vec<usize> = labels.train.labels_required().unwrap();
        assert_eq!(got, vec![0, 1, 0, 2]);
        // TEST lists -2, 9 first — the shared table keeps their training
        // indices (1, 2), not a per-file first-appearance remap (0, 1)
        assert_eq!(labels.test.labels_required().unwrap(), vec![1, 2]);

        // the lone _TRAIN is not a pair: not in the catalogue either, so it
        // resolves to an unknown-dataset error rather than a crash
        assert!(source.resolve(LONE_TRAIN_FIXTURE).is_err());
        std::fs::remove_dir_all(&root).ok();
    }
}
