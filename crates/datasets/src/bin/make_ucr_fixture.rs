//! Generates a golden UCR fixture tree on disk.
//!
//! The tree is real-UCR-format text written from the synthetic catalogue,
//! rotating through nested/flat layouts, `.txt`/`.tsv`/`.csv`/extension-less
//! names and comma/tab separators, plus NaN-padded variable-length and
//! label-edge-case datasets. CI uses it to drive the experiment binaries
//! end-to-end through the real-file ingestion path (`--ucr-dir`):
//!
//! ```text
//! cargo run -p tsg_datasets --bin make_ucr_fixture -- \
//!     --out target/ucr-fixture --datasets BeetleFly,Wine,Herring \
//!     --max-instances 12 --max-length 96 --seed 7
//! cargo run -p tsg_bench --bin fig6_fig7_classifiers -- \
//!     --quick --ucr-dir target/ucr-fixture --datasets BeetleFly,Wine,Herring
//! ```

use std::path::PathBuf;
use tsg_datasets::archive::ArchiveOptions;
use tsg_datasets::fixture::write_ucr_fixture_tree;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut datasets = vec![
        "BeetleFly".to_string(),
        "Wine".to_string(),
        "Herring".to_string(),
    ];
    let mut max_instances = 12usize;
    let mut max_length = 96usize;
    let mut seed = 7u64;
    let mut edge_cases = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    out = Some(PathBuf::from(v));
                    i += 1;
                }
            }
            "--datasets" => {
                if let Some(v) = args.get(i + 1) {
                    datasets = v.split(',').map(|s| s.trim().to_string()).collect();
                    i += 1;
                }
            }
            "--max-instances" => {
                if let Some(v) = args.get(i + 1) {
                    max_instances = v.parse().unwrap_or(max_instances);
                    i += 1;
                }
            }
            "--max-length" => {
                if let Some(v) = args.get(i + 1) {
                    max_length = v.parse().unwrap_or(max_length);
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1) {
                    seed = v.parse().unwrap_or(seed);
                    i += 1;
                }
            }
            "--no-edge-cases" => edge_cases = false,
            other => eprintln!("ignoring unknown flag `{other}`"),
        }
        i += 1;
    }
    let Some(out) = out else {
        eprintln!(
            "usage: make_ucr_fixture --out DIR [--datasets a,b,c] [--max-instances N] \
             [--max-length N] [--seed N] [--no-edge-cases]"
        );
        std::process::exit(2);
    };
    let names: Vec<&str> = datasets.iter().map(String::as_str).collect();
    let options = ArchiveOptions {
        max_train: max_instances,
        max_test: max_instances,
        max_length,
        seed,
    };
    match write_ucr_fixture_tree(&out, &names, options, edge_cases) {
        Ok(report) => {
            for file in &report.files {
                println!("  wrote {}", out.join(file).display());
            }
            println!(
                "fixture tree at {} ({} catalogue datasets, {} files, seed {seed})",
                out.display(),
                report.datasets.len(),
                report.files.len()
            );
        }
        Err(e) => {
            eprintln!("fixture generation failed: {e}");
            std::process::exit(1);
        }
    }
}
