//! Property tests: the pool is a drop-in replacement for serial iteration.
//!
//! For any input length (including lengths not divisible by the internal
//! chunk size), any thread count and any pure closure, `ThreadPool::map`,
//! `ThreadPool::try_map` and the free-function wrappers must return exactly
//! the serial result, in input order.

use proptest::prelude::*;
use tsg_parallel::{parallel_map, parallel_try_map, ThreadPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_map_equals_serial_map(
        values in prop::collection::vec(-1.0e6..1.0e6f64, 0..257),
        threads in 1usize..17,
    ) {
        let f = |x: &f64| (x * 1.5).sin() + x.abs().sqrt();
        let expected: Vec<f64> = values.iter().map(f).collect();
        let pooled = ThreadPool::new(threads).map(&values, f);
        // bit-identical, not approximately equal
        let as_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        prop_assert_eq!(as_bits(&pooled), as_bits(&expected));
        prop_assert_eq!(as_bits(&parallel_map(&values, threads, f)), as_bits(&expected));
    }

    #[test]
    fn pool_try_map_equals_serial_on_success(
        values in prop::collection::vec(0u64..1_000_000, 0..211),
        threads in 1usize..13,
    ) {
        let f = |x: &u64| Ok::<u64, String>(x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let expected: Vec<u64> = values.iter().map(|x| f(x).unwrap()).collect();
        let pooled = ThreadPool::new(threads).try_map(&values, f);
        prop_assert_eq!(pooled.as_deref(), Ok(&expected[..]));
        let free = parallel_try_map(&values, threads, f);
        prop_assert_eq!(free.as_deref(), Ok(&expected[..]));
    }

    #[test]
    fn pool_try_map_always_errors_when_an_item_fails(
        len in 1usize..151,
        bad_offset in 0usize..151,
        threads in 1usize..9,
    ) {
        let bad = bad_offset % len;
        let values: Vec<usize> = (0..len).collect();
        let out: Result<Vec<usize>, usize> = ThreadPool::new(threads)
            .try_map(&values, |&x| if x == bad { Err(x) } else { Ok(x) });
        // scheduling decides which error surfaces first; with a single
        // failing item the value is fully determined
        prop_assert_eq!(out, Err(bad));
    }

    #[test]
    fn thread_count_is_invisible_in_the_output(
        values in prop::collection::vec(-1.0e3..1.0e3f64, 1..128),
        a in 1usize..9,
        b in 1usize..9,
    ) {
        let f = |x: &f64| (x.exp_m1() * 0.25).to_bits();
        let left = ThreadPool::new(a).map(&values, f);
        let right = ThreadPool::new(b).map(&values, f);
        prop_assert_eq!(left, right);
    }
}
