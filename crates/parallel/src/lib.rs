//! # tsg-parallel — the workspace's shared worker pool
//!
//! Every compute-heavy stage of the pipeline is embarrassingly parallel
//! across independent units — series during feature extraction, candidates
//! during grid search and stacking selection, trees during random-forest
//! fitting. This crate provides the one [`ThreadPool`] all of them share.
//!
//! The pool is built on `std::thread::scope` (no unsafe, no external
//! dependencies): a call to [`ThreadPool::map`] / [`ThreadPool::try_map`]
//! spawns up to `n_threads` scoped workers which *self-schedule* over the
//! input — each worker repeatedly claims the next unprocessed chunk from an
//! atomic cursor until the input is exhausted. This dynamic chunking keeps
//! all workers busy even when per-item cost is highly skewed (long series
//! next to short ones, deep grids next to stumps), unlike a one-shot even
//! split where the unluckiest worker determines the wall time.
//!
//! Results are always returned in input order, and closures receive no
//! information about which worker runs them, so for pure closures the output
//! is **bit-identical for every thread count** — the property pinned down by
//! `tests/determinism.rs` at the workspace root.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cap on the *derived* default worker count. Feature extraction saturates
/// memory bandwidth around 8 workers on typical hardware; beyond that extra
/// threads only add scheduling overhead. An explicit [`THREADS_ENV_VAR`]
/// override or an explicit `ThreadPool::new(n)` is not capped.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Environment variable overriding the default worker count process-wide.
pub const THREADS_ENV_VAR: &str = "TSC_MVG_THREADS";

/// Chunks each worker's share of the input is split into, so faster workers
/// can steal leftover chunks from slower ones.
const CHUNKS_PER_THREAD: usize = 4;

/// The default worker count: the `TSC_MVG_THREADS` environment variable if
/// set to a positive integer (uncapped — an explicit override is trusted),
/// otherwise the machine's available parallelism capped at
/// [`MAX_DEFAULT_THREADS`].
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Resolves a caller-supplied thread count: `0` means "use the process-wide
/// default" ([`default_threads`]), anything else is taken literally.
pub fn resolve_threads(n_threads: usize) -> usize {
    if n_threads == 0 {
        default_threads()
    } else {
        n_threads
    }
}

/// A scoped-thread worker pool with dynamic chunking.
///
/// The pool itself is a small value (it holds only its thread budget);
/// workers are scoped threads spawned per call and joined before the call
/// returns, so borrowed inputs need no `'static` bound. Use
/// [`ThreadPool::global`] for the process-wide default pool.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    n_threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `n_threads` workers; `0` resolves to
    /// [`default_threads`].
    pub fn new(n_threads: usize) -> Self {
        ThreadPool {
            n_threads: resolve_threads(n_threads),
        }
    }

    /// The process-wide default pool. Its size is fixed on first use from
    /// [`default_threads`] (honouring `TSC_MVG_THREADS`).
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(0))
    }

    /// Number of workers this pool runs.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Hands a `std::thread::scope` spawner plus this pool's thread budget to
    /// `f`, for callers whose parallel structure does not fit `map`.
    pub fn scope<'env, T, F>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>, usize) -> T,
    {
        std::thread::scope(|s| f(s, self.n_threads))
    }

    /// Applies `f` to every element of `items` on the pool, preserving input
    /// order. A single worker (or a single item) runs inline on the caller.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_map(items, |item| Ok::<R, std::convert::Infallible>(f(item))) {
            Ok(results) => results,
            Err(never) => match never {},
        }
    }

    /// Fallible [`ThreadPool::map`]: stops scheduling new work as soon as any
    /// item fails and returns one of the observed errors (the one with the
    /// lowest input index among those actually evaluated).
    pub fn try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let threads = self.n_threads.clamp(1, n);
        if threads == 1 {
            return items.iter().map(&f).collect();
        }
        let chunk_size = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
        let n_chunks = n.div_ceil(chunk_size);
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        // per-chunk result slots; each chunk is claimed by exactly one worker,
        // so the mutexes are uncontended and only make the sharing safe
        let slots: Vec<Mutex<Vec<R>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
        let first_error: Mutex<Option<(usize, E)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    while !abort.load(Ordering::Relaxed) {
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= n_chunks {
                            break;
                        }
                        let start = chunk * chunk_size;
                        let end = (start + chunk_size).min(n);
                        let mut out = Vec::with_capacity(end - start);
                        for (offset, item) in items[start..end].iter().enumerate() {
                            match f(item) {
                                Ok(r) => out.push(r),
                                Err(e) => {
                                    abort.store(true, Ordering::Relaxed);
                                    let mut slot = first_error.lock().unwrap();
                                    let index = start + offset;
                                    match &*slot {
                                        Some((prev, _)) if *prev <= index => {}
                                        _ => *slot = Some((index, e)),
                                    }
                                    return;
                                }
                            }
                        }
                        *slots[chunk].lock().unwrap() = out;
                    }
                });
            }
        });
        if let Some((_, e)) = first_error.into_inner().unwrap() {
            return Err(e);
        }
        let mut results = Vec::with_capacity(n);
        for slot in slots {
            results.append(&mut slot.into_inner().unwrap());
        }
        debug_assert_eq!(results.len(), n);
        Ok(results)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new(0)
    }
}

/// Applies `f` to every element of `items` using up to `n_threads` workers,
/// preserving order (`0` = process default). Convenience wrapper over
/// [`ThreadPool::map`].
pub fn parallel_map<T, R, F>(items: &[T], n_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ThreadPool::new(n_threads).map(items, f)
}

/// Fallible [`parallel_map`]: propagates an error instead of panicking.
pub fn parallel_try_map<T, R, E, F>(items: &[T], n_threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    ThreadPool::new(n_threads).try_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate `TSC_MVG_THREADS` (environment variables
    /// are process-wide and the test harness is multi-threaded).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Sets the override for the duration of `f`, restoring the previous
    /// value afterwards even if the assertion panics.
    fn with_env_override<T>(value: Option<&str>, f: impl FnOnce() -> T) -> T {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        let previous = std::env::var(THREADS_ENV_VAR).ok();
        match value {
            Some(v) => std::env::set_var(THREADS_ENV_VAR, v),
            None => std::env::remove_var(THREADS_ENV_VAR),
        }
        let restore = Restore(previous);
        struct Restore(Option<String>);
        impl Drop for Restore {
            fn drop(&mut self) {
                match &self.0 {
                    Some(v) => std::env::set_var(THREADS_ENV_VAR, v),
                    None => std::env::remove_var(THREADS_ENV_VAR),
                }
            }
        }
        let result = f();
        drop(restore);
        result
    }

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 7, 16] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x * x),
                expected,
                "threads = {threads}"
            );
            assert_eq!(
                ThreadPool::new(threads).map(&items, |&x| x * x),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 16, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn lengths_not_divisible_by_chunk_size() {
        // with 2 threads and CHUNKS_PER_THREAD = 4 the chunk size for 101
        // items is ceil(101 / 8) = 13; 101 = 7 * 13 + 10 exercises the
        // short final chunk
        let items: Vec<usize> = (0..101).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(ThreadPool::new(2).map(&items, |&x| x + 1), expected);
    }

    #[test]
    fn try_map_collects_successes() {
        let items: Vec<i32> = (0..50).collect();
        let out: Result<Vec<i32>, String> = ThreadPool::new(3).try_map(&items, |&x| Ok(x * 2));
        assert_eq!(out.unwrap(), (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_propagates_error_for_every_thread_count() {
        let items: Vec<i32> = (0..64).collect();
        for threads in [1, 2, 7] {
            let out: Result<Vec<i32>, String> = ThreadPool::new(threads).try_map(&items, |&x| {
                if x == 40 {
                    Err(format!("item {x} failed"))
                } else {
                    Ok(x)
                }
            });
            assert_eq!(out.unwrap_err(), "item 40 failed", "threads = {threads}");
        }
    }

    #[test]
    fn scope_exposes_thread_budget() {
        let pool = ThreadPool::new(3);
        let budget = pool.scope(|_, n_threads| n_threads);
        assert_eq!(budget, 3);
    }

    #[test]
    fn global_pool_is_shared_and_positive() {
        // ThreadPool::global() may read the env var on first init; hold the
        // lock so sibling tests' set_var calls cannot race it
        with_env_override(None, || {
            let a = ThreadPool::global();
            let b = ThreadPool::global();
            assert!(std::ptr::eq(a, b));
            assert!(a.n_threads() >= 1);
        });
    }

    #[test]
    fn default_thread_count_positive_and_capped() {
        with_env_override(None, || {
            let n = default_threads();
            assert!((1..=MAX_DEFAULT_THREADS).contains(&n));
        });
    }

    #[test]
    fn env_override_respected_and_restored() {
        with_env_override(Some("3"), || assert_eq!(default_threads(), 3));
        // the override is trusted beyond the derived cap
        with_env_override(Some("24"), || assert_eq!(default_threads(), 24));
        with_env_override(Some("24"), || assert_eq!(resolve_threads(0), 24));
        with_env_override(Some("24"), || assert_eq!(resolve_threads(2), 2));
    }

    #[test]
    fn invalid_env_override_ignored() {
        for bad in ["0", "-4", "lots", ""] {
            with_env_override(Some(bad), || {
                let n = default_threads();
                assert!((1..=MAX_DEFAULT_THREADS).contains(&n), "override {bad:?}");
            });
        }
    }

    #[test]
    fn zero_threads_means_process_default() {
        with_env_override(Some("2"), || {
            assert_eq!(ThreadPool::new(0).n_threads(), 2);
            let items: Vec<u64> = (0..40).collect();
            let expected: Vec<u64> = items.iter().map(|&x| x + 7).collect();
            assert_eq!(parallel_map(&items, 0, |&x| x + 7), expected);
            let tried: Result<Vec<u64>, std::convert::Infallible> =
                parallel_try_map(&items, 0, |&x| Ok(x + 7));
            assert_eq!(tried.unwrap(), expected);
        });
    }

    #[test]
    fn resolve_threads_passthrough() {
        assert_eq!(resolve_threads(5), 5);
        // resolve_threads(0) reads the env var; hold the lock against
        // sibling tests' set_var calls
        with_env_override(None, || assert!(resolve_threads(0) >= 1));
    }
}
