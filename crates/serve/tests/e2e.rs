//! End-to-end serving test: fit a model through the wire API, fire
//! concurrent classify requests from multiple client threads, and assert the
//! predictions are bit-identical to direct [`MvgClassifier::predict`] calls
//! — the serving-path extension of the workspace determinism harness.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;
use tsg_core::MvgClassifier;
use tsg_datasets::archive::ArchiveOptions;
use tsg_serve::batcher::BatchConfig;
use tsg_serve::http::roundtrip_json;
use tsg_serve::json::Json;
use tsg_serve::registry::config_named;
use tsg_serve::server::{ServeConfig, Server};

const DATASET: &str = "BeetleFly";
const SEED: u64 = 7;
const CONFIG: &str = "uvg-fast";

/// Points the dataset cache at a per-process temp directory so the test
/// neither depends on nor litters the workspace (integration tests run with
/// the package directory as cwd).
fn isolate_dataset_cache() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let dir = std::env::temp_dir().join(format!("tsg-serve-e2e-cache-{}", std::process::id()));
        std::env::set_var(tsg_datasets::cache::CACHE_DIR_ENV, dir);
    });
}

fn archive_options() -> ArchiveOptions {
    ArchiveOptions::bounded(16, 96, SEED)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn call(&mut self, method: &str, path: &str, body: Option<&Json>) -> (u16, Json) {
        roundtrip_json(&mut self.stream, &mut self.reader, method, path, body).expect("roundtrip")
    }
}

/// Starts a server on an ephemeral port; returns its address and a closure
/// handle for shutdown via the wire.
fn start_server() -> (String, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        n_threads: 2,
        batch: BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(5),
            queue_depth: 128,
        },
        archive: archive_options(),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The reference: the identical model fitted directly against the identical
/// (cached) training split.
fn direct_classifier() -> MvgClassifier {
    let (train, _test) =
        tsg_datasets::cache::generate_by_name_scaled_cached(DATASET, archive_options()).unwrap();
    let mut clf = MvgClassifier::new(config_named(CONFIG, SEED, 1).unwrap());
    clf.fit(&train).unwrap();
    clf
}

fn series_json(series: &tsg_ts::TimeSeries) -> Json {
    Json::nums(series.values().iter().copied())
}

#[test]
fn concurrent_serving_is_bit_identical_to_direct_classification() {
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();
    let mut admin = Client::connect(&addr);

    // health before any model exists
    let (status, health) = admin.call("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("models").unwrap().as_usize(), Some(0));

    // classify against a missing model → 404
    let probe = Json::obj(vec![("series", Json::parse("[[1, 2, 3]]").unwrap())]);
    let (status, _) = admin.call("POST", "/models/nope/classify", Some(&probe));
    assert_eq!(status, 404);

    // fit through the wire API
    let fit_body = Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str(CONFIG.into())),
        ("seed", Json::Num(SEED as f64)),
        ("max_instances", Json::Num(16.0)),
        ("max_length", Json::Num(96.0)),
    ]);
    let (status, info) = admin.call("POST", "/models/demo/fit", Some(&fit_body));
    assert_eq!(status, 200, "fit failed: {info}");
    assert_eq!(info.get("n_classes").unwrap().as_usize(), Some(2));

    // the reference model, fitted directly from the identical training split
    let direct = direct_classifier();
    assert_eq!(
        direct.feature_names().len(),
        info.get("n_features").unwrap().as_usize().unwrap(),
        "served model extracted a different feature set"
    );
    let (_train, test) =
        tsg_datasets::cache::generate_by_name_scaled_cached(DATASET, archive_options()).unwrap();
    let expected = direct.predict(&test).unwrap();
    let expected_proba = direct.predict_proba(&test).unwrap();

    // ≥4 client threads, each with its own connection, firing concurrent
    // requests that partition the test split
    const CLIENTS: usize = 5;
    let chunks: Vec<Vec<usize>> = (0..CLIENTS)
        .map(|c| {
            (0..test.len())
                .filter(|i| i % CLIENTS == c)
                .collect::<Vec<_>>()
        })
        .collect();
    let results: Vec<Vec<(usize, usize, Vec<f64>)>> = std::thread::scope(|scope| {
        chunks
            .iter()
            .map(|indices| {
                let addr = addr.clone();
                let test = &test;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr);
                    let mut out = Vec::new();
                    for &i in indices {
                        let body = Json::obj(vec![
                            ("series", Json::Arr(vec![series_json(&test.series()[i])])),
                            ("proba", Json::Bool(true)),
                        ]);
                        let (status, reply) =
                            client.call("POST", "/models/demo/classify", Some(&body));
                        assert_eq!(status, 200, "classify failed: {reply}");
                        let prediction = reply.get("predictions").unwrap().as_array().unwrap()[0]
                            .as_usize()
                            .unwrap();
                        let proba: Vec<f64> =
                            reply.get("probabilities").unwrap().as_array().unwrap()[0]
                                .as_array()
                                .unwrap()
                                .iter()
                                .map(|v| v.as_f64().unwrap())
                                .collect();
                        assert!(reply.get("batch_size").unwrap().as_usize().unwrap() >= 1);
                        out.push((i, prediction, proba));
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let mut seen = 0usize;
    for chunk in results {
        for (i, prediction, proba) in chunk {
            assert_eq!(
                prediction, expected[i],
                "served prediction diverged for test series {i}"
            );
            // probabilities travelled through JSON (shortest round-trip f64
            // formatting), so bit-equality must hold end to end
            assert_eq!(
                proba.len(),
                expected_proba[i].len(),
                "probability width diverged for series {i}"
            );
            for (a, b) in proba.iter().zip(&expected_proba[i]) {
                assert_eq!(a.to_bits(), b.to_bits(), "probability bits diverged");
            }
            seen += 1;
        }
    }
    assert_eq!(seen, test.len());

    // one multi-series request must also match (batch path with n > 1)
    let body = Json::obj(vec![(
        "series",
        Json::Arr(test.series().iter().map(series_json).collect()),
    )]);
    let (status, reply) = admin.call("POST", "/models/demo/classify", Some(&body));
    assert_eq!(status, 200);
    let all: Vec<usize> = reply
        .get("predictions")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_usize().unwrap())
        .collect();
    assert_eq!(all, expected);

    // observability: metrics reflect the traffic that just happened
    let (status, models) = admin.call("GET", "/models", None);
    assert_eq!(status, 200);
    assert_eq!(models.get("models").unwrap().as_array().unwrap().len(), 1);
    let mut metrics_client = Client::connect(&addr);
    tsg_serve::http::send_request(&mut metrics_client.stream, "GET", "/metrics", None).unwrap();
    let (status, body) = tsg_serve::http::read_response(&mut metrics_client.reader).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let series_total = test.len() * 2; // partitioned pass + full-batch pass
                                       // match full lines (trailing newline) so e.g. a count of 320 cannot
                                       // satisfy an expected 32 by prefix
    assert!(
        text.contains(&format!("tsg_serve_classify_series_total {series_total}\n")),
        "unexpected series total in metrics:\n{text}"
    );
    assert!(text.contains("tsg_serve_batch_size_count"), "{text}");
    assert!(text.contains("tsg_serve_models 1\n"), "{text}");

    // graceful shutdown over the wire
    let (status, _) = admin.call("POST", "/shutdown", None);
    assert_eq!(status, 200);
    server_handle.join().expect("server thread panicked");
}

#[test]
fn malformed_wire_requests_get_4xx_and_the_connection_survives() {
    use std::io::Write;
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();
    let mut client = Client::connect(&addr);

    // a real model to aim the malformed payloads at
    let fit = Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str(CONFIG.into())),
        ("max_instances", Json::Num(8.0)),
        ("max_length", Json::Num(64.0)),
    ]);
    let (status, _) = client.call("POST", "/models/m/fit", Some(&fit));
    assert_eq!(status, 200);

    // syntactically broken JSON bodies, correctly framed: each must come
    // back as a 4xx wire error — never a panic, a hang, or a dropped
    // connection — and the SAME connection keeps serving afterwards
    for bad_body in [
        "{",                           // truncated object
        "[1, 2,",                      // truncated array
        "{\"series\": [[1, 2]]",       // missing close brace
        "\u{0}\u{1}garbage",           // not JSON at all
        "{\"s\": \"\\ud800\"}",        // unpaired surrogate escape
        "{\"s\": \"unterminated",      // unterminated string
        "{\"a\": nul}",                // broken literal
        "{\"deep\": [[[[[[[[[[[[[[[[", // truncated nesting
    ] {
        let request = format!(
            "POST /models/m/classify HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            bad_body.len(),
            bad_body
        );
        client.stream.write_all(request.as_bytes()).expect("write");
        let (status, _) = tsg_serve::http::read_response(&mut client.reader).expect("response");
        assert!(
            (400..500).contains(&status),
            "body {bad_body:?} got status {status}"
        );
        // same connection, next request still works
        let (status, health) = client.call("GET", "/healthz", None);
        assert_eq!(status, 200, "connection died after {bad_body:?}: {health}");
    }

    // a well-formed classify on the very same connection still succeeds
    let ok = Json::obj(vec![(
        "series",
        Json::parse("[[1, 2, 3, 2, 1, 2, 3, 2]]").unwrap(),
    )]);
    let (status, reply) = client.call("POST", "/models/m/classify", Some(&ok));
    assert_eq!(status, 200, "{reply}");

    // a torn HTTP request line gets a 400 before the connection closes...
    let mut torn = Client::connect(&addr);
    torn.stream
        .write_all(b"NOT-EVEN-HTTP\r\n\r\n")
        .expect("write");
    let (status, _) = tsg_serve::http::read_response(&mut torn.reader).expect("response");
    assert_eq!(status, 400);

    // ...and the server as a whole keeps serving new connections
    let mut fresh = Client::connect(&addr);
    let (status, reply) = fresh.call("POST", "/models/m/classify", Some(&ok));
    assert_eq!(status, 200, "{reply}");

    let (status, _) = fresh.call("POST", "/shutdown", None);
    assert_eq!(status, 200);
    server_handle.join().expect("server thread panicked");
}

/// Reads one response off a raw client and returns the `Connection` header
/// alongside the status and body.
fn read_with_connection(client: &mut Client) -> (u16, String, Vec<u8>) {
    let (status, headers, body) =
        tsg_serve::http::read_response_with_headers(&mut client.reader).expect("response");
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
        .unwrap_or_default();
    (status, connection, body)
}

/// Whether the server closed the connection (EOF on the next read).
fn connection_closed(client: &mut Client) -> bool {
    use std::io::Read;
    client
        .stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut byte = [0u8; 1];
    matches!(client.reader.read(&mut byte), Ok(0))
}

#[test]
fn wire_protocol_regressions() {
    use std::io::Write;
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();

    // regression 1: an HTTP/1.0 request without a Connection header must be
    // answered with `Connection: close` and an actual close — the old server
    // discarded the version and held the connection open forever
    let mut http10 = Client::connect(&addr);
    http10
        .stream
        .write_all(b"GET /healthz HTTP/1.0\r\n\r\n")
        .expect("write");
    let (status, connection, _) = read_with_connection(&mut http10);
    assert_eq!(status, 200);
    assert_eq!(connection, "close", "HTTP/1.0 must default to close");
    assert!(connection_closed(&mut http10), "socket must actually close");

    // an HTTP/1.0 client explicitly asking for keep-alive gets it
    let mut http10_ka = Client::connect(&addr);
    http10_ka
        .stream
        .write_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        .expect("write");
    let (status, connection, _) = read_with_connection(&mut http10_ka);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    let (status, _) = http10_ka.call("GET", "/healthz", None);
    assert_eq!(status, 200, "opted-in keep-alive connection must survive");

    // regression 2: a body over MAX_BODY_BYTES is 413 Payload Too Large,
    // not a generic 400 — and the connection closes (the body bytes that
    // may follow would desync the stream)
    let mut big = Client::connect(&addr);
    let declared = tsg_serve::http::MAX_BODY_BYTES + 1;
    big.stream
        .write_all(
            format!("POST /models/m/classify HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n")
                .as_bytes(),
        )
        .expect("write");
    let (status, connection, _) = read_with_connection(&mut big);
    assert_eq!(status, 413, "oversized body must map to 413");
    assert_eq!(connection, "close");
    assert!(connection_closed(&mut big));

    // regression 3: conflicting duplicate Content-Length headers are the
    // request-smuggling foothold — reject as 400 and close
    let mut dup = Client::connect(&addr);
    dup.stream
        .write_all(b"POST /healthz HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 16\r\n\r\nabcdabcdabcdabcd")
        .expect("write");
    let (status, connection, _) = read_with_connection(&mut dup);
    assert_eq!(status, 400, "conflicting Content-Length must be rejected");
    assert_eq!(connection, "close");
    assert!(connection_closed(&mut dup));

    // regression 4: the shutdown response must honestly say close — the old
    // server computed keep-alive before routing set the shutdown flag, then
    // silently dropped the connection it had just promised to keep open
    let mut admin = Client::connect(&addr);
    tsg_serve::http::send_request(&mut admin.stream, "POST", "/shutdown", None).expect("send");
    let (status, connection, _) = read_with_connection(&mut admin);
    assert_eq!(status, 200);
    assert_eq!(
        connection, "close",
        "shutdown response must not promise keep-alive"
    );
    assert!(connection_closed(&mut admin));
    server_handle.join().expect("server thread panicked");
}

#[test]
fn pipelined_requests_get_in_order_responses() {
    use std::io::Write;
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();
    let mut admin = Client::connect(&addr);

    let fit = Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str(CONFIG.into())),
        ("seed", Json::Num(SEED as f64)),
        ("max_instances", Json::Num(8.0)),
        ("max_length", Json::Num(64.0)),
    ]);
    let (status, _) = admin.call("POST", "/models/pipe/fit", Some(&fit));
    assert_eq!(status, 200);

    // one write carrying five back-to-back requests. The mix matters: the
    // classify requests complete asynchronously on the batch dispatcher
    // while /healthz and the 404 answer inline, so in-order delivery proves
    // the reorder stage, not accidental timing.
    let classify_a = Json::obj(vec![(
        "series",
        Json::parse("[[1, 2, 3, 2, 1, 2, 3, 2]]").unwrap(),
    )])
    .write();
    let classify_b = Json::obj(vec![(
        "series",
        Json::parse("[[5, 1, 5, 1, 5, 1, 5, 1]]").unwrap(),
    )])
    .write();
    let mut wire = Vec::new();
    for (method, path, body) in [
        ("POST", "/models/pipe/classify", Some(classify_a.as_str())),
        ("GET", "/healthz", None),
        ("GET", "/definitely-not-a-route", None),
        ("POST", "/models/pipe/classify", Some(classify_b.as_str())),
        ("GET", "/models", None),
    ] {
        let body = body.unwrap_or_default();
        wire.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    let mut client = Client::connect(&addr);
    client.stream.write_all(&wire).expect("pipelined write");

    let expectations: [(u16, &str); 5] = [
        (200, "predictions"),
        (200, "uptime_seconds"),
        (404, "no such route"),
        (200, "predictions"),
        (200, "models"),
    ];
    for (i, (want_status, want_fragment)) in expectations.iter().enumerate() {
        let (status, connection, body) = read_with_connection(&mut client);
        let text = String::from_utf8_lossy(&body).to_string();
        assert_eq!(status, *want_status, "response {i} out of order: {text}");
        assert!(
            text.contains(want_fragment),
            "response {i} body mismatch (expected `{want_fragment}`): {text}"
        );
        assert_eq!(connection, "keep-alive", "response {i}");
    }
    // the connection is still usable after the burst
    let (status, _) = client.call("GET", "/healthz", None);
    assert_eq!(status, 200);

    // every request in the burst was born with its own trace id, even though
    // all five were parsed back-to-back out of a single read — plus the fit
    // and the follow-up healthz, all distinct
    let (status, recorder) = client.call("GET", "/debug/traces", None);
    assert_eq!(status, 200, "{recorder}");
    let traces = recorder.get("traces").unwrap().as_array().unwrap();
    let ids: Vec<&str> = traces
        .iter()
        .map(|t| t.get("trace_id").unwrap().as_str().unwrap())
        .collect();
    let unique: std::collections::BTreeSet<&str> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "trace ids must be unique: {ids:?}");
    assert!(
        ids.len() >= 7,
        "burst requests missing from recorder: {ids:?}"
    );

    let (status, _) = admin.call("POST", "/shutdown", None);
    assert_eq!(status, 200);
    server_handle.join().expect("server thread panicked");
}

#[test]
fn flight_recorder_attributes_stage_latency_to_classify_traces() {
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();
    let mut client = Client::connect(&addr);

    let fit = Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str(CONFIG.into())),
        ("seed", Json::Num(SEED as f64)),
        ("max_instances", Json::Num(8.0)),
        ("max_length", Json::Num(64.0)),
    ]);
    let (status, reply) = client.call("POST", "/models/obs/fit", Some(&fit));
    assert_eq!(status, 200, "{reply}");

    // a long-enough series that graph build and motif counting each cost a
    // measurable (≥ 1 µs) slice of the request
    let series: Vec<f64> = (0..512).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
    let body = Json::obj(vec![("series", Json::Arr(vec![Json::nums(series)]))]);
    const REQUESTS: usize = 6;
    for _ in 0..REQUESTS {
        let (status, reply) = client.call("POST", "/models/obs/classify", Some(&body));
        assert_eq!(status, 200, "{reply}");
    }

    let (status, recorder) = client.call("GET", "/debug/traces", None);
    assert_eq!(status, 200, "{recorder}");
    let capacity = recorder.get("capacity").unwrap().as_usize().unwrap();
    let count = recorder.get("count").unwrap().as_usize().unwrap();
    let recorded = recorder.get("recorded_total").unwrap().as_usize().unwrap();
    let traces = recorder.get("traces").unwrap().as_array().unwrap();
    assert!(capacity >= 1);
    assert_eq!(count, traces.len(), "{recorder}");
    assert!(recorded >= count, "{recorder}");

    let classify: Vec<&Json> = traces
        .iter()
        .filter(|t| t.get("path").unwrap().as_str() == Some("/models/obs/classify"))
        .collect();
    assert!(
        classify.len() >= REQUESTS,
        "classify traces missing: {recorder}"
    );

    const STAGES: [&str; 9] = [
        "parse",
        "queue_wait",
        "batch_coalesce",
        "scale",
        "graph_build",
        "motif_count",
        "predict",
        "serialize",
        "write_out",
    ];
    let mut ids = std::collections::BTreeSet::new();
    for trace in &classify {
        let id = trace.get("trace_id").unwrap().as_str().unwrap();
        assert_eq!(id.len(), 16, "trace ids are fixed-width hex: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        assert!(ids.insert(id.to_string()), "duplicate trace id {id}");
        assert_eq!(trace.get("status").unwrap().as_usize(), Some(200));
        assert_eq!(trace.get("model").unwrap().as_str(), Some("obs"));
        let total = trace.get("total_micros").unwrap().as_u64().unwrap();
        assert!(total > 0, "{trace}");
        let stages = trace.get("stages_micros").unwrap();
        // a single-series request's spans are disjoint sub-intervals of its
        // lifetime, so the truncated per-stage sum can never exceed the
        // truncated total
        let sum: u64 = STAGES
            .iter()
            .map(|s| stages.get(s).unwrap().as_u64().unwrap())
            .sum();
        assert!(
            sum <= total,
            "stage sum {sum} exceeds total {total}: {trace}"
        );
        // the extraction stages dominate a 512-point classify; they cannot
        // round down to zero
        assert!(
            stages.get("graph_build").unwrap().as_u64().unwrap() > 0,
            "{trace}"
        );
        assert!(
            stages.get("motif_count").unwrap().as_u64().unwrap() > 0,
            "{trace}"
        );
    }

    // ?trace_id= pins one trace exactly
    let one = ids.iter().next().unwrap().clone();
    let (status, pinned) = client.call("GET", &format!("/debug/traces?trace_id={one}"), None);
    assert_eq!(status, 200, "{pinned}");
    assert_eq!(pinned.get("count").unwrap().as_usize(), Some(1), "{pinned}");
    let hit = &pinned.get("traces").unwrap().as_array().unwrap()[0];
    assert_eq!(hit.get("trace_id").unwrap().as_str(), Some(one.as_str()));

    // ?slow_ms= keeps only slower-than traces; nothing here took an hour
    let (status, slow) = client.call("GET", "/debug/traces?slow_ms=3600000", None);
    assert_eq!(status, 200);
    assert_eq!(slow.get("count").unwrap().as_usize(), Some(0), "{slow}");

    // malformed filters are 400s, not panics or silent full dumps
    let (status, _) = client.call("GET", "/debug/traces?slow_ms=nope", None);
    assert_eq!(status, 400);
    let (status, _) = client.call("GET", "/debug/traces?trace_id=zzzz", None);
    assert_eq!(status, 400);

    let (status, _) = client.call("POST", "/shutdown", None);
    assert_eq!(status, 200);
    server_handle.join().expect("server thread panicked");
}

#[test]
fn version_pinning_detects_hot_swaps() {
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();
    let mut client = Client::connect(&addr);

    let fit = |seed: f64| {
        Json::obj(vec![
            ("dataset", Json::Str(DATASET.into())),
            ("config", Json::Str(CONFIG.into())),
            ("seed", Json::Num(seed)),
            ("max_instances", Json::Num(8.0)),
            ("max_length", Json::Num(64.0)),
        ])
    };
    let (status, info) = client.call("POST", "/models/pin/fit", Some(&fit(1.0)));
    assert_eq!(status, 200, "{info}");
    let v1 = info.get("version").unwrap().as_u64().expect("version");

    // pinned to the live version: served, and the response echoes it
    let series = Json::parse("[[1, 2, 3, 2, 1, 2, 3, 2]]").unwrap();
    let pinned = Json::obj(vec![
        ("series", series.clone()),
        ("version", Json::Num(v1 as f64)),
    ]);
    let (status, reply) = client.call("POST", "/models/pin/classify", Some(&pinned));
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("version").unwrap().as_u64(), Some(v1));

    // hot-swap: refit under the same name bumps the version
    let (status, info) = client.call("POST", "/models/pin/fit", Some(&fit(2.0)));
    assert_eq!(status, 200);
    let v2 = info.get("version").unwrap().as_u64().expect("version");
    assert!(v2 > v1, "refit must advance the version ({v1} -> {v2})");

    // the stale pin now gets 409 Conflict instead of silently classifying
    // with a different model
    let (status, reply) = client.call("POST", "/models/pin/classify", Some(&pinned));
    assert_eq!(status, 409, "{reply}");
    assert!(reply
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("version"));

    // repinning to the new version works; unpinned requests always track the
    // live model
    let repinned = Json::obj(vec![
        ("series", series.clone()),
        ("version", Json::Num(v2 as f64)),
    ]);
    let (status, reply) = client.call("POST", "/models/pin/classify", Some(&repinned));
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("version").unwrap().as_u64(), Some(v2));
    let unpinned = Json::obj(vec![("series", series)]);
    let (status, reply) = client.call("POST", "/models/pin/classify", Some(&unpinned));
    assert_eq!(status, 200);
    assert_eq!(reply.get("version").unwrap().as_u64(), Some(v2), "{reply}");

    // a malformed pin is a 400, not a lookup against nonsense
    let bad = Json::obj(vec![
        ("series", Json::parse("[[1, 2, 3]]").unwrap()),
        ("version", Json::Str("latest".into())),
    ]);
    let (status, _) = client.call("POST", "/models/pin/classify", Some(&bad));
    assert_eq!(status, 400);

    let (status, _) = client.call("POST", "/shutdown", None);
    assert_eq!(status, 200);
    server_handle.join().expect("server thread panicked");
}

#[test]
fn invalid_requests_are_rejected_not_fatal() {
    isolate_dataset_cache();
    let (addr, server_handle) = start_server();
    let mut client = Client::connect(&addr);

    // fit with a bad config name
    let bad_fit = Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str("warp-speed".into())),
    ]);
    let (status, reply) = client.call("POST", "/models/m/fit", Some(&bad_fit));
    assert_eq!(status, 400, "{reply}");

    // fit with an unknown dataset
    let bad_dataset = Json::obj(vec![("dataset", Json::Str("NotADataset".into()))]);
    let (status, _) = client.call("POST", "/models/m/fit", Some(&bad_dataset));
    assert_eq!(status, 400);

    // unknown route and unsupported method
    let (status, _) = client.call("GET", "/nope", None);
    assert_eq!(status, 404);

    // a real fit, then malformed classify payloads
    let fit = Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str(CONFIG.into())),
        ("max_instances", Json::Num(8.0)),
        ("max_length", Json::Num(64.0)),
    ]);
    let (status, _) = client.call("POST", "/models/m/fit", Some(&fit));
    assert_eq!(status, 200);
    for bad in [
        Json::obj(vec![("series", Json::Str("nope".into()))]),
        Json::obj(vec![("series", Json::parse("[[]]").unwrap())]),
        Json::obj(vec![("series", Json::parse("[[1, null]]").unwrap())]),
        Json::obj(vec![("wrong_key", Json::Num(1.0))]),
    ] {
        let (status, _) = client.call("POST", "/models/m/classify", Some(&bad));
        assert_eq!(status, 400, "accepted {bad}");
    }
    // the connection and model survive all of the above
    let ok = Json::obj(vec![(
        "series",
        Json::parse("[[1, 2, 3, 2, 1, 2, 3, 2]]").unwrap(),
    )]);
    let (status, reply) = client.call("POST", "/models/m/classify", Some(&ok));
    assert_eq!(status, 200, "{reply}");

    // delete the model, classify now 404s
    let (status, _) = client.call("DELETE", "/models/m", None);
    assert_eq!(status, 200);
    let (status, _) = client.call("POST", "/models/m/classify", Some(&ok));
    assert_eq!(status, 404);

    let (status, _) = client.call("POST", "/shutdown", None);
    assert_eq!(status, 200);
    server_handle.join().expect("server thread panicked");
}
