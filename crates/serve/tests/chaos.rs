//! Chaos harness: deterministic fault-injection schedules against the full
//! serving/storage stack, a kill-mid-traffic → warm-restart cycle through
//! the real `tsg-serve` binary, and raw-socket starvation attacks.
//!
//! Every schedule is a fixed `(seed, plan)` pair, so a failure here replays
//! exactly — set `TSG_FAULT_SEED`/`TSG_FAULT_PLAN` on a release-with-seams
//! build to reproduce outside the test harness. The invariants proven:
//!
//! * no schedule hangs the server or panics a server thread (every client
//!   socket carries a read timeout, and the serving thread is joined);
//! * every response that *does* complete with 200 carries bit-identical
//!   predictions (fault schedules may fail requests, never corrupt them);
//! * killing the server mid-traffic and warm-restarting from snapshots
//!   restores bit-identical predictions without refitting;
//! * a peer that stalls mid-request (or slowlorises the header) gets a 408
//!   within the configured budget and cannot starve other clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tsg_core::MvgClassifier;
use tsg_datasets::archive::ArchiveOptions;
use tsg_serve::batcher::BatchConfig;
use tsg_serve::http::{read_response, roundtrip_json, send_request};
use tsg_serve::json::Json;
use tsg_serve::registry::config_named;
use tsg_serve::server::{ServeConfig, Server};

const DATASET: &str = "BeetleFly";
const SEED: u64 = 7;
const CONFIG: &str = "uvg-fast";

/// Both the fault plan and `TSG_DATASET_CACHE_DIR` are process-global, so
/// the tests in this binary must not overlap: a schedule armed by one test
/// would inject faults into another's server.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn archive_options() -> ArchiveOptions {
    ArchiveOptions::bounded(16, 96, SEED)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsg-chaos-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn connect(addr: &str) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // the anti-hang invariant: a stuck server surfaces as a timeout error
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

/// One request on a fresh connection, retried across reconnects — fault
/// schedules are allowed to kill attempts, not to hang them. `None` after
/// the attempt budget.
fn resilient_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&Json>,
    attempts: usize,
) -> Option<(u16, Json)> {
    for _ in 0..attempts {
        let Ok((mut stream, mut reader)) = connect(addr) else {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        match roundtrip_json(&mut stream, &mut reader, method, path, body) {
            Ok(reply) => return Some(reply),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    None
}

fn series_json(series: &tsg_ts::TimeSeries) -> Json {
    Json::nums(series.values().iter().copied())
}

fn fit_body() -> Json {
    Json::obj(vec![
        ("dataset", Json::Str(DATASET.into())),
        ("config", Json::Str(CONFIG.into())),
        ("seed", Json::Num(SEED as f64)),
        ("max_instances", Json::Num(16.0)),
        ("max_length", Json::Num(96.0)),
    ])
}

/// The reference: the identical model fitted directly, with injection off.
fn reference() -> (tsg_ts::Dataset, Vec<Vec<f64>>) {
    let (train, test) =
        tsg_datasets::cache::generate_by_name_scaled_cached(DATASET, archive_options())
            .expect("reference dataset");
    let mut clf = MvgClassifier::new(config_named(CONFIG, SEED, 1).expect("config"));
    clf.fit(&train).expect("reference fit");
    let expected = clf.predict_proba(&test).expect("reference proba");
    (test, expected)
}

fn start_server(snapshot_dir: Option<PathBuf>) -> (String, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        n_threads: 2,
        batch: BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_depth: 128,
        },
        archive: archive_options(),
        snapshot_dir,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

struct Schedule {
    name: &'static str,
    seed: u64,
    plan: &'static str,
    /// Whether completed classifications must still be bit-identical. Off
    /// only for silent cache bit rot: the cache format detects structural
    /// damage, not flipped payload bits, so a poisoned cache legitimately
    /// yields a *different* (still valid) model.
    check_bits: bool,
}

const SCHEDULES: &[Schedule] = &[
    // network: transparent retry faults — every request must still succeed
    Schedule {
        name: "eintr-reads",
        seed: 0xA1,
        plan: "conn_read:eintr:0.3",
        check_bits: true,
    },
    Schedule {
        name: "spurious-wakeups",
        seed: 0xA2,
        plan: "conn_read:eagain:0.3,conn_write:eagain:0.3,epoll_wait:eintr:0.2",
        check_bits: true,
    },
    Schedule {
        name: "short-io",
        seed: 0xA3,
        plan: "conn_read:short:0.3,conn_write:short:0.5",
        check_bits: true,
    },
    // network: destructive faults — requests may die, never hang or corrupt
    Schedule {
        name: "peer-resets",
        seed: 0xA4,
        plan: "conn_read:reset:0.15,conn_write:reset:0.1",
        check_bits: true,
    },
    Schedule {
        name: "accept-failures",
        seed: 0xA5,
        plan: "accept:err:0.5,epoll_wait:err:0.1",
        check_bits: true,
    },
    // file: the dataset cache degrades to regeneration, never to bad data
    Schedule {
        name: "cache-unreadable",
        seed: 0xB1,
        plan: "cache_open:err:0.8",
        check_bits: true,
    },
    Schedule {
        name: "cache-torn-writes",
        seed: 0xB2,
        plan: "cache_write:torn:0.6,cache_rename:err:0.3,cache_sync:err:0.3",
        check_bits: true,
    },
    // file: snapshots are best-effort — a failed write never fails the fit
    Schedule {
        name: "snapshot-failures",
        seed: 0xB3,
        plan: "snap_write:torn:0.5,snap_rename:err:0.7,snap_sync:err:0.5",
        check_bits: true,
    },
    Schedule {
        name: "cache-bit-rot",
        seed: 0xB4,
        plan: "cache_write:bitflip:1",
        check_bits: false,
    },
    // mixed: every layer at once
    Schedule {
        name: "kitchen-sink",
        seed: 0xC1,
        plan: "conn_read:eintr:0.2,conn_write:short:0.2,accept:err:0.2,\
               cache_write:torn:0.4,snap_write:bitflip:0.5,snap_rename:err:0.3",
        check_bits: true,
    },
];

#[test]
fn seeded_fault_schedules_never_hang_corrupt_or_panic() {
    let _guard = lock();
    // reference expected probabilities, computed with injection off
    tsg_faults::disable();
    std::env::set_var(
        tsg_datasets::cache::CACHE_DIR_ENV,
        temp_dir("schedules-reference"),
    );
    let (test, expected) = reference();

    for schedule in SCHEDULES {
        // fresh cache + snapshot dirs per schedule: a schedule that poisons
        // its cache must not leak corruption into the next one
        let cache_dir = temp_dir(&format!("cache-{}", schedule.name));
        let snap_dir = temp_dir(&format!("snap-{}", schedule.name));
        std::env::set_var(tsg_datasets::cache::CACHE_DIR_ENV, &cache_dir);
        let injected_before = tsg_faults::injected_total();
        tsg_faults::configure(schedule.seed, schedule.plan)
            .unwrap_or_else(|e| panic!("schedule {}: bad plan: {e}", schedule.name));
        assert!(tsg_faults::is_active());

        let (addr, handle) = start_server(Some(snap_dir.clone()));

        // the fit exercises cache + snapshot seams; destructive schedules
        // may kill attempts, so retry across reconnects
        let fit = resilient_call(&addr, "POST", "/models/m/fit", Some(&fit_body()), 12)
            .unwrap_or_else(|| panic!("schedule {}: fit never completed", schedule.name));
        let mut fit = fit;
        for _ in 0..10 {
            if fit.0 == 200 {
                break;
            }
            // a mid-stream cache corruption fails one fit cleanly; the next
            // attempt regenerates — what must never happen is a hang or 500
            // loop that outlives the retry budget
            fit = resilient_call(&addr, "POST", "/models/m/fit", Some(&fit_body()), 12)
                .unwrap_or_else(|| panic!("schedule {}: refit never completed", schedule.name));
        }
        assert_eq!(
            fit.0, 200,
            "schedule {}: fit kept failing: {}",
            schedule.name, fit.1
        );

        // classify a slice of the test split through the faulty stack
        let mut completed = 0usize;
        for (i, series) in test.series().iter().enumerate().take(12) {
            let body = Json::obj(vec![
                ("series", Json::Arr(vec![series_json(series)])),
                ("proba", Json::Bool(true)),
            ]);
            let Some((status, reply)) =
                resilient_call(&addr, "POST", "/models/m/classify", Some(&body), 8)
            else {
                continue; // destructive schedules may eat a request entirely
            };
            if status != 200 {
                continue;
            }
            completed += 1;
            if !schedule.check_bits {
                continue;
            }
            let proba: Vec<f64> = reply.get("probabilities").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            assert_eq!(proba.len(), expected[i].len(), "schedule {}", schedule.name);
            for (a, b) in proba.iter().zip(&expected[i]) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "schedule {}: series {i} diverged under faults",
                    schedule.name
                );
            }
        }
        assert!(
            completed >= 1,
            "schedule {}: no classify request ever completed",
            schedule.name
        );

        // the schedule must have actually fired
        let injected = tsg_faults::injected_total() - injected_before;
        assert!(
            injected > 0,
            "schedule {}: plan never injected a fault",
            schedule.name
        );

        // clean shutdown with injection off; a joined thread proves no panic
        tsg_faults::disable();
        let shutdown = resilient_call(&addr, "POST", "/shutdown", None, 8)
            .unwrap_or_else(|| panic!("schedule {}: shutdown never completed", schedule.name));
        assert_eq!(shutdown.0, 200, "schedule {}", schedule.name);
        handle
            .join()
            .unwrap_or_else(|_| panic!("schedule {}: server thread panicked", schedule.name));

        std::fs::remove_dir_all(&cache_dir).ok();
        std::fs::remove_dir_all(&snap_dir).ok();
    }
}

#[test]
fn injected_faults_are_visible_on_request_traces() {
    let _guard = lock();
    tsg_faults::disable();
    let cache_dir = temp_dir("trace-faults-cache");
    std::env::set_var(tsg_datasets::cache::CACHE_DIR_ENV, &cache_dir);

    // fit with injection off so the model comes up without interference
    let (addr, handle) = start_server(None);
    let fit = resilient_call(&addr, "POST", "/models/m/fit", Some(&fit_body()), 8)
        .expect("fit never completed");
    assert_eq!(fit.0, 200, "fit failed: {}", fit.1);

    // a transparent-retry schedule: every request still succeeds, but its
    // reads and writes take seeded EINTR/short-write hits — and each trace
    // must attribute the hits that landed inside its own lifetime
    tsg_faults::configure(0xD1, "conn_read:eintr:0.5,conn_write:short:0.5").expect("plan");
    assert!(tsg_faults::is_active());
    let probe = Json::obj(vec![(
        "series",
        Json::parse("[[1, 2, 3, 2, 1, 2, 3, 2, 1, 2, 3, 2]]").unwrap(),
    )]);
    for i in 0..8 {
        let (status, reply) = resilient_call(&addr, "POST", "/models/m/classify", Some(&probe), 8)
            .unwrap_or_else(|| panic!("classify {i} never completed"));
        assert_eq!(status, 200, "classify {i} failed: {reply}");
    }
    tsg_faults::disable();

    let (status, recorder) =
        resilient_call(&addr, "GET", "/debug/traces", None, 4).expect("trace scrape");
    assert_eq!(status, 200, "{recorder}");
    let traces = recorder.get("traces").unwrap().as_array().unwrap();
    let attributed = traces
        .iter()
        .filter(|t| {
            t.get("path").unwrap().as_str() == Some("/models/m/classify")
                && t.get("status").unwrap().as_usize() == Some(200)
                && t.get("faults_injected").unwrap().as_u64().unwrap() >= 1
        })
        .count();
    assert!(
        attributed >= 1,
        "no classify trace attributed an injected fault: {recorder}"
    );

    let (status, _) = resilient_call(&addr, "POST", "/shutdown", None, 4).expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread panicked");
    std::fs::remove_dir_all(&cache_dir).ok();
}

/// Spawns the real `tsg-serve` binary and returns the child plus its stdout
/// reader, already advanced past the `listening on` line (whose address is
/// returned). Lines seen on the way are collected for assertions.
fn spawn_server(
    cache_dir: &PathBuf,
    snap_dir: &PathBuf,
) -> (
    std::process::Child,
    BufReader<std::process::ChildStdout>,
    String,
    Vec<String>,
) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_tsg-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--preload",
            DATASET,
            "--config",
            CONFIG,
            "--seed",
            "7",
            "--max-instances",
            "16",
            "--max-length",
            "96",
            "--snapshot-dir",
        ])
        .arg(snap_dir)
        .env(tsg_datasets::cache::CACHE_DIR_ENV, cache_dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tsg-serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut boot_lines = Vec::new();
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line).expect("read child stdout") == 0 {
            let _ = child.kill();
            panic!("tsg-serve exited before listening; boot log: {boot_lines:?}");
        }
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after http://")
                .to_string();
        }
        boot_lines.push(line.trim_end().to_string());
    };
    (child, stdout, addr, boot_lines)
}

#[test]
fn kill_mid_traffic_then_warm_restart_is_bit_identical() {
    let _guard = lock();
    tsg_faults::disable();
    let cache_dir = temp_dir("kill-cache");
    let snap_dir = temp_dir("kill-snap");
    std::env::set_var(tsg_datasets::cache::CACHE_DIR_ENV, &cache_dir);
    let (test, expected) = reference();

    // boot 1: cold fit via --preload, snapshot written as part of the fit
    let (mut child, _stdout, addr, _boot) = spawn_server(&cache_dir, &snap_dir);

    // traffic: classify in a loop; after a few successes, kill mid-stream
    let probe = Json::obj(vec![
        ("series", Json::Arr(vec![series_json(&test.series()[0])])),
        ("proba", Json::Bool(true)),
    ]);
    let mut ok_before_kill = 0usize;
    while ok_before_kill < 3 {
        let (status, _) =
            resilient_call(&addr, "POST", "/models/BeetleFly/classify", Some(&probe), 4)
                .expect("pre-kill classify");
        assert_eq!(status, 200);
        ok_before_kill += 1;
    }
    child.kill().expect("kill server");
    child.wait().expect("reap server");

    // the kill must surface to clients as an error, never a hang — the
    // read timeout inside `connect` bounds this call
    let after_kill = Instant::now();
    assert!(
        resilient_call(&addr, "POST", "/models/BeetleFly/classify", Some(&probe), 2).is_none(),
        "request against a killed server must fail"
    );
    assert!(
        after_kill.elapsed() < Duration::from_secs(25),
        "killed server turned into a client hang"
    );

    // boot 2: same snapshot dir — the model must come back from the
    // snapshot (no refit), with its predictions bit-identical
    let (mut child2, mut stdout2, addr2, boot2) = spawn_server(&cache_dir, &snap_dir);
    assert!(
        boot2.iter().any(|l| l.contains("warm restart: restored 1")),
        "no warm-restart line in boot log: {boot2:?}"
    );
    assert!(
        boot2
            .iter()
            .any(|l| l.contains("already restored from snapshot")),
        "preload was refitted despite a valid snapshot: {boot2:?}"
    );

    for (i, series) in test.series().iter().enumerate() {
        let body = Json::obj(vec![
            ("series", Json::Arr(vec![series_json(series)])),
            ("proba", Json::Bool(true)),
        ]);
        let (status, reply) =
            resilient_call(&addr2, "POST", "/models/BeetleFly/classify", Some(&body), 4)
                .expect("post-restart classify");
        assert_eq!(status, 200, "post-restart classify failed: {reply}");
        let proba: Vec<f64> = reply.get("probabilities").unwrap().as_array().unwrap()[0]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        for (a, b) in proba.iter().zip(&expected[i]) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "series {i} diverged after warm restart"
            );
        }
    }

    // the restart served from snapshots without a single load failure
    let (mut stream, mut reader) = connect(&addr2).expect("metrics connect");
    send_request(&mut stream, "GET", "/metrics", None).expect("metrics request");
    let (status, body) = read_response(&mut reader).expect("metrics response");
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&body).to_string();
    assert!(
        metrics.contains("tsg_serve_snapshot_load_failures_total 0\n"),
        "unexpected snapshot load failures:\n{metrics}"
    );

    let (status, _) = resilient_call(&addr2, "POST", "/shutdown", None, 4).expect("shutdown");
    assert_eq!(status, 200);
    assert!(child2.wait().expect("reap server").success());
    let mut tail = String::new();
    stdout2.read_to_string(&mut tail).expect("drain stdout");
    assert!(
        tail.contains("stopped cleanly"),
        "server did not stop cleanly: {tail}"
    );

    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::remove_dir_all(&snap_dir).ok();
}

#[test]
fn stalled_requests_get_408_and_cannot_starve_the_server() {
    let _guard = lock();
    tsg_faults::disable();
    // a tight budget so the sweep fires fast; no model is needed
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        n_threads: 1,
        request_budget: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    // mid-request stall: headers promise a body that never arrives
    let (mut stalled, mut stalled_reader) = connect(&addr).expect("connect");
    stalled
        .write_all(b"POST /models/m/classify HTTP/1.1\r\nContent-Length: 64\r\n\r\nonly-a-prefix")
        .expect("partial write");
    let waited = Instant::now();
    let (status, _) = read_response(&mut stalled_reader).expect("408 response");
    assert_eq!(status, 408, "stalled body must time out as 408");
    assert!(
        waited.elapsed() < Duration::from_secs(5),
        "408 sweep took too long"
    );
    let mut byte = [0u8; 1];
    assert!(
        matches!(stalled_reader.read(&mut byte), Ok(0)),
        "connection must close after 408 (the unread body would desync it)"
    );

    // slowloris: dribble header bytes forever; the budget must cut it off
    let (mut slow, mut slow_reader) = connect(&addr).expect("connect");
    let header = b"GET /healthz HTTP/1.1\r\nX-Drip: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    let started = Instant::now();
    let mut got_408 = false;
    for chunk in header.chunks(2) {
        if slow.write_all(chunk).is_err() {
            break; // server already closed on us — also acceptable
        }
        std::thread::sleep(Duration::from_millis(40));
        if started.elapsed() > Duration::from_secs(8) {
            panic!("slowloris was allowed to drip for 8 s without a 408");
        }
    }
    if let Ok((status, _)) = read_response(&mut slow_reader) {
        assert_eq!(status, 408, "slowloris must be cut off with 408");
        got_408 = true;
    }
    // either an explicit 408 or a hard close is fine; a still-open socket
    // accepting drips past the budget is not
    if !got_408 {
        assert!(
            matches!(slow_reader.read(&mut byte), Ok(0) | Err(_)),
            "slowloris connection survived past the budget"
        );
    }

    // throughout all of the above, well-behaved clients were never starved
    let (status, health) = resilient_call(&addr, "GET", "/healthz", None, 4).expect("healthz");
    assert_eq!(status, 200, "{health}");

    let (status, _) = resilient_call(&addr, "POST", "/shutdown", None, 4).expect("shutdown");
    assert_eq!(status, 200);
    handle.join().expect("server thread panicked");
}
